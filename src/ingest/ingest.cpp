#include "ingest/ingest.hpp"

#include <algorithm>
#include <optional>

#include "ingest/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "util/backoff.hpp"
#include "util/deadline.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace mosaic::ingest {

using util::Error;
using util::ErrorCode;
using util::Expected;

namespace {

/// Ingest-loop instruments, resolved once per process.
struct IngestMetrics {
  obs::Counter& scanned;
  obs::Counter& processed;
  obs::Counter& loaded;
  obs::Counter& retry_attempts;
  obs::Counter& recovered;
  obs::Counter& quarantined;
  obs::Counter& journal_replayed;
  obs::Histogram& backoff_ms;
  obs::Histogram& retries_per_file;
  obs::Histogram& parse_ms;

  static IngestMetrics& get() {
    static auto& registry = obs::Registry::global();
    static const auto latency = obs::latency_buckets_ms();
    static constexpr double kRetryEdges[] = {1, 2, 4, 8, 16, 32};
    static IngestMetrics metrics{
        registry.counter(obs::names::kIngestScanned,
                         "files handed to the ingest loop"),
        registry.counter(obs::names::kIngestProcessed,
                         "files whose outcome was folded (live, not replayed)"),
        registry.counter(obs::names::kIngestLoaded,
                         "files read and parsed successfully"),
        registry.counter(obs::names::kIngestRetryAttempts,
                         "read retries across all files"),
        registry.counter(obs::names::kIngestRecovered,
                         "files loaded successfully after at least one retry"),
        registry.counter(obs::names::kIngestQuarantined,
                         "files moved to the quarantine directory"),
        registry.counter(obs::names::kIngestJournalReplayed,
                         "outcomes replayed from the resume journal"),
        registry.histogram(obs::names::kIngestBackoffMs, latency,
                           "per-retry backoff sleep (ms)"),
        registry.histogram(obs::names::kIngestRetriesPerFile, kRetryEdges,
                           "retry attempts per eventually-loaded file"),
        registry.histogram(obs::names::kIngestParseMs, latency,
                           "trace parse latency (ms)"),
    };
    return metrics;
  }
};

/// Eviction counter labeled by ErrorCode; failure paths are cold, so the
/// per-call registry lookup is acceptable.
void count_load_failure(ErrorCode code) {
  obs::Registry::global()
      .counter(obs::labeled(obs::names::kIngestFailed, "code",
                            util::error_code_name(code)),
               "files evicted by the ingest loop, by error code")
      .add();
}

/// Worker-side result of loading one file; folded serially afterwards.
struct LoadOutcome {
  std::optional<trace::Trace> trace;
  Error error;  ///< meaningful only when !trace
  std::size_t retry_attempts = 0;
};

/// Reads and parses one file under the options' retry/deadline policy.
LoadOutcome load_one(FileReader& reader, const std::string& path,
                     const IngestOptions& options) {
  MOSAIC_SPAN("load");
  IngestMetrics& metrics = IngestMetrics::get();
  LoadOutcome outcome;
  const util::Deadline deadline =
      options.file_deadline_seconds > 0.0
          ? util::Deadline::after_seconds(options.file_deadline_seconds)
          : util::Deadline{};
  util::ExponentialBackoff backoff(options.backoff_initial_ms,
                                   options.backoff_multiplier,
                                   options.backoff_max_ms);
  int attempt = 0;
  for (;;) {
    auto bytes = reader.read_mapped(path, attempt);
    if (!bytes.has_value()) {
      Error error = std::move(bytes).error();
      // Only kIoError is worth retrying: content does not heal, and a
      // missing file stays missing within one batch.
      if (error.code != ErrorCode::kIoError ||
          attempt >= options.max_retries) {
        outcome.error = std::move(error);
        return outcome;
      }
      if (deadline.expired()) {
        outcome.error = Error{ErrorCode::kTimeout,
                              "deadline exceeded after " +
                                  std::to_string(attempt + 1) +
                                  " attempt(s) on " + path + " (last: " +
                                  error.message + ")"};
        return outcome;
      }
      double delay_ms = backoff.next_delay_ms();
      if (deadline.finite()) {
        delay_ms = std::min(delay_ms, deadline.remaining_seconds() * 1000.0);
      }
      metrics.backoff_ms.observe(delay_ms);
      metrics.retry_attempts.add();
      util::sleep_for_ms(delay_ms);
      ++attempt;
      ++outcome.retry_attempts;
      continue;
    }
    MOSAIC_SPAN("parse");
    const obs::ScopedTimerMs parse_timer(metrics.parse_ms);
    auto parsed = parse_trace_bytes(path, bytes->bytes(), deadline);
    if (!parsed.has_value()) {
      outcome.error = std::move(parsed).error();
      return outcome;
    }
    outcome.trace = std::move(*parsed);
    return outcome;
  }
}

/// Content-caused failures are worth moving aside: re-running the batch will
/// hit them again, and operators triage them out-of-band. Environmental
/// failures (io-error, not-found) are left in place.
bool should_quarantine(ErrorCode code) noexcept {
  return code == ErrorCode::kParseError || code == ErrorCode::kCorruptTrace ||
         code == ErrorCode::kTimeout;
}

/// Serial fold-side state shared by the eviction paths.
struct FoldContext {
  core::StreamingPreprocessor* preprocessor;
  IngestStats* stats;
  JournalWriter* journal;
  const IngestOptions* options;
};

void quarantine_file(FoldContext& ctx, const std::string& path) {
  if (ctx.options->quarantine_dir.empty()) return;
  auto moved = util::move_file_into_dir(path, ctx.options->quarantine_dir);
  if (moved.has_value()) {
    ++ctx.stats->quarantined;
    IngestMetrics::get().quarantined.add();
    MOSAIC_LOG_INFO("ingest: quarantined %s -> %s", path.c_str(),
                    moved->c_str());
  } else {
    MOSAIC_LOG_WARN("ingest: could not quarantine %s: %s", path.c_str(),
                    moved.error().to_string().c_str());
  }
}

void journal_append(FoldContext& ctx, const JournalEntry& entry) {
  if (const auto status = ctx.journal->append(entry); !status.ok()) {
    // The journal protects against crashes; its own failure must not become
    // one. The batch continues, the entry is simply redone on resume.
    MOSAIC_LOG_WARN("ingest: %s", status.error().to_string().c_str());
  }
}

/// Folds one worker outcome into the funnel, journal and quarantine.
void fold_outcome(FoldContext& ctx, const std::string& path,
                  LoadOutcome outcome) {
  IngestMetrics& metrics = IngestMetrics::get();
  metrics.processed.add();
  ctx.stats->retry_attempts += outcome.retry_attempts;
  if (!outcome.trace.has_value()) {
    ++ctx.stats->failed;
    count_load_failure(outcome.error.code);
    MOSAIC_LOG_DEBUG("ingest: evicting %s: %s", path.c_str(),
                     outcome.error.to_string().c_str());
    ctx.preprocessor->add_load_failure(outcome.error.code);
    JournalEntry entry;
    entry.path = path;
    entry.code = std::string(util::error_code_name(outcome.error.code));
    journal_append(ctx, entry);
    if (should_quarantine(outcome.error.code)) quarantine_file(ctx, path);
    return;
  }

  ++ctx.stats->loaded;
  metrics.loaded.add();
  metrics.retries_per_file.observe(
      static_cast<double>(outcome.retry_attempts));
  if (outcome.retry_attempts > 0) {
    ++ctx.stats->recovered;
    metrics.recovered.add();
  }

  // Digest captured before the trace is consumed by the preprocessor.
  JournalEntry entry;
  entry.path = path;
  entry.app_key = outcome.trace->app_key();
  entry.total_bytes = outcome.trace->total_bytes();
  entry.job_id = outcome.trace->meta.job_id;

  const trace::ValidityReport report =
      ctx.preprocessor->add_trace(std::move(*outcome.trace), path);
  if (report.valid()) {
    entry.valid = true;
  } else {
    entry.code =
        std::string(util::error_code_name(ErrorCode::kCorruptTrace));
    entry.corruption_kind = trace::corruption_kind_name(report.kind);
  }
  journal_append(ctx, entry);
  if (!report.valid()) quarantine_file(ctx, path);
}

}  // namespace

Expected<IngestResult> ingest_paths(const std::vector<std::string>& paths,
                                    const IngestOptions& options,
                                    parallel::ThreadPool& pool) {
  // Shard filter first: files owned by other shards must not appear in any
  // counter, journal or funnel of this run, or merged partials would count
  // them N times.
  std::vector<std::string> owned;
  const std::vector<std::string>* inputs = &paths;
  if (options.shard.active()) {
    owned.reserve(paths.size() / options.shard.count + 1);
    for (const std::string& path : paths) {
      if (shard_owns(options.shard, path)) owned.push_back(path);
    }
    inputs = &owned;
    auto& registry = obs::Registry::global();
    registry.gauge(obs::names::kShardIndex, "shard this run owns (--shard K/N)")
        .set(static_cast<std::int64_t>(options.shard.index));
    registry.gauge(obs::names::kShardCount, "total shards in the partition")
        .set(static_cast<std::int64_t>(options.shard.count));
  }

  IngestResult result;
  result.stats.files_scanned = inputs->size();
  IngestMetrics& metrics = IngestMetrics::get();
  metrics.scanned.add(inputs->size());

  FileReader& reader =
      options.reader != nullptr ? *options.reader : system_reader();

  std::map<std::string, JournalEntry> replay;
  if (options.resume && !options.journal_path.empty()) {
    auto loaded = load_journal(options.journal_path,
                               &result.stats.journal_dropped);
    if (!loaded.has_value()) return std::move(loaded).error();
    replay = std::move(*loaded);
  }

  JournalWriter journal;
  if (!options.journal_path.empty()) {
    if (const auto status = journal.open(options.journal_path); !status.ok()) {
      return status.error();
    }
  }

  core::StreamingPreprocessor preprocessor(options.validity_slack_seconds);
  FoldContext ctx{&preprocessor, &result.stats, &journal, &options};

  // Replayed outcomes fold first; their files are excluded from the windows.
  std::vector<std::string> pending;
  pending.reserve(inputs->size());
  for (const std::string& path : *inputs) {
    const auto it = replay.find(path);
    if (it == replay.end()) {
      pending.push_back(path);
      continue;
    }
    const JournalEntry& entry = it->second;
    ++result.stats.journal_replayed;
    metrics.journal_replayed.add();
    if (entry.valid) {
      preprocessor.add_valid_digest({entry.path, entry.app_key,
                                     entry.total_bytes, entry.job_id});
    } else {
      preprocessor.add_journaled_eviction(entry.code, entry.corruption_kind);
    }
  }

  const std::size_t window = options.max_in_flight != 0
                                 ? options.max_in_flight
                                 : pool.thread_count() * 4;
  std::size_t processed = 0;
  for (std::size_t begin = 0; begin < pending.size() && !result.stats.aborted;
       begin += window) {
    const std::size_t end = std::min(pending.size(), begin + window);
    MOSAIC_SPAN("ingest-window");
    std::vector<LoadOutcome> outcomes(end - begin);
    parallel::parallel_for(
        pool, end - begin, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            outcomes[i] = load_one(reader, pending[begin + i], options);
          }
        });
    // Serial fold in path order keeps the journal and funnel deterministic
    // regardless of worker scheduling.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      fold_outcome(ctx, pending[begin + i], std::move(outcomes[i]));
      ++processed;
      if (options.abort_after_files != 0 &&
          processed >= options.abort_after_files) {
        result.stats.aborted = true;
        break;
      }
    }
  }

  // Journal-replayed dedup winners are re-read lazily — one file per
  // application at most, with the same retry policy.
  result.pre = preprocessor.finish([&](const std::string& path)
                                       -> Expected<trace::Trace> {
    LoadOutcome outcome = load_one(reader, path, options);
    result.stats.retry_attempts += outcome.retry_attempts;
    if (!outcome.trace.has_value()) return std::move(outcome.error);
    return std::move(*outcome.trace);
  });
  return result;
}

Expected<trace::Trace> load_trace(const std::string& path,
                                  const IngestOptions& options,
                                  std::size_t* retry_attempts) {
  FileReader& reader =
      options.reader != nullptr ? *options.reader : system_reader();
  LoadOutcome outcome = load_one(reader, path, options);
  if (retry_attempts != nullptr) *retry_attempts = outcome.retry_attempts;
  if (!outcome.trace.has_value()) return std::move(outcome.error);
  return std::move(*outcome.trace);
}

}  // namespace mosaic::ingest
