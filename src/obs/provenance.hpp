// Decision provenance: a structured analysis journal recording, per trace,
// the evidence every axis used to reach its category verdict.
//
// The paper's 92% accuracy figure (§IV-E) was established by *manually*
// inspecting 512 traces; its 8% error concentrates in temporality edge
// cases. A pipeline that emits only final labels cannot show an operator
// why a trace was categorized a certain way or where misclassifications
// cluster. This module captures the intermediate structure behind each
// decision — merge funnel, segment counts, Mean-Shift cluster candidates
// with their CV acceptance tests, FFT peaks against the periodicity
// threshold, temporality chunk spreads, metadata ratios, and the final
// category-rule firings — as plain data that serializes to JSONL and
// renders as a human-readable decision path (`mosaic explain`).
//
// Capture is gated exactly like MOSAIC_SPAN: disabled, the per-trace check
// is one relaxed load; enabled, records are taken for one in every
// `sample_every` traces, so batch runs stay inside the <10% instrumentation
// budget that bench/perf_pipeline --overhead-only pins.
//
// The structs here are deliberately dependency-free (strings and numbers
// only): core fills them, report joins them against sim ground truth, and
// neither direction adds a link-time cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/error.hpp"

namespace mosaic::obs {

/// Merge-pass funnel for one op kind (paper §III-B2): how many raw events
/// the two passes fused and how the covered time window changed.
struct MergeProvenance {
  std::uint64_t raw_ops = 0;          ///< extracted events before merging
  std::uint64_t after_concurrent = 0; ///< after overlapping-op fusion
  std::uint64_t merged_ops = 0;       ///< after neighbor-gap fusion
  double covered_seconds_before = 0.0;  ///< sum of op durations, raw
  double covered_seconds_after = 0.0;   ///< sum of op durations, merged
};

/// One Mean-Shift cluster evaluated as a periodic-group candidate, with the
/// raw-space CV sanity tests that accepted or rejected it.
struct MeanShiftCandidate {
  std::uint64_t size = 0;          ///< segments in the cluster
  double period_seconds = 0.0;     ///< mean segment length
  double duration_cv = 0.0;        ///< tested against duration_cv_limit
  double volume_cv = 0.0;          ///< tested against volume_cv_limit
  double center_length = 0.0;      ///< mode coordinate, scaled feature space
  double center_log_volume = 0.0;  ///< mode coordinate, scaled feature space
  bool accepted = false;
  std::string rejected_by;  ///< "", "group-size", "duration-cv", "volume-cv"
};

/// Mean-Shift backend evidence for one kind.
struct MeanShiftProvenance {
  bool ran = false;
  double bandwidth = 0.0;            ///< kernel radius used
  double duration_cv_limit = 0.0;    ///< Thresholds::group_duration_cv
  double volume_cv_limit = 0.0;      ///< Thresholds::group_volume_cv
  std::uint64_t points = 0;          ///< segments embedded
  std::uint64_t iterations = 0;      ///< total shift iterations over points
  std::vector<MeanShiftCandidate> candidates;
};

/// One spectral peak tested by the frequency backend.
struct FrequencyPeak {
  double period_seconds = 0.0;
  double score = 0.0;  ///< harmonic-comb score, tested against min_score
  std::uint64_t occurrences = 0;
  bool accepted = false;
};

/// FFT backend evidence for one kind.
struct FrequencyProvenance {
  bool ran = false;
  double bin_seconds = 0.0;  ///< activity-signal resolution
  double min_score = 0.0;    ///< Thresholds::frequency_min_score
  std::vector<FrequencyPeak> peaks;
};

/// An accepted periodic group as reported in the final result.
struct PeriodicGroupProvenance {
  double period_seconds = 0.0;
  double mean_bytes = 0.0;
  double busy_ratio = 0.0;
  std::uint64_t occurrences = 0;
  std::string magnitude;  ///< "second" | "minute" | "hour" | "day_or_more"
};

/// Periodicity verdict plus the backend evidence behind it.
struct PeriodicityProvenance {
  std::string backend;  ///< "mean-shift" | "frequency" | "hybrid"
  bool periodic = false;
  /// Margin from the decision boundary in [0,1]: how far the deciding
  /// statistic sat from the threshold that would have flipped the verdict.
  double confidence = 0.0;
  MeanShiftProvenance mean_shift;
  FrequencyProvenance frequency;
  std::vector<PeriodicGroupProvenance> groups;
};

/// Temporality evidence for one kind: the chunk profile, the statistic each
/// rule compared, and which rule fired (paper §III-B3b).
struct TemporalityProvenance {
  std::vector<double> chunk_bytes;
  double total_bytes = 0.0;
  double min_bytes_threshold = 0.0;  ///< significance bound (paper: 100 MB)
  double chunk_cv = 0.0;             ///< spread across chunks
  double steady_cv_threshold = 0.0;
  double dominance_factor = 0.0;
  std::int64_t dominant_chunk = -1;  ///< index of the dominating chunk, or -1
  std::string rule;  ///< "insignificant" | "steady" | "chunk-dominance" |
                     ///< "middle-dominance" | "unclassified"
  std::string label;
  double confidence = 0.0;  ///< margin from the decision boundary, [0,1]
};

/// Everything recorded for one op kind (read or write).
struct KindProvenance {
  MergeProvenance merge;
  std::uint64_t segments = 0;
  PeriodicityProvenance periodicity;
  TemporalityProvenance temporality;
};

/// Metadata-impact evidence: the measured ratios next to every threshold the
/// three rules compared them with (paper §III-B3c).
struct MetadataProvenance {
  std::uint64_t total_requests = 0;
  std::uint64_t nprocs = 0;  ///< insignificance compares requests < ranks
  double max_requests_per_second = 0.0;
  double mean_requests_per_second = 0.0;
  std::uint64_t spike_seconds = 0;
  double high_spike_threshold = 0.0;
  double spike_threshold = 0.0;
  std::uint64_t multiple_spike_count = 0;
  double high_density_mean_threshold = 0.0;
  bool insignificant = true;
  bool high_spike = false;
  bool multiple_spikes = false;
  bool high_density = false;
  double confidence = 0.0;  ///< margin of the closest rule comparison, [0,1]
};

/// The complete decision path of one analyzed trace.
struct TraceProvenance {
  std::string app_key;
  std::uint64_t job_id = 0;
  double runtime = 0.0;
  std::uint64_t nprocs = 0;
  KindProvenance read;
  KindProvenance write;
  MetadataProvenance metadata;
  /// Category-rule firings from flatten_categories, in evaluation order —
  /// one human-readable line per decision, including gates that *suppressed*
  /// a category (e.g. periodicity dropped because the kind is insignificant).
  std::vector<std::string> rules;
  /// The final flattened category set, by snake-case name.
  std::vector<std::string> categories;
};

/// Serializes one record as a JSON object (stable key order).
[[nodiscard]] json::Value provenance_to_json(const TraceProvenance& record);

/// Inverse of provenance_to_json; missing keys default, wrong shapes error.
[[nodiscard]] util::Expected<TraceProvenance> provenance_from_json(
    const json::Value& value);

/// Renders the decision path as human-readable text — what `mosaic explain`
/// prints: merge -> segment -> periodicity -> temporality -> metadata ->
/// rule firings -> categories.
[[nodiscard]] std::string explain_text(const TraceProvenance& record);

/// Process-wide provenance collector. Off by default; when enabled it
/// samples one in every `sample_every` analyze() calls. Sampled records are
/// buffered in memory (bounded by the sampling rate) and written as one
/// JSONL line per trace, atomically, at end of run.
class ProvenanceJournal {
 public:
  [[nodiscard]] static ProvenanceJournal& global();

  /// Ring capacity used when enable() is not given an explicit one. Sized
  /// for a 1-in-8 audit of a ~32k-trace batch; callers drilling into larger
  /// fleets pass their own bound.
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Starts sampling 1-in-`sample_every` traces (0 is clamped to 1). The
  /// journal buffers at most `capacity` records as a ring — once full, new
  /// records overwrite the oldest and dropped() counts the evictions — so
  /// a long batch run cannot grow the buffer without bound.
  void enable(std::uint64_t sample_every = 1,
              std::size_t capacity = kDefaultCapacity);
  void disable() noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sample_every() const noexcept;

  /// True when the calling analysis should capture provenance: one relaxed
  /// load when disabled, one atomic increment when enabled.
  [[nodiscard]] bool should_sample() noexcept;

  void record(TraceProvenance record);

  /// All buffered records, sorted by (app_key, job_id) so output is
  /// deterministic regardless of worker interleaving.
  [[nodiscard]] std::vector<TraceProvenance> collect() const;

  /// Number of buffered records.
  [[nodiscard]] std::size_t size() const;

  /// Records overwritten because the ring filled up.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Writes collect() as JSONL (one compact object per line) via the atomic
  /// temp+rename writer.
  [[nodiscard]] util::Status write_jsonl(const std::string& path) const;

  /// Drops all buffered records (enabled state and sampling rate are kept).
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> sample_every_{1};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  mutable std::mutex mutex_;
  std::vector<TraceProvenance> records_;  // ring once capacity_ is reached
  std::size_t next_ = 0;                  ///< ring cursor, guarded by mutex_
  std::uint64_t dropped_ = 0;             ///< guarded by mutex_
};

/// Reads a JSONL provenance file back into records. Blank lines are
/// skipped; a malformed line is an error naming its line number.
[[nodiscard]] util::Expected<std::vector<TraceProvenance>>
read_provenance_jsonl(const std::string& path);

}  // namespace mosaic::obs
