#include "obs/provenance.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace mosaic::obs {

namespace {

json::Array doubles_to_json(const std::vector<double>& values) {
  json::Array out;
  out.reserve(values.size());
  for (const double v : values) out.emplace_back(v);
  return out;
}

json::Array strings_to_json(const std::vector<std::string>& values) {
  json::Array out;
  out.reserve(values.size());
  for (const std::string& v : values) out.emplace_back(v);
  return out;
}

json::Value merge_to_json(const MergeProvenance& m) {
  json::Object out;
  out.set("raw_ops", m.raw_ops);
  out.set("after_concurrent", m.after_concurrent);
  out.set("merged_ops", m.merged_ops);
  out.set("covered_seconds_before", m.covered_seconds_before);
  out.set("covered_seconds_after", m.covered_seconds_after);
  return out;
}

json::Value mean_shift_to_json(const MeanShiftProvenance& ms) {
  json::Object out;
  out.set("ran", ms.ran);
  out.set("bandwidth", ms.bandwidth);
  out.set("duration_cv_limit", ms.duration_cv_limit);
  out.set("volume_cv_limit", ms.volume_cv_limit);
  out.set("points", ms.points);
  out.set("iterations", ms.iterations);
  json::Array candidates;
  for (const MeanShiftCandidate& c : ms.candidates) {
    json::Object cand;
    cand.set("size", c.size);
    cand.set("period_seconds", c.period_seconds);
    cand.set("duration_cv", c.duration_cv);
    cand.set("volume_cv", c.volume_cv);
    cand.set("center_length", c.center_length);
    cand.set("center_log_volume", c.center_log_volume);
    cand.set("accepted", c.accepted);
    cand.set("rejected_by", c.rejected_by);
    candidates.emplace_back(std::move(cand));
  }
  out.set("candidates", std::move(candidates));
  return out;
}

json::Value frequency_to_json(const FrequencyProvenance& f) {
  json::Object out;
  out.set("ran", f.ran);
  out.set("bin_seconds", f.bin_seconds);
  out.set("min_score", f.min_score);
  json::Array peaks;
  for (const FrequencyPeak& p : f.peaks) {
    json::Object peak;
    peak.set("period_seconds", p.period_seconds);
    peak.set("score", p.score);
    peak.set("occurrences", p.occurrences);
    peak.set("accepted", p.accepted);
    peaks.emplace_back(std::move(peak));
  }
  out.set("peaks", std::move(peaks));
  return out;
}

json::Value periodicity_to_json(const PeriodicityProvenance& p) {
  json::Object out;
  out.set("backend", p.backend);
  out.set("periodic", p.periodic);
  out.set("confidence", p.confidence);
  out.set("mean_shift", mean_shift_to_json(p.mean_shift));
  out.set("frequency", frequency_to_json(p.frequency));
  json::Array groups;
  for (const PeriodicGroupProvenance& g : p.groups) {
    json::Object group;
    group.set("period_seconds", g.period_seconds);
    group.set("mean_bytes", g.mean_bytes);
    group.set("busy_ratio", g.busy_ratio);
    group.set("occurrences", g.occurrences);
    group.set("magnitude", g.magnitude);
    groups.emplace_back(std::move(group));
  }
  out.set("groups", std::move(groups));
  return out;
}

json::Value temporality_to_json(const TemporalityProvenance& t) {
  json::Object out;
  out.set("chunk_bytes", doubles_to_json(t.chunk_bytes));
  out.set("total_bytes", t.total_bytes);
  out.set("min_bytes_threshold", t.min_bytes_threshold);
  out.set("chunk_cv", t.chunk_cv);
  out.set("steady_cv_threshold", t.steady_cv_threshold);
  out.set("dominance_factor", t.dominance_factor);
  out.set("dominant_chunk", t.dominant_chunk);
  out.set("rule", t.rule);
  out.set("label", t.label);
  out.set("confidence", t.confidence);
  return out;
}

json::Value kind_to_json(const KindProvenance& k) {
  json::Object out;
  out.set("merge", merge_to_json(k.merge));
  out.set("segments", k.segments);
  out.set("periodicity", periodicity_to_json(k.periodicity));
  out.set("temporality", temporality_to_json(k.temporality));
  return out;
}

json::Value metadata_to_json(const MetadataProvenance& m) {
  json::Object out;
  out.set("total_requests", m.total_requests);
  out.set("nprocs", m.nprocs);
  out.set("max_requests_per_second", m.max_requests_per_second);
  out.set("mean_requests_per_second", m.mean_requests_per_second);
  out.set("spike_seconds", m.spike_seconds);
  out.set("high_spike_threshold", m.high_spike_threshold);
  out.set("spike_threshold", m.spike_threshold);
  out.set("multiple_spike_count", m.multiple_spike_count);
  out.set("high_density_mean_threshold", m.high_density_mean_threshold);
  out.set("insignificant", m.insignificant);
  out.set("high_spike", m.high_spike);
  out.set("multiple_spikes", m.multiple_spikes);
  out.set("high_density", m.high_density);
  out.set("confidence", m.confidence);
  return out;
}

// --- parsing helpers --------------------------------------------------------

const json::Value* member(const json::Value& value, std::string_view key) {
  return value.is_object() ? value.as_object().find(key) : nullptr;
}

double get_number(const json::Value& value, std::string_view key,
                  double fallback = 0.0) {
  const json::Value* v = member(value, key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::uint64_t get_uint(const json::Value& value, std::string_view key) {
  return static_cast<std::uint64_t>(get_number(value, key));
}

bool get_bool(const json::Value& value, std::string_view key) {
  const json::Value* v = member(value, key);
  return v != nullptr && v->is_bool() && v->as_bool();
}

std::string get_string(const json::Value& value, std::string_view key) {
  const json::Value* v = member(value, key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

MergeProvenance merge_from_json(const json::Value& v) {
  MergeProvenance m;
  m.raw_ops = get_uint(v, "raw_ops");
  m.after_concurrent = get_uint(v, "after_concurrent");
  m.merged_ops = get_uint(v, "merged_ops");
  m.covered_seconds_before = get_number(v, "covered_seconds_before");
  m.covered_seconds_after = get_number(v, "covered_seconds_after");
  return m;
}

MeanShiftProvenance mean_shift_from_json(const json::Value& v) {
  MeanShiftProvenance ms;
  ms.ran = get_bool(v, "ran");
  ms.bandwidth = get_number(v, "bandwidth");
  ms.duration_cv_limit = get_number(v, "duration_cv_limit");
  ms.volume_cv_limit = get_number(v, "volume_cv_limit");
  ms.points = get_uint(v, "points");
  ms.iterations = get_uint(v, "iterations");
  if (const json::Value* arr = member(v, "candidates");
      arr != nullptr && arr->is_array()) {
    for (const json::Value& item : arr->as_array()) {
      MeanShiftCandidate c;
      c.size = get_uint(item, "size");
      c.period_seconds = get_number(item, "period_seconds");
      c.duration_cv = get_number(item, "duration_cv");
      c.volume_cv = get_number(item, "volume_cv");
      c.center_length = get_number(item, "center_length");
      c.center_log_volume = get_number(item, "center_log_volume");
      c.accepted = get_bool(item, "accepted");
      c.rejected_by = get_string(item, "rejected_by");
      ms.candidates.push_back(std::move(c));
    }
  }
  return ms;
}

FrequencyProvenance frequency_from_json(const json::Value& v) {
  FrequencyProvenance f;
  f.ran = get_bool(v, "ran");
  f.bin_seconds = get_number(v, "bin_seconds");
  f.min_score = get_number(v, "min_score");
  if (const json::Value* arr = member(v, "peaks");
      arr != nullptr && arr->is_array()) {
    for (const json::Value& item : arr->as_array()) {
      FrequencyPeak p;
      p.period_seconds = get_number(item, "period_seconds");
      p.score = get_number(item, "score");
      p.occurrences = get_uint(item, "occurrences");
      p.accepted = get_bool(item, "accepted");
      f.peaks.push_back(p);
    }
  }
  return f;
}

PeriodicityProvenance periodicity_from_json(const json::Value& v) {
  PeriodicityProvenance p;
  p.backend = get_string(v, "backend");
  p.periodic = get_bool(v, "periodic");
  p.confidence = get_number(v, "confidence");
  if (const json::Value* ms = member(v, "mean_shift"); ms != nullptr) {
    p.mean_shift = mean_shift_from_json(*ms);
  }
  if (const json::Value* f = member(v, "frequency"); f != nullptr) {
    p.frequency = frequency_from_json(*f);
  }
  if (const json::Value* arr = member(v, "groups");
      arr != nullptr && arr->is_array()) {
    for (const json::Value& item : arr->as_array()) {
      PeriodicGroupProvenance g;
      g.period_seconds = get_number(item, "period_seconds");
      g.mean_bytes = get_number(item, "mean_bytes");
      g.busy_ratio = get_number(item, "busy_ratio");
      g.occurrences = get_uint(item, "occurrences");
      g.magnitude = get_string(item, "magnitude");
      p.groups.push_back(std::move(g));
    }
  }
  return p;
}

TemporalityProvenance temporality_from_json(const json::Value& v) {
  TemporalityProvenance t;
  if (const json::Value* arr = member(v, "chunk_bytes");
      arr != nullptr && arr->is_array()) {
    for (const json::Value& item : arr->as_array()) {
      if (item.is_number()) t.chunk_bytes.push_back(item.as_number());
    }
  }
  t.total_bytes = get_number(v, "total_bytes");
  t.min_bytes_threshold = get_number(v, "min_bytes_threshold");
  t.chunk_cv = get_number(v, "chunk_cv");
  t.steady_cv_threshold = get_number(v, "steady_cv_threshold");
  t.dominance_factor = get_number(v, "dominance_factor");
  t.dominant_chunk =
      static_cast<std::int64_t>(get_number(v, "dominant_chunk", -1.0));
  t.rule = get_string(v, "rule");
  t.label = get_string(v, "label");
  t.confidence = get_number(v, "confidence");
  return t;
}

KindProvenance kind_from_json(const json::Value& v) {
  KindProvenance k;
  if (const json::Value* m = member(v, "merge"); m != nullptr) {
    k.merge = merge_from_json(*m);
  }
  k.segments = get_uint(v, "segments");
  if (const json::Value* p = member(v, "periodicity"); p != nullptr) {
    k.periodicity = periodicity_from_json(*p);
  }
  if (const json::Value* t = member(v, "temporality"); t != nullptr) {
    k.temporality = temporality_from_json(*t);
  }
  return k;
}

MetadataProvenance metadata_from_json(const json::Value& v) {
  MetadataProvenance m;
  m.total_requests = get_uint(v, "total_requests");
  m.nprocs = get_uint(v, "nprocs");
  m.max_requests_per_second = get_number(v, "max_requests_per_second");
  m.mean_requests_per_second = get_number(v, "mean_requests_per_second");
  m.spike_seconds = get_uint(v, "spike_seconds");
  m.high_spike_threshold = get_number(v, "high_spike_threshold");
  m.spike_threshold = get_number(v, "spike_threshold");
  m.multiple_spike_count = get_uint(v, "multiple_spike_count");
  m.high_density_mean_threshold = get_number(v, "high_density_mean_threshold");
  m.insignificant = get_bool(v, "insignificant");
  m.high_spike = get_bool(v, "high_spike");
  m.multiple_spikes = get_bool(v, "multiple_spikes");
  m.high_density = get_bool(v, "high_density");
  m.confidence = get_number(v, "confidence");
  return m;
}

// --- explain rendering ------------------------------------------------------

void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_format(std::string& out, const char* fmt, ...) {
  char line[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  out += line;
}

void explain_kind(std::string& out, const char* kind,
                  const KindProvenance& k) {
  append_format(out,
                "[%s] merge: %" PRIu64 " raw ops -> %" PRIu64
                " after concurrent merge -> %" PRIu64
                " after neighbor merge (covered %s -> %s)\n",
                kind, k.merge.raw_ops, k.merge.after_concurrent,
                k.merge.merged_ops,
                util::format_duration(k.merge.covered_seconds_before).c_str(),
                util::format_duration(k.merge.covered_seconds_after).c_str());
  append_format(out, "[%s] segment: %" PRIu64 " inter-operation segments\n",
                kind, k.segments);

  const PeriodicityProvenance& p = k.periodicity;
  append_format(out, "[%s] periodicity (backend %s):\n", kind,
                p.backend.c_str());
  if (p.mean_shift.ran) {
    append_format(out,
                  "    mean-shift: %" PRIu64
                  " points, bandwidth %.3f, %" PRIu64 " iterations, %zu "
                  "cluster candidate(s)\n",
                  p.mean_shift.points, p.mean_shift.bandwidth,
                  p.mean_shift.iterations, p.mean_shift.candidates.size());
    for (std::size_t i = 0; i < p.mean_shift.candidates.size(); ++i) {
      const MeanShiftCandidate& c = p.mean_shift.candidates[i];
      if (c.accepted) {
        append_format(out,
                      "      cluster %zu: %" PRIu64
                      " segments, period %.3fs, duration CV %.3f <= %.3f, "
                      "volume CV %.3f <= %.3f -> accepted\n",
                      i, c.size, c.period_seconds, c.duration_cv,
                      p.mean_shift.duration_cv_limit, c.volume_cv,
                      p.mean_shift.volume_cv_limit);
      } else {
        append_format(out,
                      "      cluster %zu: %" PRIu64
                      " segments, period %.3fs, duration CV %.3f, volume CV "
                      "%.3f -> rejected (%s)\n",
                      i, c.size, c.period_seconds, c.duration_cv, c.volume_cv,
                      c.rejected_by.c_str());
      }
    }
  }
  if (p.frequency.ran) {
    append_format(out,
                  "    frequency: bin %.3fs, min comb score %.3f, %zu "
                  "peak(s)\n",
                  p.frequency.bin_seconds, p.frequency.min_score,
                  p.frequency.peaks.size());
    for (const FrequencyPeak& peak : p.frequency.peaks) {
      append_format(out,
                    "      peak: period %.3fs, score %.3f %s %.3f, "
                    "%" PRIu64 " occurrences -> %s\n",
                    peak.period_seconds, peak.score,
                    peak.score >= p.frequency.min_score ? ">=" : "<",
                    p.frequency.min_score, peak.occurrences,
                    peak.accepted ? "accepted" : "rejected");
    }
  }
  if (p.periodic) {
    append_format(out, "    -> periodic, %zu group(s) (confidence %.3f)\n",
                  p.groups.size(), p.confidence);
    for (const PeriodicGroupProvenance& g : p.groups) {
      append_format(out,
                    "      group: period %s (%s) x%" PRIu64
                    ", %s per occurrence, busy %.1f%%\n",
                    util::format_duration(g.period_seconds).c_str(),
                    g.magnitude.c_str(), g.occurrences,
                    util::format_bytes(g.mean_bytes).c_str(),
                    g.busy_ratio * 100.0);
    }
  } else {
    append_format(out, "    -> not periodic (confidence %.3f)\n",
                  p.confidence);
  }

  const TemporalityProvenance& t = k.temporality;
  out += "[";
  out += kind;
  out += "] temporality: chunks [";
  for (std::size_t i = 0; i < t.chunk_bytes.size(); ++i) {
    const double share =
        t.total_bytes > 0.0 ? t.chunk_bytes[i] / t.total_bytes : 0.0;
    append_format(out, "%s%.1f%%", i == 0 ? "" : ", ", share * 100.0);
  }
  append_format(out, "] of %s (threshold %s)\n",
                util::format_bytes(t.total_bytes).c_str(),
                util::format_bytes(t.min_bytes_threshold).c_str());
  append_format(out, "    chunk CV %.3f vs steady %.3f, dominance %.1fx",
                t.chunk_cv, t.steady_cv_threshold, t.dominance_factor);
  if (t.dominant_chunk >= 0) {
    append_format(out, ", chunk %lld dominates",
                  static_cast<long long>(t.dominant_chunk));
  }
  append_format(out, "\n    rule '%s' -> %s (confidence %.3f)\n",
                t.rule.c_str(), t.label.c_str(), t.confidence);
}

}  // namespace

json::Value provenance_to_json(const TraceProvenance& record) {
  json::Object out;
  out.set("app_key", record.app_key);
  out.set("job_id", record.job_id);
  out.set("runtime", record.runtime);
  out.set("nprocs", record.nprocs);
  out.set("read", kind_to_json(record.read));
  out.set("write", kind_to_json(record.write));
  out.set("metadata", metadata_to_json(record.metadata));
  out.set("rules", strings_to_json(record.rules));
  out.set("categories", strings_to_json(record.categories));
  return out;
}

util::Expected<TraceProvenance> provenance_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::Error(util::ErrorCode::kParseError,
                       "provenance record is not a JSON object");
  }
  TraceProvenance record;
  record.app_key = get_string(value, "app_key");
  record.job_id = get_uint(value, "job_id");
  record.runtime = get_number(value, "runtime");
  record.nprocs = get_uint(value, "nprocs");
  if (const json::Value* v = member(value, "read"); v != nullptr) {
    record.read = kind_from_json(*v);
  }
  if (const json::Value* v = member(value, "write"); v != nullptr) {
    record.write = kind_from_json(*v);
  }
  if (const json::Value* v = member(value, "metadata"); v != nullptr) {
    record.metadata = metadata_from_json(*v);
  }
  if (const json::Value* v = member(value, "rules");
      v != nullptr && v->is_array()) {
    for (const json::Value& item : v->as_array()) {
      if (item.is_string()) record.rules.push_back(item.as_string());
    }
  }
  if (const json::Value* v = member(value, "categories");
      v != nullptr && v->is_array()) {
    for (const json::Value& item : v->as_array()) {
      if (item.is_string()) record.categories.push_back(item.as_string());
    }
  }
  return record;
}

std::string explain_text(const TraceProvenance& record) {
  std::string out;
  append_format(out,
                "trace %s job %" PRIu64 " (runtime %s, %" PRIu64 " ranks)\n\n",
                record.app_key.c_str(), record.job_id,
                util::format_duration(record.runtime).c_str(), record.nprocs);
  explain_kind(out, "read", record.read);
  explain_kind(out, "write", record.write);

  const MetadataProvenance& m = record.metadata;
  append_format(out,
                "[metadata] %" PRIu64 " requests on %" PRIu64
                " ranks, peak %.1f req/s (spike >= %.0f, high spike >= "
                "%.0f), %" PRIu64 " spike second(s) (multiple >= %" PRIu64
                "), mean %.2f req/s (high density >= %.0f)\n",
                m.total_requests, m.nprocs, m.max_requests_per_second,
                m.spike_threshold, m.high_spike_threshold, m.spike_seconds,
                m.multiple_spike_count, m.mean_requests_per_second,
                m.high_density_mean_threshold);
  append_format(out,
                "    -> insignificant=%s high_spike=%s multiple_spikes=%s "
                "high_density=%s (confidence %.3f)\n",
                m.insignificant ? "yes" : "no", m.high_spike ? "yes" : "no",
                m.multiple_spikes ? "yes" : "no",
                m.high_density ? "yes" : "no", m.confidence);

  out += "\nrules:\n";
  for (const std::string& rule : record.rules) {
    out += "  - " + rule + "\n";
  }
  out += "\ncategories:\n";
  for (const std::string& category : record.categories) {
    out += "  " + category + "\n";
  }
  return out;
}

ProvenanceJournal& ProvenanceJournal::global() {
  // Leaky singleton, same lifetime discipline as Registry / SpanTracer.
  static auto* journal = new ProvenanceJournal();
  return *journal;
}

void ProvenanceJournal::enable(std::uint64_t sample_every,
                               std::size_t capacity) {
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
  capacity_.store(capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
  tick_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void ProvenanceJournal::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t ProvenanceJournal::sample_every() const noexcept {
  return sample_every_.load(std::memory_order_relaxed);
}

bool ProvenanceJournal::should_sample() noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  return tick_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

void ProvenanceJournal::record(TraceProvenance record) {
  static Counter& records_counter = Registry::global().counter(
      names::kProvenanceRecords, "provenance records captured by the journal");
  records_counter.add();
  const std::scoped_lock lock(mutex_);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (records_.size() < capacity) {
    records_.push_back(std::move(record));
  } else {
    records_[next_] = std::move(record);
    next_ = (next_ + 1) % records_.size();
    ++dropped_;
  }
}

std::vector<TraceProvenance> ProvenanceJournal::collect() const {
  std::vector<TraceProvenance> out;
  {
    const std::scoped_lock lock(mutex_);
    out = records_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceProvenance& a, const TraceProvenance& b) {
              if (a.app_key != b.app_key) return a.app_key < b.app_key;
              return a.job_id < b.job_id;
            });
  return out;
}

std::size_t ProvenanceJournal::size() const {
  const std::scoped_lock lock(mutex_);
  return records_.size();
}

util::Status ProvenanceJournal::write_jsonl(const std::string& path) const {
  std::string payload;
  for (const TraceProvenance& record : collect()) {
    payload += json::serialize(provenance_to_json(record), /*pretty=*/false);
    payload += '\n';
  }
  return util::write_file_atomic(path, payload);
}

std::uint64_t ProvenanceJournal::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

void ProvenanceJournal::reset() {
  const std::scoped_lock lock(mutex_);
  records_.clear();
  next_ = 0;
  dropped_ = 0;
}

util::Expected<std::vector<TraceProvenance>> read_provenance_jsonl(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Error(util::ErrorCode::kNotFound,
                       "cannot open provenance file " + path);
  }
  std::vector<TraceProvenance> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = json::parse(line);
    if (!parsed.has_value()) {
      return util::Error(util::ErrorCode::kParseError,
                         path + ":" + std::to_string(line_no) + ": " +
                             parsed.error().message);
    }
    auto record = provenance_from_json(*parsed);
    if (!record.has_value()) {
      return util::Error(util::ErrorCode::kParseError,
                         path + ":" + std::to_string(line_no) + ": " +
                             record.error().message);
    }
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace mosaic::obs
