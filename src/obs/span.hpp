// Per-thread span tracing with Chrome trace_event export.
//
// MOSAIC_SPAN("segment") opens an RAII scope that records a begin/end pair
// on the steady clock into the calling thread's ring buffer. Buffers are
// fixed-capacity (oldest spans are overwritten, with a drop counter), so a
// batch run over hundreds of thousands of traces cannot exhaust memory.
// write_chrome_trace() exports everything recorded so far as Chrome
// trace_event JSON ("X" complete events), loadable in chrome://tracing and
// Perfetto, giving a per-thread, per-stage visual profile of a run:
// ingest -> parse -> merge -> segment -> periodicity -> temporality ->
// metadata -> categorize.
//
// Tracing is off by default; a disabled MOSAIC_SPAN costs one relaxed load
// and a branch (no clock read, no buffer write).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mosaic::obs {

/// Sampling-profiler scope hooks (defined in profiler.cpp; declared here so
/// SpanScope/StageScope can feed the profiler's per-thread frame stack
/// without a header cycle). push returns true when a frame was pushed — the
/// scope pops exactly then. Disabled cost: one relaxed load + branch.
[[nodiscard]] bool profiler_push_frame(const char* name) noexcept;
void profiler_pop_frame() noexcept;

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the tracer) — spans are recorded on hot paths and must not allocate.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< steady clock, relative to process start
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-thread id assigned on first record
};

/// Process-wide tracer owning one ring buffer per recording thread.
class SpanTracer {
 public:
  [[nodiscard]] static SpanTracer& global();

  /// Starts recording. `per_thread_capacity` bounds each thread's buffer
  /// (clamped to a floor of 16); when full, the oldest spans are overwritten
  /// and counted as dropped.
  void enable(std::size_t per_thread_capacity = 1 << 16);
  void disable() noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one completed span (no-op when disabled).
  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t end_ns) noexcept;

  /// Collects every buffered span, sorted by (tid, start, end) so output is
  /// deterministic for identical executions. Does not clear the buffers.
  [[nodiscard]] std::vector<SpanEvent> collect() const;

  /// Spans overwritten because a thread's ring filled up.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Serializes collected spans as Chrome trace_event JSON.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Atomically (temp + rename) writes chrome_trace_json() to `path`.
  [[nodiscard]] util::Status write_chrome_trace(const std::string& path) const;

  /// Clears all buffers and thread registrations (capacity and enabled
  /// state are kept). Safe only while no spans are being recorded.
  void reset();

  /// Nanoseconds since process start on the steady clock.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<SpanEvent> ring;
    std::size_t next = 0;  ///< overwrite position once the ring is full
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& buffer_for_this_thread() noexcept;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};  ///< bumped by reset()
  std::atomic<std::size_t> capacity_{1 << 16};
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span scope; prefer the MOSAIC_SPAN macro.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept
      : pushed_(profiler_push_frame(name)) {
    if (SpanTracer::global().enabled()) {
      name_ = name;
      start_ns_ = SpanTracer::now_ns();
    }
  }
  ~SpanScope() {
    if (name_ != nullptr) {
      SpanTracer::global().record(name_, start_ns_, SpanTracer::now_ns());
    }
    if (pushed_) profiler_pop_frame();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool pushed_;
};

}  // namespace mosaic::obs

#define MOSAIC_OBS_CONCAT_INNER(a, b) a##b
#define MOSAIC_OBS_CONCAT(a, b) MOSAIC_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope as a named span (string literal).
#define MOSAIC_SPAN(name) \
  const ::mosaic::obs::SpanScope MOSAIC_OBS_CONCAT(mosaic_span_, \
                                                   __LINE__){name}
