#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#if defined(__x86_64__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

#include "obs/federation.hpp"
#include "util/fs.hpp"

namespace mosaic::obs {

namespace {

/// Thread-local handle: the owning tracer generation plus the buffer the
/// thread writes to. A stale generation (after reset()) re-registers.
struct ThreadSlot {
  std::uint64_t generation = ~std::uint64_t{0};
  std::shared_ptr<void> buffer;  ///< keeps the buffer alive past thread exit
};

thread_local ThreadSlot t_slot;

std::uint64_t steady_now_ns() noexcept {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

#if defined(__x86_64__)
/// Once-calibrated TSC-to-nanoseconds conversion. mult == 0 means the TSC
/// is unusable (not invariant) and callers must take the steady_clock
/// path. Fixed-point Q32: ns = (ticks * mult) >> 32, keeping the per-read
/// conversion to one 64x64->128 multiply instead of int<->double churn.
struct TscCalibration {
  std::uint64_t t0_ticks = 0;
  std::uint64_t mult = 0;  ///< ns per tick, Q32 fixed point
};

bool invariant_tsc_supported() noexcept {
  // CPUID.80000007H:EDX[8] — invariant TSC: constant rate across P-states
  // and synchronized across cores, the precondition for using raw ticks as
  // a time base.
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0x80000000U, nullptr) < 0x80000007U) return false;
  if (__get_cpuid(0x80000007U, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1U << 8)) != 0;
}

TscCalibration calibrate_tsc() noexcept {
  TscCalibration cal;
  if (!invariant_tsc_supported()) return cal;
  // Measure the tick rate against steady_clock over a short spin. ~1 ms
  // keeps the one-time cost negligible while bounding the rate error well
  // under 0.1% — far below what millisecond-scale stage histograms resolve.
  const std::uint64_t ticks_begin = __rdtsc();
  const auto wall_begin = std::chrono::steady_clock::now();
  for (;;) {
    const auto elapsed = std::chrono::steady_clock::now() - wall_begin;
    if (elapsed >= std::chrono::milliseconds(1)) {
      const std::uint64_t ticks = __rdtsc() - ticks_begin;
      if (ticks == 0) return cal;  // TSC not advancing; keep fallback
      const double ns_per_tick =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()) /
          static_cast<double>(ticks);
      cal.t0_ticks = ticks_begin;
      cal.mult = static_cast<std::uint64_t>(ns_per_tick * 4294967296.0);
      return cal;
    }
  }
}
#endif  // defined(__x86_64__)

}  // namespace

SpanTracer& SpanTracer::global() {
  // Leaked on purpose: pool workers may unwind spans during static teardown.
  static SpanTracer* instance = new SpanTracer();
  return *instance;
}

std::uint64_t SpanTracer::now_ns() noexcept {
#if defined(__x86_64__)
  // RDTSC fast path: roughly half the cost of a vDSO clock_gettime, and
  // this is the hottest instrumentation primitive (two reads per stage
  // scope). Calibrated once; non-invariant TSCs fall back to steady_clock.
  static const TscCalibration cal = calibrate_tsc();
  if (cal.mult != 0) {
    __extension__ typedef unsigned __int128 uint128;
    const uint128 product =
        static_cast<uint128>(__rdtsc() - cal.t0_ticks) * cal.mult;
    return static_cast<std::uint64_t>(product >> 32);
  }
#endif
  return steady_now_ns();
}

void SpanTracer::enable(std::size_t per_thread_capacity) {
  capacity_.store(std::max<std::size_t>(16, per_thread_capacity),
                  std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void SpanTracer::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
}

SpanTracer::ThreadBuffer& SpanTracer::buffer_for_this_thread() noexcept {
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (t_slot.buffer == nullptr || t_slot.generation != generation) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->ring.reserve(std::min<std::size_t>(
        capacity_.load(std::memory_order_relaxed), 1024));
    {
      const std::scoped_lock lock(registry_mutex_);
      buffer->tid = static_cast<std::uint32_t>(buffers_.size());
      buffers_.push_back(buffer);
    }
    t_slot.generation = generation;
    t_slot.buffer = buffer;
  }
  return *static_cast<ThreadBuffer*>(t_slot.buffer.get());
}

void SpanTracer::record(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) noexcept {
  if (!enabled()) return;
  ThreadBuffer& buffer = buffer_for_this_thread();
  const std::scoped_lock lock(buffer.mutex);  // uncontended except on drain
  const SpanEvent event{name, start_ns, end_ns, buffer.tid};
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (buffer.ring.size() < capacity) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[buffer.next] = event;
    buffer.next = (buffer.next + 1) % buffer.ring.size();
    ++buffer.dropped;
  }
}

std::vector<SpanEvent> SpanTracer::collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::scoped_lock lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers) {
    const std::scoped_lock lock(buffer->mutex);
    events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns < b.end_ns;
            });
  return events;
}

std::uint64_t SpanTracer::dropped() const noexcept {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::scoped_lock lock(registry_mutex_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& buffer : buffers) {
    const std::scoped_lock lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

std::string SpanTracer::chrome_trace_json() const {
  // One lane, pid 1: the single-process export is the one-lane case of the
  // fleet serializer (obs/federation.hpp), so named process/thread metadata
  // and event schema stay identical between solo and merged traces.
  const std::vector<SpanEvent> events = collect();
  TraceLane lane;
  lane.process_name = "mosaic";
  lane.spans.reserve(events.size());
  for (const SpanEvent& event : events) {
    lane.spans.push_back(
        {event.name, event.start_ns, event.end_ns, event.tid});
  }
  return chrome_trace_from_lanes({std::move(lane)});
}

util::Status SpanTracer::write_chrome_trace(const std::string& path) const {
  return util::write_file_atomic(path, chrome_trace_json());
}

void SpanTracer::reset() {
  const std::scoped_lock lock(registry_mutex_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace mosaic::obs
