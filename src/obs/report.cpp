#include "obs/report.hpp"

#include <algorithm>
#include <chrono>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace mosaic::obs {

util::Status write_metrics_files(const std::string& path) {
  const Snapshot snapshot = Registry::global().snapshot();
  if (const auto status = util::write_file_atomic(
          path, json::serialize(metrics_to_json(snapshot)) + "\n");
      !status.ok()) {
    return status;
  }
  return util::write_file_atomic(path + ".prom",
                                 metrics_to_prometheus(snapshot));
}

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sum of every counter in the family: the bare series plus any labeled
/// `name{...}` variants. Reading a snapshot (rather than Registry::counter)
/// keeps the heartbeat from materializing zero-valued series it only reads.
std::uint64_t sum_counter_family(const Snapshot& snapshot,
                                 std::string_view base) {
  std::uint64_t total = 0;
  for (const CounterSample& sample : snapshot.counters) {
    if (sample.name == base ||
        (sample.name.size() > base.size() &&
         sample.name.compare(0, base.size(), base) == 0 &&
         sample.name[base.size()] == '{')) {
      total += sample.value;
    }
  }
  return total;
}

std::int64_t gauge_value(const Snapshot& snapshot, std::string_view name) {
  for (const GaugeSample& sample : snapshot.gauges) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

}  // namespace

Heartbeat::Heartbeat(double interval_seconds)
    : interval_seconds_(interval_seconds) {
  if (interval_seconds_ <= 0.0) return;
  start_seconds_ = steady_seconds();
  last_tick_seconds_ = start_seconds_;
  thread_ = std::thread([this] { loop(); });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  if (!thread_.joinable()) return;
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
  tick();  // final line so even sub-interval runs report once
  summary();
}

void Heartbeat::summary() const {
  const Snapshot snapshot = Registry::global().snapshot();
  const std::uint64_t processed =
      sum_counter_family(snapshot, names::kIngestProcessed);
  const std::uint64_t traces =
      sum_counter_family(snapshot, names::kTracesAnalyzed);
  const std::uint64_t retries =
      sum_counter_family(snapshot, names::kIngestRetryAttempts);
  const double elapsed = std::max(steady_seconds() - start_seconds_, 1e-9);
  MOSAIC_LOG_INFO(
      "progress: run complete: %llu file(s) processed, %llu trace(s) "
      "analyzed in %.2fs (%.1f traces/s), %llu retries",
      static_cast<unsigned long long>(processed),
      static_cast<unsigned long long>(traces), elapsed,
      static_cast<double>(traces) / elapsed,
      static_cast<unsigned long long>(retries));
}

void Heartbeat::loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    const bool stopping = wake_.wait_for(
        lock, std::chrono::duration<double>(interval_seconds_),
        [this] { return stopping_; });
    if (stopping) return;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void Heartbeat::tick() {
  const Snapshot snapshot = Registry::global().snapshot();
  const std::uint64_t scanned =
      sum_counter_family(snapshot, names::kIngestScanned);
  const std::uint64_t processed =
      sum_counter_family(snapshot, names::kIngestProcessed);
  const std::uint64_t loaded =
      sum_counter_family(snapshot, names::kIngestLoaded);
  const std::uint64_t evicted =
      sum_counter_family(snapshot, names::kFunnelEvictions);
  const std::uint64_t retries =
      sum_counter_family(snapshot, names::kIngestRetryAttempts);
  const std::uint64_t quarantined =
      sum_counter_family(snapshot, names::kIngestQuarantined);
  const std::int64_t queue_depth =
      gauge_value(snapshot, names::kPoolQueueDepth);
  const std::int64_t active = gauge_value(snapshot, names::kPoolActiveWorkers);
  const std::int64_t threads = gauge_value(snapshot, names::kPoolThreads);

  const double now = steady_seconds();
  const double elapsed = std::max(now - last_tick_seconds_, 1e-9);
  const double rate =
      static_cast<double>(processed - std::min(processed, last_processed_)) /
      elapsed;
  last_processed_ = processed;
  last_tick_seconds_ = now;

  const double utilization =
      threads > 0
          ? 100.0 * static_cast<double>(active) / static_cast<double>(threads)
          : 0.0;
  MOSAIC_LOG_INFO(
      "progress: %llu/%llu files (%.1f/s), loaded %llu, evicted %llu, "
      "retries %llu, quarantined %llu, queue %lld, utilization %.0f%%",
      static_cast<unsigned long long>(processed),
      static_cast<unsigned long long>(scanned), rate,
      static_cast<unsigned long long>(loaded),
      static_cast<unsigned long long>(evicted),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(quarantined),
      static_cast<long long>(queue_depth), utilization);
}

}  // namespace mosaic::obs
