// Combined per-stage instrumentation scope.
//
// MOSAIC_STAGE(histogram, "name") times the enclosing scope once and feeds
// both the stage latency histogram and the span tracer from the same pair
// of clock reads. The separate ScopedTimerMs + MOSAIC_SPAN composition
// reads the steady clock four times per stage; on a pipeline whose stages
// run in microseconds those duplicate reads are the dominant
// instrumentation cost, so the hot path uses this fused scope instead.
//
// Fully disabled (metrics off, tracer off) the scope costs two relaxed
// loads and a branch — no clock read.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mosaic::obs {

/// RAII scope observing elapsed milliseconds into `hist` and recording a
/// span named `span_name` (string literal) — one clock read at entry, one
/// at exit, shared by both sinks.
class StageScope {
 public:
  StageScope(Histogram& hist, const char* span_name) noexcept
      : hist_(metrics_enabled() ? &hist : nullptr),
        name_(SpanTracer::global().enabled() ? span_name : nullptr),
        pushed_(profiler_push_frame(span_name)) {
    if (hist_ != nullptr || name_ != nullptr) {
      start_ns_ = SpanTracer::now_ns();
    }
  }
  /// `active == false` makes the scope a no-op (one branch, no clock read);
  /// the hot path uses this to sample per-stage detail per trace. The
  /// profiler frame is pushed even for sampled-out scopes: the wall-clock
  /// profile must stay unbiased by the 1-in-N span sampling.
  StageScope(bool active, Histogram& hist, const char* span_name) noexcept
      : hist_(active && metrics_enabled() ? &hist : nullptr),
        name_(active && SpanTracer::global().enabled() ? span_name : nullptr),
        pushed_(profiler_push_frame(span_name)) {
    if (hist_ != nullptr || name_ != nullptr) {
      start_ns_ = SpanTracer::now_ns();
    }
  }
  ~StageScope() {
    if (hist_ != nullptr || name_ != nullptr) {
      const std::uint64_t end_ns = SpanTracer::now_ns();
      if (hist_ != nullptr) {
        hist_->observe(static_cast<double>(end_ns - start_ns_) * 1e-6);
      }
      if (name_ != nullptr) {
        SpanTracer::global().record(name_, start_ns_, end_ns);
      }
    }
    if (pushed_) profiler_pop_frame();
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Histogram* hist_;    ///< null when metrics were disabled at entry
  const char* name_;   ///< null when tracing was disabled at entry
  bool pushed_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace mosaic::obs

/// Times the enclosing scope into `hist` and as a span named `name`.
#define MOSAIC_STAGE(hist, name)                            \
  const ::mosaic::obs::StageScope MOSAIC_OBS_CONCAT(        \
      mosaic_stage_, __LINE__) {                            \
    hist, name                                              \
  }
