// Telemetry federation: merging per-process metric snapshots and span
// buffers into one fleet-wide view.
//
// Distributed dispatch (src/dist) runs one obs::Registry and one SpanTracer
// per worker process; everything they measure would die with the process.
// Workers therefore serialize Snapshots and span rings to JSON (the wire
// helpers below), ship them to the manager piggybacked on protocol frames,
// and the manager folds them into a FleetRegistry:
//
//   - counters   sum across sources, and every source also keeps its own
//                `{worker="host:port"}`-labeled series,
//   - gauges     stay per-source only (summing instantaneous values across
//                processes is meaningless),
//   - histograms add bucket-wise when bucket bounds match; a source whose
//                bounds disagree is kept as its labeled series but excluded
//                from the fleet total (counted in MergeStats).
//
// The merge is deterministic: sources are folded in name order and the
// output is name-sorted, so the fleet view does not depend on worker
// arrival order. Span lanes are clock-aligned by a per-source offset
// (estimated at connection handshake) and rendered as one named Chrome
// trace process per source, so a merged multi-worker trace is readable in
// Perfetto: lane "manager", lane "worker 127.0.0.1:9101", ...
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace mosaic::obs {

/// A span that crossed a process boundary: like SpanEvent, but owning its
/// name (the originating process's string literals are not addressable
/// here). Timestamps stay in the *source* process's ns-since-start clock.
struct FleetSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
};

/// Snapshot -> wire JSON. Carries names, help text, values and (for
/// histograms) bounds + non-cumulative bucket counts, so the receiver can
/// reconstruct the exact Snapshot and validate bounds on merge.
[[nodiscard]] json::Value snapshot_to_wire_json(const Snapshot& snapshot);

/// Wire JSON -> Snapshot. Errors (kParseError) on missing or mistyped
/// fields — the degraded-heartbeat path in dist/telemetry keys off this.
[[nodiscard]] util::Expected<Snapshot> snapshot_from_wire_json(
    const json::Value& value);

/// Span ring -> wire JSON array (compact keys; a full ring is shipped once
/// per task, not per heartbeat).
[[nodiscard]] json::Value spans_to_wire_json(
    const std::vector<SpanEvent>& spans);

/// Wire JSON array -> owned spans. Errors (kParseError) on malformed
/// entries.
[[nodiscard]] util::Expected<std::vector<FleetSpan>> spans_from_wire_json(
    const json::Value& value);

/// Prepends a `worker="<worker>"` label to a series name, preserving any
/// labels already encoded in it:
///   ("m_total", "h:1")              -> m_total{worker="h:1"}
///   ("m_total{code=\"x\"}", "h:1")  -> m_total{worker="h:1",code="x"}
/// The worker label comes first so stripping `worker="...",?` recovers the
/// fleet-total series name exactly (the CI sum check relies on this).
[[nodiscard]] std::string with_worker_label(std::string_view series,
                                            std::string_view worker);

/// What the merge had to drop or reject.
struct MergeStats {
  std::size_t histogram_bound_mismatches = 0;
};

/// Counter/histogram delta of `current` against `baseline` (both cumulative
/// snapshots of the same registry). Unchanged counters and histograms are
/// omitted; series new to `current` (or whose histogram bounds changed) ship
/// whole. Gauges are instantaneous, so changed gauges ship their absolute
/// value and unchanged ones are omitted. apply_snapshot_delta(baseline,
/// delta) reconstructs `current` exactly — the wire saving is every series
/// that did not move between heartbeats.
[[nodiscard]] Snapshot snapshot_delta(const Snapshot& baseline,
                                      const Snapshot& current);

/// Applies a delta in place: counters and matching-bounds histograms add,
/// gauges replace, unknown series append. Output stays name-sorted.
void apply_snapshot_delta(Snapshot& base, const Snapshot& delta);

/// Folds per-source snapshots into one fleet Snapshot (semantics above).
/// Sources are processed in name order regardless of input order.
[[nodiscard]] Snapshot merge_snapshots(
    std::vector<std::pair<std::string, Snapshot>> sources,
    MergeStats* stats = nullptr);

/// One process lane of a merged Chrome trace. `clock_shift_ns` is added to
/// every timestamp to move the lane onto the reference (manager) timeline.
struct TraceLane {
  std::string process_name;
  std::int64_t clock_shift_ns = 0;
  std::vector<FleetSpan> spans;  ///< sorted by (tid, start) for determinism
};

/// Renders lanes as Chrome trace_event JSON: lane i gets pid i+1 plus
/// process_name/thread_name "M" metadata, spans become "X" complete events.
/// Timestamps are re-based so the earliest event across all lanes is t=0
/// (clock shifts may otherwise push a lane negative, which trace viewers
/// handle poorly).
[[nodiscard]] std::string chrome_trace_from_lanes(
    const std::vector<TraceLane>& lanes);

/// The manager-side fleet aggregation point: latest snapshot, span buffer
/// and clock offset per source, merged on demand. Thread-safe; snapshots
/// are cumulative so "last write wins" per source is the correct fold.
class FleetRegistry {
 public:
  /// Replaces `source`'s snapshot (registers the source on first call).
  void update_snapshot(const std::string& source, Snapshot snapshot);

  /// Folds a delta into `source`'s stored snapshot (semantics of the free
  /// apply_snapshot_delta). A delta for an unknown source is stored as-is —
  /// the sender's full-on-reconnect rule makes that a startup race, not a
  /// correctness hazard.
  void apply_snapshot_delta(const std::string& source, const Snapshot& delta);

  /// Replaces `source`'s span buffer (span rings are cumulative too).
  void update_spans(const std::string& source, std::vector<FleetSpan> spans);

  /// Offset of `source`'s span clock relative to the reference clock:
  /// reference_ns = source_ns - offset_ns.
  void set_clock_offset_ns(const std::string& source, std::int64_t offset_ns);

  [[nodiscard]] std::vector<std::string> sources() const;
  [[nodiscard]] std::size_t source_count() const;

  /// Fleet-wide merged snapshot (labeled per-source series + totals).
  [[nodiscard]] Snapshot merged(MergeStats* stats = nullptr) const;

  /// Merged Chrome trace: one named lane per source, "manager" first (pid
  /// 1) when present, the rest in name order.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Atomically (temp + rename) writes chrome_trace_json() to `path`.
  [[nodiscard]] util::Status write_chrome_trace(const std::string& path) const;

 private:
  struct Source {
    Snapshot snapshot;
    std::vector<FleetSpan> spans;
    std::int64_t offset_ns = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Source> sources_;
};

}  // namespace mosaic::obs
