// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
// histograms for the whole pipeline (paper §IV-E measures throughput and
// per-stage cost; this is the subsystem that makes those numbers observable
// in every run, not just in dedicated benchmarks).
//
// Design constraints, in order:
//   1. Instrumentation sits on the thread-pool hot path (per trace, per
//      stage, per retry). An update must cost one relaxed atomic RMW on a
//      thread-local shard — no mutex, no false sharing between workers.
//   2. Scrapes are rare (end of run, heartbeat ticks) and may be O(shards).
//   3. Metric handles are stable for the process lifetime: call sites cache
//      a reference once (function-local static) and never look up again.
//   4. Everything can be disabled at runtime (set_metrics_enabled(false)),
//      reducing an update to one relaxed load and a predictable branch —
//      this is what the perf_pipeline enabled-vs-disabled comparison pins.
//
// Exposition: snapshot() produces a name-sorted Snapshot which serializes to
// JSON (metrics_to_json) and Prometheus text format (metrics_to_prometheus).
// Label sets are encoded in the metric name itself, Prometheus-style:
//   mosaic_funnel_evictions_total{code="io-error"}
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace mosaic::obs {

/// Number of cache-line-padded slots each counter/histogram fans out over.
/// Threads pick a slot round-robin on first use; 16 slots keep contention
/// negligible up to the core counts the paper evaluates on.
inline constexpr std::size_t kShards = 16;

/// Global runtime switch. Disabled updates are a relaxed load + branch.
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// Shard slot of the calling thread (stable per thread).
[[nodiscard]] std::size_t shard_index() noexcept;

/// Monotonic counter, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    if (!metrics_enabled()) return;
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over shards. Racing increments may or may not be included — exact
  /// once the writers have quiesced (e.g. after ThreadPool::wait_idle).
  [[nodiscard]] std::uint64_t value() const noexcept;

  /// Test/bench seam: zeroes all shards. Not safe vs concurrent writers.
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value (queue depth, active workers).
/// A single atomic: gauges are updated at scheduling frequency, not per-op.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    if (!metrics_enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper edges; one implicit +Inf bucket catches the rest). Bucket counts
/// and the running sum are sharded like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts, bounds().size() + 1 entries.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;  ///< sorted ascending
  std::array<Shard, kShards> shards_;
};

/// Point-in-time view of every registered instrument, name-sorted.
struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  std::string help;
  std::int64_t value = 0;
};
struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< non-cumulative, bounds+1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Process-wide instrument registry. Instruments are created on first use
/// and live forever; the returned references are stable.
class Registry {
 public:
  /// The process-wide registry (leaky singleton: worker threads may still
  /// touch instruments during static teardown).
  [[nodiscard]] static Registry& global();

  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  /// Re-registering a histogram name must repeat the same bounds.
  Histogram& histogram(std::string_view name, std::span<const double> bounds,
                       std::string_view help = "");

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every instrument (names stay registered). Test/bench seam; not
  /// safe while writers are running.
  void reset();

 private:
  template <typename T>
  struct Entry {
    std::string help;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>, std::less<>> counters_;
  std::map<std::string, Entry<Gauge>, std::less<>> gauges_;
  std::map<std::string, Entry<Histogram>, std::less<>> histograms_;
};

/// Default latency bucket edges in milliseconds (10us .. 10s, log-spaced);
/// shared by every *_ms histogram so exported shapes are comparable.
[[nodiscard]] std::span<const double> latency_buckets_ms() noexcept;

/// Renders a snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// Keys are sorted, so two snapshots with equal values serialize
/// byte-identically.
[[nodiscard]] json::Value metrics_to_json(const Snapshot& snapshot);

/// Renders a snapshot in Prometheus text exposition format (# TYPE lines,
/// cumulative _bucket/_sum/_count series for histograms).
[[nodiscard]] std::string metrics_to_prometheus(const Snapshot& snapshot);

/// Builds a labeled series name: labeled("m_total", "code", "io-error")
/// -> m_total{code="io-error"}.
[[nodiscard]] std::string labeled(std::string_view name, std::string_view key,
                                  std::string_view value);

/// RAII stage timer: observes elapsed milliseconds into `hist` at scope
/// exit. The clock is only read when metrics are enabled.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram& hist) noexcept;
  ~ScopedTimerMs();
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Histogram* hist_;  ///< null when metrics were disabled at entry
  std::uint64_t start_ns_ = 0;
};

}  // namespace mosaic::obs
