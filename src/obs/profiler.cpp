#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>

#include "obs/names.hpp"
#include "util/fs.hpp"

namespace mosaic::obs {

namespace {

/// Raw leaf samples kept for the Chrome "profile" lane. Beyond this the
/// aggregates keep counting but the lane stops growing (dropped counter).
constexpr std::size_t kLaneCapacity = 1 << 16;

/// Constant-initialized so profiler_note_allocation() is safe from a global
/// operator new replacement at any point in static initialization.
std::atomic<bool> g_profiler_enabled{false};
std::atomic<std::uint64_t> g_stacks_truncated{0};

/// One registered thread's frame stack. Writers (the owning thread) pair a
/// relaxed frame store with a release depth store; the sampler pairs an
/// acquire depth load with relaxed frame loads. A pop+push racing the
/// sampler can make it read a frame from the *newer* stack — still a valid
/// string-literal pointer, and a one-sample attribution error is noise for
/// a statistical profiler. Frames are never nulled on pop, so the only
/// nullptr the sampler can see is a slot never written; it skips those
/// samples as torn.
struct ThreadStack {
  std::array<std::atomic<const char*>, kProfilerMaxDepth> frames{};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uint64_t> pending_allocs{0};
  std::atomic<bool> alive{true};
  std::uint32_t tid = 0;
};

struct StackDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadStack>> stacks;
  std::uint32_t next_tid = 0;
};

StackDirectory& directory() {
  // Leaky singleton, like Registry: exiting threads may unregister during
  // static teardown.
  static auto* dir = new StackDirectory();
  return *dir;
}

/// Fast path handle: raw pointer so push/pop and the allocation hook never
/// touch the shared_ptr control block.
thread_local ThreadStack* t_stack = nullptr;

struct ThreadRegistration {
  std::shared_ptr<ThreadStack> stack;
  ~ThreadRegistration() {
    if (stack) {
      stack->alive.store(false, std::memory_order_relaxed);
      t_stack = nullptr;
    }
  }
};
thread_local ThreadRegistration t_registration;

/// Registers the calling thread on first push. Allocates, so it must only
/// run from scope hooks (never from the allocation hook).
ThreadStack* register_this_thread() {
  auto stack = std::make_shared<ThreadStack>();
  StackDirectory& dir = directory();
  {
    const std::scoped_lock lock(dir.mutex);
    stack->tid = dir.next_tid++;
    dir.stacks.push_back(stack);
  }
  t_registration.stack = stack;
  t_stack = stack.get();
  return t_stack;
}

struct ProfilerCounters {
  Counter& samples;
  Counter& dropped;
  Counter& truncated;
  Counter& allocs;
  Gauge& threads;

  static ProfilerCounters& get() {
    static ProfilerCounters counters{
        Registry::global().counter(names::kProfilerSamples,
                                   "Stack samples aggregated by the profiler"),
        Registry::global().counter(
            names::kProfilerSamplesDropped,
            "Samples discarded (torn stack read or full trace lane)"),
        Registry::global().counter(
            names::kProfilerStacksTruncated,
            "Frame pushes beyond the profiler's max stack depth"),
        Registry::global().counter(
            names::kProfilerAllocs,
            "Heap allocations attributed to sampled stacks"),
        Registry::global().gauge(names::kProfilerThreads,
                                 "Threads with a registered profiler stack"),
    };
    return counters;
  }
};

/// Sampler wakeup: wait_for under a mutex so disable() can interrupt a
/// sleep immediately instead of waiting out the period.
std::mutex g_wake_mutex;
std::condition_variable g_wake_cv;

}  // namespace

bool profiler_push_frame(const char* name) noexcept {
  if (!g_profiler_enabled.load(std::memory_order_relaxed)) return false;
  ThreadStack* stack = t_stack;
  if (stack == nullptr) stack = register_this_thread();
  const std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
  if (depth >= kProfilerMaxDepth) {
    g_stacks_truncated.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stack->frames[depth].store(name, std::memory_order_relaxed);
  stack->depth.store(depth + 1, std::memory_order_release);
  return true;
}

void profiler_pop_frame() noexcept {
  ThreadStack* stack = t_stack;
  if (stack == nullptr) return;
  const std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
  if (depth > 0) {
    stack->depth.store(depth - 1, std::memory_order_release);
  }
}

void profiler_note_allocation() noexcept {
  if (!g_profiler_enabled.load(std::memory_order_relaxed)) return;
  // Charge only threads that already registered through a scope hook:
  // registering here would allocate inside operator new.
  ThreadStack* stack = t_stack;
  if (stack == nullptr) return;
  stack->pending_allocs.fetch_add(1, std::memory_order_relaxed);
}

Profiler& Profiler::global() {
  static auto* profiler = new Profiler();
  return *profiler;
}

void Profiler::enable(double hz) {
  hz = std::clamp(hz, 1.0, 10'000.0);
  period_ns_.store(1e9 / hz, std::memory_order_relaxed);
  if (g_profiler_enabled.load(std::memory_order_relaxed)) return;
  stop_.store(false, std::memory_order_relaxed);
  g_profiler_enabled.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Profiler::disable() {
  if (!g_profiler_enabled.load(std::memory_order_relaxed)) return;
  g_profiler_enabled.store(false, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(g_wake_mutex);
    stop_.store(true, std::memory_order_relaxed);
  }
  g_wake_cv.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

bool Profiler::enabled() const noexcept {
  return g_profiler_enabled.load(std::memory_order_relaxed);
}

double Profiler::hz() const noexcept {
  return 1e9 / period_ns_.load(std::memory_order_relaxed);
}

void Profiler::sampler_loop() {
  std::unique_lock lock(g_wake_mutex);
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto period = std::chrono::nanoseconds(
        static_cast<std::uint64_t>(period_ns_.load(std::memory_order_relaxed)));
    if (g_wake_cv.wait_for(lock, period, [this] {
          return stop_.load(std::memory_order_relaxed);
        })) {
      break;
    }
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void Profiler::sample_once() {
  // Copy the directory under its own lock, then walk stacks without it so a
  // registering thread is never blocked behind a sampling pass.
  std::vector<std::shared_ptr<ThreadStack>> stacks;
  {
    StackDirectory& dir = directory();
    const std::scoped_lock lock(dir.mutex);
    std::erase_if(dir.stacks, [](const std::shared_ptr<ThreadStack>& s) {
      return !s->alive.load(std::memory_order_relaxed);
    });
    stacks = dir.stacks;
  }

  const std::uint64_t now = SpanTracer::now_ns();
  const auto period =
      static_cast<std::uint64_t>(period_ns_.load(std::memory_order_relaxed));

  std::uint64_t sampled = 0;
  std::uint64_t idle = 0;
  std::uint64_t dropped = 0;
  std::uint64_t allocs = 0;
  const std::size_t live_threads = stacks.size();

  const std::scoped_lock samples_lock(samples_mutex_);
  for (const auto& stack : stacks) {
    const std::uint32_t depth = stack->depth.load(std::memory_order_acquire);
    const std::uint64_t pending =
        stack->pending_allocs.exchange(0, std::memory_order_relaxed);
    if (depth == 0) {
      ++idle;
      continue;
    }
    std::string key;
    std::vector<std::string> frames;
    frames.reserve(depth);
    bool torn = false;
    for (std::uint32_t i = 0; i < depth && i < kProfilerMaxDepth; ++i) {
      const char* frame = stack->frames[i].load(std::memory_order_relaxed);
      if (frame == nullptr) {
        torn = true;
        break;
      }
      if (i > 0) key += ';';
      key += frame;
      frames.emplace_back(frame);
    }
    if (torn) {
      ++dropped;
      continue;
    }
    StackAgg& agg = aggregates_[key];
    if (agg.frames.empty()) agg.frames = std::move(frames);
    ++agg.samples;
    agg.allocations += pending;
    allocs += pending;
    ++sampled;
    if (lane_.size() < kLaneCapacity) {
      FleetSpan sample;
      sample.name = agg.frames.back();
      sample.start_ns = now;
      sample.end_ns = now + period;
      sample.tid = stack->tid;
      lane_.push_back(std::move(sample));
    } else {
      ++lane_dropped_;
      ++dropped;
    }
  }
  samples_total_ += sampled;
  idle_total_ += idle;

  if (metrics_enabled()) {
    ProfilerCounters& counters = ProfilerCounters::get();
    if (sampled > 0) counters.samples.add(sampled);
    if (dropped > 0) counters.dropped.add(dropped);
    if (allocs > 0) counters.allocs.add(allocs);
    const std::uint64_t truncated =
        g_stacks_truncated.exchange(0, std::memory_order_relaxed);
    if (truncated > 0) counters.truncated.add(truncated);
    counters.threads.set(static_cast<std::int64_t>(live_threads));
  }
}

std::uint64_t Profiler::sample_count() const {
  const std::scoped_lock lock(samples_mutex_);
  return samples_total_;
}

std::uint64_t Profiler::idle_samples() const {
  const std::scoped_lock lock(samples_mutex_);
  return idle_total_;
}

std::vector<ProfileStack> Profiler::stacks() const {
  const std::scoped_lock lock(samples_mutex_);
  std::vector<ProfileStack> out;
  out.reserve(aggregates_.size());
  for (const auto& [key, agg] : aggregates_) {
    out.push_back({agg.frames, agg.samples, agg.allocations});
  }
  return out;
}

std::vector<ProfileSelfTime> Profiler::self_times() const {
  std::map<std::string, ProfileSelfTime> by_frame;
  {
    const std::scoped_lock lock(samples_mutex_);
    for (const auto& [key, agg] : aggregates_) {
      for (std::size_t i = 0; i < agg.frames.size(); ++i) {
        ProfileSelfTime& entry = by_frame[agg.frames[i]];
        entry.frame = agg.frames[i];
        entry.total += agg.samples;
        if (i + 1 == agg.frames.size()) entry.self += agg.samples;
      }
    }
  }
  std::vector<ProfileSelfTime> out;
  out.reserve(by_frame.size());
  for (auto& [frame, entry] : by_frame) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const ProfileSelfTime& a, const ProfileSelfTime& b) {
              if (a.self != b.self) return a.self > b.self;
              return a.frame < b.frame;
            });
  return out;
}

std::string Profiler::collapsed_text() const {
  const std::scoped_lock lock(samples_mutex_);
  std::string out;
  for (const auto& [key, agg] : aggregates_) {
    out += key;
    out += ' ';
    out += std::to_string(agg.samples);
    out += '\n';
  }
  return out;
}

util::Status Profiler::write_collapsed(const std::string& path) const {
  return util::write_file_atomic(path, collapsed_text());
}

std::vector<FleetSpan> Profiler::lane_spans() const {
  std::vector<FleetSpan> out;
  {
    const std::scoped_lock lock(samples_mutex_);
    out = lane_;
  }
  std::sort(out.begin(), out.end(), [](const FleetSpan& a, const FleetSpan& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.name < b.name;
  });
  return out;
}

json::Value Profiler::profile_json() const {
  json::Object out;
  out.set("enabled", enabled());
  out.set("hz", hz());
  {
    const std::scoped_lock lock(samples_mutex_);
    out.set("samples", samples_total_);
    out.set("idle_samples", idle_total_);
    out.set("lane_dropped", lane_dropped_);
  }
  json::Array stacks_json;
  for (const ProfileStack& stack : stacks()) {
    json::Object s;
    json::Array frames;
    frames.reserve(stack.frames.size());
    for (const std::string& frame : stack.frames) frames.push_back(frame);
    s.set("frames", std::move(frames));
    s.set("samples", stack.samples);
    s.set("allocations", stack.allocations);
    stacks_json.push_back(std::move(s));
  }
  out.set("stacks", std::move(stacks_json));
  json::Array self_json;
  for (const ProfileSelfTime& entry : self_times()) {
    json::Object s;
    s.set("frame", entry.frame);
    s.set("self", entry.self);
    s.set("total", entry.total);
    self_json.push_back(std::move(s));
  }
  out.set("self", std::move(self_json));
  return json::Value(std::move(out));
}

void Profiler::reset() {
  const std::scoped_lock lock(samples_mutex_);
  aggregates_.clear();
  lane_.clear();
  samples_total_ = 0;
  idle_total_ = 0;
  lane_dropped_ = 0;
}

std::string chrome_trace_with_profile_json() {
  std::vector<TraceLane> lanes;
  std::vector<FleetSpan> spans;
  for (const SpanEvent& span : SpanTracer::global().collect()) {
    spans.push_back({span.name, span.start_ns, span.end_ns, span.tid});
  }
  lanes.push_back({"mosaic", 0, std::move(spans)});
  std::vector<FleetSpan> profile = Profiler::global().lane_spans();
  if (!profile.empty()) {
    lanes.push_back({"profile", 0, std::move(profile)});
  }
  return chrome_trace_from_lanes(lanes);
}

util::Status write_chrome_trace_with_profile(const std::string& path) {
  return util::write_file_atomic(path, chrome_trace_with_profile_json());
}

}  // namespace mosaic::obs
