// Canonical names of every metric MOSAIC exports. One place to keep the
// instrumentation sites, the heartbeat reader, the tests and the README
// metric table in agreement.
//
// Conventions: `mosaic_` prefix; counters end in `_total`; histograms are
// named after their unit (`_ms`, bare counts otherwise); label sets are
// encoded in the series name via obs::labeled().
#pragma once

#include <string_view>

namespace mosaic::obs::names {

// Ingest front end (src/ingest).
inline constexpr std::string_view kIngestScanned =
    "mosaic_ingest_files_scanned_total";
inline constexpr std::string_view kIngestProcessed =
    "mosaic_ingest_files_processed_total";
inline constexpr std::string_view kIngestLoaded = "mosaic_ingest_loaded_total";
inline constexpr std::string_view kIngestFailed = "mosaic_ingest_failed_total";
inline constexpr std::string_view kIngestRetryAttempts =
    "mosaic_ingest_retry_attempts_total";
inline constexpr std::string_view kIngestRecovered =
    "mosaic_ingest_recovered_total";
inline constexpr std::string_view kIngestQuarantined =
    "mosaic_ingest_quarantined_total";
inline constexpr std::string_view kIngestJournalReplayed =
    "mosaic_ingest_journal_replayed_total";
inline constexpr std::string_view kIngestBackoffMs =
    "mosaic_ingest_retry_backoff_ms";
inline constexpr std::string_view kIngestRetriesPerFile =
    "mosaic_ingest_retries_per_file";
inline constexpr std::string_view kIngestParseMs = "mosaic_ingest_parse_ms";

// Sharded batch execution (src/ingest/shard.hpp). Set only when a run owns
// a slice of the corpus (--shard K/N or --shards N), so dashboards can tell
// shard partials from whole-corpus runs.
inline constexpr std::string_view kShardIndex = "mosaic_shard_index";
inline constexpr std::string_view kShardCount = "mosaic_shard_count";

// Pre-processing funnel (src/core/preprocess). Per-ErrorCode eviction
// series carry a {code="..."} label; validity evictions additionally feed
// the {kind="..."} corruption series. Both live and journal-replayed
// evictions increment the same series, which is what keeps a resumed run's
// funnel metrics byte-identical to the uninterrupted run's.
inline constexpr std::string_view kFunnelEvictions =
    "mosaic_funnel_evictions_total";
inline constexpr std::string_view kFunnelCorruption =
    "mosaic_funnel_corruption_total";
inline constexpr std::string_view kFunnelValid = "mosaic_funnel_valid_total";

// Thread pool (src/parallel).
inline constexpr std::string_view kPoolThreads = "mosaic_pool_threads";
inline constexpr std::string_view kPoolQueueDepth = "mosaic_pool_queue_depth";
inline constexpr std::string_view kPoolActiveWorkers =
    "mosaic_pool_active_workers";
inline constexpr std::string_view kPoolTasks = "mosaic_pool_tasks_total";
inline constexpr std::string_view kPoolTaskMs = "mosaic_pool_task_ms";
inline constexpr std::string_view kPoolSuppressedErrors =
    "mosaic_pool_suppressed_errors_total";

// Per-stage pipeline latency (src/core/pipeline).
inline constexpr std::string_view kStageMergeMs = "mosaic_stage_merge_ms";
inline constexpr std::string_view kStageSegmentMs = "mosaic_stage_segment_ms";
inline constexpr std::string_view kStagePeriodicityMs =
    "mosaic_stage_periodicity_ms";
inline constexpr std::string_view kStageTemporalityMs =
    "mosaic_stage_temporality_ms";
inline constexpr std::string_view kStageMetadataMs =
    "mosaic_stage_metadata_ms";
inline constexpr std::string_view kStageCategorizeMs =
    "mosaic_stage_categorize_ms";
inline constexpr std::string_view kStageAnalyzeMs = "mosaic_stage_analyze_ms";
inline constexpr std::string_view kTracesAnalyzed =
    "mosaic_traces_analyzed_total";

// Clustering kernels (src/cluster).
inline constexpr std::string_view kMeanShiftIterations =
    "mosaic_meanshift_iterations";
inline constexpr std::string_view kMeanShiftPoints =
    "mosaic_meanshift_points_total";
inline constexpr std::string_view kFftSize = "mosaic_fft_size";

// Report stages (src/report).
inline constexpr std::string_view kReportJaccardMs =
    "mosaic_report_jaccard_ms";
inline constexpr std::string_view kReportAccuracyMs =
    "mosaic_report_accuracy_ms";
inline constexpr std::string_view kReportAggregateMs =
    "mosaic_report_aggregate_ms";
inline constexpr std::string_view kReportConfusionMs =
    "mosaic_report_confusion_ms";

// Decision provenance journal (src/obs/provenance).
inline constexpr std::string_view kProvenanceRecords =
    "mosaic_provenance_records_total";

// Distributed dispatch manager (src/dist/dispatch). Task-lifecycle
// counters: every terminal state and every recovery action is a series, so
// a dashboard can tell a healthy fleet from one living off retries.
inline constexpr std::string_view kDispatchTasksDone =
    "mosaic_dispatch_tasks_done_total";
inline constexpr std::string_view kDispatchRetries =
    "mosaic_dispatch_retries_total";
inline constexpr std::string_view kDispatchReassigned =
    "mosaic_dispatch_reassigned_total";
inline constexpr std::string_view kDispatchQuarantined =
    "mosaic_dispatch_quarantined_total";
inline constexpr std::string_view kDispatchWorkersLost =
    "mosaic_dispatch_workers_lost_total";
inline constexpr std::string_view kDispatchDegradedTasks =
    "mosaic_dispatch_degraded_tasks_total";
inline constexpr std::string_view kDispatchResumedTasks =
    "mosaic_dispatch_resumed_tasks_total";
inline constexpr std::string_view kDispatchTaskMs = "mosaic_dispatch_task_ms";

// Worker pool side (src/dist/worker).
inline constexpr std::string_view kWorkerSessions =
    "mosaic_worker_sessions_total";
inline constexpr std::string_view kWorkerTasks = "mosaic_worker_tasks_total";
inline constexpr std::string_view kWorkerTaskErrors =
    "mosaic_worker_task_errors_total";
inline constexpr std::string_view kWorkerHeartbeats =
    "mosaic_worker_heartbeats_total";
inline constexpr std::string_view kWorkerTaskMs = "mosaic_worker_task_ms";

// Telemetry federation (src/obs/federation, src/dist/telemetry). Worker-side
// shipping counters travel *inside* the shipped snapshots, so the manager's
// fleet view shows how much telemetry each worker exported; the fleet-side
// series exist only on the manager. kFleetClockOffsetNs carries a
// {peer="host:port"} label per fleet member (peer, not worker: the fleet
// merge prepends worker="manager" to every manager series, and a duplicate
// label key would make the merged name invalid).
inline constexpr std::string_view kWorkerTelemetrySnapshots =
    "mosaic_worker_telemetry_snapshots_total";
inline constexpr std::string_view kWorkerSpansShipped =
    "mosaic_worker_spans_shipped_total";
inline constexpr std::string_view kDispatchHeartbeats =
    "mosaic_dispatch_heartbeats_total";
inline constexpr std::string_view kDispatchConnectMs =
    "mosaic_dispatch_connect_ms";
inline constexpr std::string_view kDispatchMergeMs =
    "mosaic_dispatch_merge_ms";
inline constexpr std::string_view kFleetWorkers = "mosaic_fleet_workers";
inline constexpr std::string_view kFleetSnapshots =
    "mosaic_fleet_snapshots_total";
inline constexpr std::string_view kFleetSpans = "mosaic_fleet_spans_total";
inline constexpr std::string_view kFleetTelemetryParseErrors =
    "mosaic_fleet_telemetry_parse_errors_total";
inline constexpr std::string_view kFleetClockOffsetNs =
    "mosaic_fleet_clock_offset_ns";

// Telemetry deltas (src/dist/telemetry). Workers ship counter/histogram
// deltas since the last acknowledged snapshot instead of whole registries;
// the byte counters exist on both ends so the saving is measurable.
inline constexpr std::string_view kWorkerTelemetryDeltas =
    "mosaic_worker_telemetry_deltas_total";
inline constexpr std::string_view kWorkerTelemetryBytes =
    "mosaic_worker_telemetry_bytes_total";
inline constexpr std::string_view kFleetDeltas =
    "mosaic_fleet_telemetry_deltas_total";

// Endpoint auth + staleness (src/dist/telemetry).
inline constexpr std::string_view kFleetEndpointUnauthorized =
    "mosaic_fleet_endpoint_unauthorized_total";
inline constexpr std::string_view kFleetWorkersStale =
    "mosaic_fleet_workers_stale";

// Sampling profiler (src/obs/profiler).
inline constexpr std::string_view kProfilerSamples =
    "mosaic_profiler_samples_total";
inline constexpr std::string_view kProfilerSamplesDropped =
    "mosaic_profiler_samples_dropped_total";
inline constexpr std::string_view kProfilerStacksTruncated =
    "mosaic_profiler_stacks_truncated_total";
inline constexpr std::string_view kProfilerAllocs =
    "mosaic_profiler_allocations_attributed_total";
inline constexpr std::string_view kProfilerThreads = "mosaic_profiler_threads";

// Health engine (src/obs/health). kHealthLevel encodes the overall verdict
// as 0 = ok, 1 = warn, 2 = fail.
inline constexpr std::string_view kHealthLevel = "mosaic_health_level";
inline constexpr std::string_view kHealthEvaluations =
    "mosaic_health_evaluations_total";

// Embedded HTTP endpoint (src/obs/http), shared by dispatch and the daemon.
inline constexpr std::string_view kHttpRequests = "mosaic_http_requests_total";
inline constexpr std::string_view kHttpUnauthorized =
    "mosaic_http_unauthorized_total";

// Analysis result cache (src/core/result_cache), keyed by the dedup digest.
inline constexpr std::string_view kCacheHits = "mosaic_cache_hits_total";
inline constexpr std::string_view kCacheMisses = "mosaic_cache_misses_total";
inline constexpr std::string_view kCacheEvictions =
    "mosaic_cache_evictions_total";
inline constexpr std::string_view kCacheBytes = "mosaic_cache_bytes";
inline constexpr std::string_view kCacheEntries = "mosaic_cache_entries";

// Always-on daemon (src/dist/daemon). Submissions split by outcome:
// analyzed (cache miss), cache hit, or rejected (per-ErrorCode {code=...}
// label on the rejected series).
inline constexpr std::string_view kDaemonSubmissions =
    "mosaic_daemon_submissions_total";
inline constexpr std::string_view kDaemonAnalyzed =
    "mosaic_daemon_analyzed_total";
inline constexpr std::string_view kDaemonRejected =
    "mosaic_daemon_rejected_total";
inline constexpr std::string_view kDaemonScans = "mosaic_daemon_scans_total";

}  // namespace mosaic::obs::names
