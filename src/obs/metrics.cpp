#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/error.hpp"

namespace mosaic::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Shortest %g rendering that still round-trips counters and bucket edges;
/// used for both exposition formats so they agree on formatting.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Prefer the shorter %g form when it round-trips exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof shorter, "%g", value);
  double parsed = 0.0;
  if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == value) {
    return shorter;
  }
  return buffer;
}

}  // namespace

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  MOSAIC_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double value) noexcept {
  if (!metrics_enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[shard_index()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS add: atomic<double>::fetch_add is C++20 but spotty across
  // standard libraries; the loop is contention-free on a thread-local shard.
  double current = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(current, current + value,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      total += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  // Leaked on purpose: pool workers may record during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second.instrument;
  auto& entry = counters_[std::string(name)];
  entry.help = std::string(help);
  entry.instrument = std::make_unique<Counter>();
  return *entry.instrument;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second.instrument;
  auto& entry = gauges_[std::string(name)];
  entry.help = std::string(help);
  entry.instrument = std::make_unique<Gauge>();
  return *entry.instrument;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds,
                               std::string_view help) {
  const std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    MOSAIC_ASSERT(std::equal(bounds.begin(), bounds.end(),
                             it->second.instrument->bounds().begin(),
                             it->second.instrument->bounds().end()));
    return *it->second.instrument;
  }
  auto& entry = histograms_[std::string(name)];
  entry.help = std::string(help);
  entry.instrument = std::make_unique<Histogram>(
      std::vector<double>(bounds.begin(), bounds.end()));
  return *entry.instrument;
}

Snapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    snap.counters.push_back({name, entry.help, entry.instrument->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    snap.gauges.push_back({name, entry.help, entry.instrument->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.help = entry.help;
    sample.bounds = entry.instrument->bounds();
    sample.buckets = entry.instrument->bucket_counts();
    sample.count = 0;
    for (const std::uint64_t c : sample.buckets) sample.count += c;
    sample.sum = entry.instrument->sum();
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

void Registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, entry] : counters_) entry.instrument->reset();
  for (auto& [name, entry] : gauges_) entry.instrument->reset();
  for (auto& [name, entry] : histograms_) entry.instrument->reset();
}

std::span<const double> latency_buckets_ms() noexcept {
  static const double edges[] = {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,
                                 2.5,  5.0,   10.0, 25.0, 50.0, 100.0, 250.0,
                                 500.0, 1000.0, 2500.0, 10000.0};
  return edges;
}

json::Value metrics_to_json(const Snapshot& snapshot) {
  json::Object out;
  json::Object counters;
  for (const CounterSample& sample : snapshot.counters) {
    counters.set(sample.name, sample.value);
  }
  out.set("counters", std::move(counters));
  json::Object gauges;
  for (const GaugeSample& sample : snapshot.gauges) {
    gauges.set(sample.name, static_cast<double>(sample.value));
  }
  out.set("gauges", std::move(gauges));
  json::Object histograms;
  for (const HistogramSample& sample : snapshot.histograms) {
    json::Object h;
    h.set("count", sample.count);
    h.set("sum", sample.sum);
    json::Array buckets;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      cumulative += sample.buckets[b];
      json::Object bucket;
      bucket.set("le", b < sample.bounds.size()
                           ? json::Value(sample.bounds[b])
                           : json::Value("+Inf"));
      bucket.set("count", cumulative);
      buckets.push_back(std::move(bucket));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(sample.name, std::move(h));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

namespace {

/// Series names carry labels ("m_total{code=\"x\"}"); TYPE lines use the
/// bare metric name.
std::string_view base_name(std::string_view series) {
  const std::size_t brace = series.find('{');
  return brace == std::string_view::npos ? series : series.substr(0, brace);
}

void append_type_line(std::string& out, std::string_view series,
                      std::string_view type, std::string& last_base) {
  const std::string_view base = base_name(series);
  if (base == last_base) return;  // one TYPE line per metric family
  last_base = std::string(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string metrics_to_prometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_base;
  for (const CounterSample& sample : snapshot.counters) {
    append_type_line(out, sample.name, "counter", last_base);
    out += sample.name;
    out += ' ';
    out += std::to_string(sample.value);
    out += '\n';
  }
  last_base.clear();
  for (const GaugeSample& sample : snapshot.gauges) {
    append_type_line(out, sample.name, "gauge", last_base);
    out += sample.name;
    out += ' ';
    out += std::to_string(sample.value);
    out += '\n';
  }
  last_base.clear();
  for (const HistogramSample& sample : snapshot.histograms) {
    append_type_line(out, sample.name, "histogram", last_base);
    // Labels encoded in the series name must wrap the per-series suffixes:
    // h{worker="w"} renders as h_bucket{worker="w",le="..."} and
    // h_sum{worker="w"} — never as h{worker="w"}_bucket{...}. Unlabeled
    // names keep the plain h_bucket{le="..."} / h_sum / h_count forms.
    const std::string_view name = sample.name;
    const std::size_t brace = name.find('{');
    const std::string_view base =
        brace == std::string_view::npos ? name : name.substr(0, brace);
    const std::string_view labels =
        brace == std::string_view::npos
            ? std::string_view()
            : name.substr(brace + 1, name.size() - brace - 2);
    const auto append_series = [&](std::string_view suffix,
                                   const std::string& extra_label) {
      out += base;
      out += suffix;
      if (labels.empty() && extra_label.empty()) return;
      out += '{';
      out += labels;
      if (!labels.empty() && !extra_label.empty()) out += ',';
      out += extra_label;
      out += '}';
    };
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      cumulative += sample.buckets[b];
      const std::string le = b < sample.bounds.size()
                                 ? format_double(sample.bounds[b])
                                 : std::string("+Inf");
      append_series("_bucket", "le=\"" + le + "\"");
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    append_series("_sum", "");
    out += ' ';
    out += format_double(sample.sum);
    out += '\n';
    append_series("_count", "");
    out += ' ';
    out += std::to_string(sample.count);
    out += '\n';
  }
  return out;
}

std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value) {
  std::string out(name);
  out += '{';
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedTimerMs::ScopedTimerMs(Histogram& hist) noexcept
    : hist_(metrics_enabled() ? &hist : nullptr) {
  if (hist_ != nullptr) start_ns_ = steady_now_ns();
}

ScopedTimerMs::~ScopedTimerMs() {
  if (hist_ == nullptr) return;
  hist_->observe(static_cast<double>(steady_now_ns() - start_ns_) / 1e6);
}

}  // namespace mosaic::obs
