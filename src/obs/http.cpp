#include "obs/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/error.hpp"

namespace mosaic::obs {

using util::ErrorCode;
using util::Status;

namespace {

struct HttpMetrics {
  Counter& requests;
  Counter& unauthorized;

  static HttpMetrics& get() {
    static auto& registry = Registry::global();
    static HttpMetrics metrics{
        registry.counter(names::kHttpRequests,
                         "requests served by the embedded HTTP endpoint"),
        registry.counter(names::kHttpUnauthorized,
                         "HTTP requests rejected for a missing or wrong "
                         "bearer token"),
    };
    return metrics;
  }
};

}  // namespace

std::string_view http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

bool parse_request_line(std::string_view head, HttpRequest& request) {
  // Only the first line may hold the request line; `substr(0, npos)` is the
  // whole head when no CRLF arrived (truncated reads still parse strictly).
  const std::string_view line = head.substr(0, head.find("\r\n"));
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) return false;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos ||
      target_end == method_end + 1) {
    return false;
  }
  request.method = std::string(line.substr(0, method_end));
  request.target =
      std::string(line.substr(method_end + 1, target_end - method_end - 1));
  const std::size_t query = request.target.find('?');
  if (query != std::string::npos) request.target.resize(query);
  return true;
}

void announce_http_endpoint(std::string_view component,
                            std::string_view host, std::uint16_t port) {
  std::printf("%.*s metrics endpoint listening on %.*s:%u\n",
              static_cast<int>(component.size()), component.data(),
              static_cast<int>(host.size()), host.data(),
              static_cast<unsigned>(port));
  std::fflush(stdout);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string target, Handler handler) {
  routes_.emplace_back(std::move(target), std::move(handler));
}

void HttpServer::handle_prefix(std::string prefix, Handler handler) {
  prefix_routes_.emplace_back(std::move(prefix), std::move(handler));
  // Longest prefix first, so "/a/b/" shadows "/a/" for its subtree.
  std::stable_sort(prefix_routes_.begin(), prefix_routes_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.size() > b.first.size();
                   });
}

void HttpServer::set_auth_token(std::string token) {
  const std::scoped_lock lock(token_mutex_);
  auth_token_ = std::move(token);
}

void HttpServer::set_unauthorized_hook(std::function<void()> hook) {
  unauthorized_hook_ = std::move(hook);
}

Status HttpServer::start(const util::Address& address) {
  if (const auto status = listener_.listen_on(address); !status.ok()) {
    return status;
  }
  thread_ = std::thread([this] { serve(); });
  return Status::success();
}

void HttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void HttpServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Short accept timeout keeps stop() responsive, mirroring the worker's
    // protocol serve loop.
    auto conn = listener_.accept_connection(0.25);
    if (!conn.has_value()) {
      if (conn.error().code == ErrorCode::kTimeout) continue;
      return;  // listener closed / broken
    }
    handle_connection(std::move(*conn));
  }
}

std::string HttpServer::route_list() const {
  std::vector<std::string> names;
  names.reserve(routes_.size() + prefix_routes_.size());
  for (const auto& [target, handler] : routes_) names.push_back(target);
  for (const auto& [prefix, handler] : prefix_routes_) {
    names.push_back(prefix + "<id>");
  }
  std::sort(names.begin(), names.end());
  std::string out = "routes:";
  for (const std::string& name : names) {
    out += ' ';
    out += name;
  }
  out += '\n';
  return out;
}

bool HttpServer::authorized(const std::string& head) const {
  std::string token;
  {
    const std::scoped_lock lock(token_mutex_);
    token = auth_token_;
  }
  if (token.empty()) return true;  // open endpoint
  // Find the Authorization header (case-insensitive name, line-anchored).
  std::string provided;
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string_view line =
        std::string_view(head).substr(pos, eol - pos);
    constexpr std::string_view kName = "authorization:";
    if (line.size() > kName.size()) {
      bool name_matches = true;
      for (std::size_t i = 0; i < kName.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) != kName[i]) {
          name_matches = false;
          break;
        }
      }
      if (name_matches) {
        std::string_view value = line.substr(kName.size());
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        constexpr std::string_view kScheme = "Bearer ";
        if (value.size() > kScheme.size() &&
            value.compare(0, kScheme.size(), kScheme) == 0) {
          provided = std::string(value.substr(kScheme.size()));
          while (!provided.empty() &&
                 (provided.back() == ' ' || provided.back() == '\r')) {
            provided.pop_back();
          }
        }
        break;
      }
    }
    pos = eol + 2;
  }
  if (provided.empty()) return false;
  // Constant-time compare: no early exit on first mismatch, and the probe's
  // length never changes how many expected bytes we touch.
  std::size_t acc = token.size() ^ provided.size();
  for (std::size_t i = 0; i < token.size(); ++i) {
    acc |= static_cast<std::size_t>(
        static_cast<unsigned char>(token[i]) ^
        static_cast<unsigned char>(provided[i % provided.size()]));
  }
  return acc == 0;
}

void HttpServer::handle_connection(util::Connection conn) {
  // Minimal HTTP/1.x: read the request head (bounded, poll-timed), answer
  // one GET, close.
  std::string head;
  constexpr std::size_t kMaxHead = 8192;
  char buffer[512];
  while (head.size() < kMaxHead &&
         head.find("\r\n\r\n") == std::string::npos) {
    const std::size_t want =
        std::min(sizeof buffer, kMaxHead - head.size());
    auto got = conn.recv_some(buffer, want, 2.0);
    if (!got.has_value() || *got == 0) return;
    head.append(buffer, *got);
  }
  HttpRequest request;
  const bool parsed = parse_request_line(head, request);
  request.head = std::move(head);

  HttpMetrics::get().requests.add();

  const auto respond = [&conn](const HttpResponse& reply) {
    std::string response = "HTTP/1.1 ";
    response += std::to_string(reply.status);
    response += ' ';
    response += http_status_text(reply.status);
    response += "\r\nContent-Type: ";
    response += reply.content_type;
    response += "\r\nContent-Length: ";
    response += std::to_string(reply.body.size());
    if (!reply.extra_header.empty()) {
      response += "\r\n";
      response += reply.extra_header;
    }
    response += "\r\nConnection: close\r\n\r\n";
    response += reply.body;
    (void)conn.send_all(response.data(), response.size());
  };

  if (!parsed) {
    // A truncated or garbage request line used to close the socket without
    // a byte of response; answer 400 so the client learns why.
    respond({400, "text/plain", "malformed request line\n", {}});
    return;
  }
  if (request.method != "GET") {
    respond({405, "text/plain", "only GET is supported\n", {}});
    return;
  }
  if (!authorized(request.head)) {
    HttpMetrics::get().unauthorized.add();
    if (unauthorized_hook_) unauthorized_hook_();
    respond({401, "text/plain", "missing or bad bearer token\n",
             "WWW-Authenticate: Bearer"});
    return;
  }
  for (const auto& [target, handler] : routes_) {
    if (request.target == target) {
      respond(handler(request));
      return;
    }
  }
  for (const auto& [prefix, handler] : prefix_routes_) {
    if (request.target.compare(0, prefix.size(), prefix) == 0) {
      respond(handler(request));
      return;
    }
  }
  respond({404, "text/plain", route_list(), {}});
}

}  // namespace mosaic::obs
