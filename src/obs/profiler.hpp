// Sampling wall-clock profiler over the active span/stage stack.
//
// MOSAIC_SPAN / MOSAIC_STAGE scopes already bracket every interesting unit
// of work; when the profiler is enabled each scope additionally pushes its
// name onto a per-thread frame stack (two relaxed/release stores) and a
// background sampler thread walks every registered stack at a fixed rate.
// That turns the existing instrumentation into a statistical profiler with
// no libunwind, no signals and no symbolization: a stage that consumes p%
// of wall time collects p% of samples, with standard-error sqrt(n)/n on n
// samples (DESIGN.md §16 works the math).
//
// Exports:
//   - collapsed-stack text ("frame;frame count\n"), loadable by speedscope
//     and flamegraph.pl,
//   - per-frame self/total sample attribution (self = frame was the leaf),
//   - a Chrome-trace lane of sampled leaf frames (one "X" event per sample,
//     duration = sampling period) that renders beside the span lanes,
//   - allocation attribution: an allocation hook (the PR 4 bench counters
//     call it) charges heap allocations to the sampled stack.
//
// Disabled cost is one relaxed load + branch per scope — the same
// discipline as MOSAIC_SPAN — so the profiler can never tax a run that did
// not ask for it.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "obs/federation.hpp"
#include "util/error.hpp"

namespace mosaic::obs {

/// Deepest stack the profiler records; pushes beyond it are counted as
/// truncated but stay balanced (pop still matches push).
inline constexpr std::size_t kProfilerMaxDepth = 24;

/// One aggregated stack: outermost frame first.
struct ProfileStack {
  std::vector<std::string> frames;
  std::uint64_t samples = 0;
  std::uint64_t allocations = 0;  ///< heap allocations charged to this stack
};

/// Per-frame attribution: `self` counts samples where the frame was the
/// leaf, `total` counts samples where it appeared anywhere on the stack.
struct ProfileSelfTime {
  std::string frame;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

class Profiler {
 public:
  /// Default sampling rate: a prime close to 100 Hz so the sampler cannot
  /// phase-lock with millisecond-periodic work.
  static constexpr double kDefaultHz = 97.0;

  [[nodiscard]] static Profiler& global();

  /// Starts the sampler thread at `hz` (clamped to [1, 10'000]). Idempotent
  /// while enabled; frames push from this point on.
  void enable(double hz = kDefaultHz);

  /// Stops the sampler thread and stops frame pushes. Aggregated samples
  /// are kept for export until reset().
  void disable();

  [[nodiscard]] bool enabled() const noexcept;
  [[nodiscard]] double hz() const noexcept;

  /// Total stack samples aggregated so far (idle threads excluded).
  [[nodiscard]] std::uint64_t sample_count() const;
  /// Sampler ticks where a registered thread had an empty stack.
  [[nodiscard]] std::uint64_t idle_samples() const;

  /// Aggregated stacks sorted by collapsed key (deterministic export).
  [[nodiscard]] std::vector<ProfileStack> stacks() const;

  /// Per-frame self/total attribution sorted by descending self samples
  /// (ties by name).
  [[nodiscard]] std::vector<ProfileSelfTime> self_times() const;

  /// Collapsed-stack text: "frame;frame count\n" per aggregated stack,
  /// sorted — flamegraph.pl / speedscope both load this directly.
  [[nodiscard]] std::string collapsed_text() const;

  /// Atomically (temp + rename) writes collapsed_text() to `path`.
  [[nodiscard]] util::Status write_collapsed(const std::string& path) const;

  /// Sampled leaf frames as spans (duration = sampling period) for a
  /// "profile" Chrome-trace lane, sorted by (tid, start).
  [[nodiscard]] std::vector<FleetSpan> lane_spans() const;

  /// Machine-readable summary for the /profile endpoint and tests:
  /// {"enabled", "hz", "samples", "idle_samples", "stacks": [...],
  ///  "self": [...]}.
  [[nodiscard]] json::Value profile_json() const;

  /// Drops every aggregated sample and raw lane event (enabled state and
  /// rate are kept). Safe only while no scopes are being sampled.
  void reset();

 private:
  Profiler() = default;
  void sampler_loop();
  void sample_once();

  mutable std::mutex samples_mutex_;
  // Collapsed key ("a;b;c") -> aggregate. A map keyed by the joined string
  // keeps export deterministic and lookup cheap (one string build per
  // sampled stack).
  struct StackAgg {
    std::vector<std::string> frames;
    std::uint64_t samples = 0;
    std::uint64_t allocations = 0;
  };
  std::map<std::string, StackAgg> aggregates_;
  std::vector<FleetSpan> lane_;  ///< bounded raw leaf samples for the trace
  std::uint64_t samples_total_ = 0;
  std::uint64_t idle_total_ = 0;
  std::uint64_t lane_dropped_ = 0;

  std::atomic<double> period_ns_{1e9 / kDefaultHz};
  std::thread sampler_;
  std::atomic<bool> stop_{false};
};

/// Scope hooks (free functions so span.hpp/stage.hpp need not include this
/// header's dependencies). push returns true when a frame was pushed — the
/// scope must pop exactly then.
[[nodiscard]] bool profiler_push_frame(const char* name) noexcept;
void profiler_pop_frame() noexcept;

/// Allocation hook: charges one heap allocation to the calling thread's
/// current stack (attributed at the next sampler tick). Safe to call from
/// operator new at any point in the process lifetime; disabled cost is one
/// relaxed load. The bench-only PR 4 allocation counters call this, so
/// `--profile` runs of bench binaries see allocation sites.
void profiler_note_allocation() noexcept;

/// RAII profiler frame for code that has no span/stage scope of its own
/// (e.g. the thread-pool worker loop's root frame).
class ProfilerFrame {
 public:
  explicit ProfilerFrame(const char* name) noexcept
      : pushed_(profiler_push_frame(name)) {}
  ~ProfilerFrame() {
    if (pushed_) profiler_pop_frame();
  }
  ProfilerFrame(const ProfilerFrame&) = delete;
  ProfilerFrame& operator=(const ProfilerFrame&) = delete;

 private:
  bool pushed_;
};

/// Chrome trace combining the span tracer's lane ("mosaic") with the
/// profiler's sampled lane ("profile"); falls back to spans-only when the
/// profiler never ran. Used by the CLI when --trace-events and --profile
/// are both set.
[[nodiscard]] std::string chrome_trace_with_profile_json();
[[nodiscard]] util::Status write_chrome_trace_with_profile(
    const std::string& path);

}  // namespace mosaic::obs
