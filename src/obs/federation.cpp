#include "obs/federation.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "util/fs.hpp"

namespace mosaic::obs {

using json::Array;
using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;

namespace {

Error wire_error(std::string what) {
  return Error{ErrorCode::kParseError, "telemetry wire: " + std::move(what)};
}

/// Member lookup that distinguishes "absent" from "wrong type" in the error.
Expected<const Value*> require(const Object& obj, const char* key,
                               bool (Value::*is_type)() const,
                               const char* type_name) {
  const Value* member = obj.find(key);
  if (member == nullptr) {
    return wire_error(std::string("missing '") + key + "'");
  }
  if (!(member->*is_type)()) {
    return wire_error(std::string("'") + key + "' is not " + type_name);
  }
  return member;
}

}  // namespace

json::Value snapshot_to_wire_json(const Snapshot& snapshot) {
  Object out;
  Array counters;
  counters.reserve(snapshot.counters.size());
  for (const CounterSample& sample : snapshot.counters) {
    Object c;
    c.set("name", sample.name);
    c.set("help", sample.help);
    c.set("value", sample.value);
    counters.push_back(std::move(c));
  }
  out.set("counters", std::move(counters));
  Array gauges;
  gauges.reserve(snapshot.gauges.size());
  for (const GaugeSample& sample : snapshot.gauges) {
    Object g;
    g.set("name", sample.name);
    g.set("help", sample.help);
    g.set("value", sample.value);
    gauges.push_back(std::move(g));
  }
  out.set("gauges", std::move(gauges));
  Array histograms;
  histograms.reserve(snapshot.histograms.size());
  for (const HistogramSample& sample : snapshot.histograms) {
    Object h;
    h.set("name", sample.name);
    h.set("help", sample.help);
    Array bounds;
    bounds.reserve(sample.bounds.size());
    for (const double bound : sample.bounds) bounds.push_back(bound);
    h.set("bounds", std::move(bounds));
    Array buckets;
    buckets.reserve(sample.buckets.size());
    for (const std::uint64_t bucket : sample.buckets) {
      buckets.push_back(bucket);
    }
    h.set("buckets", std::move(buckets));
    h.set("sum", sample.sum);
    histograms.push_back(std::move(h));
  }
  out.set("histograms", std::move(histograms));
  return Value(std::move(out));
}

Expected<Snapshot> snapshot_from_wire_json(const json::Value& value) {
  if (!value.is_object()) return wire_error("snapshot is not an object");
  const Object& obj = value.as_object();
  Snapshot snapshot;

  auto counters = require(obj, "counters", &Value::is_array, "an array");
  if (!counters.has_value()) return counters.error();
  for (const Value& member : (*counters)->as_array()) {
    if (!member.is_object()) return wire_error("counter is not an object");
    const Object& c = member.as_object();
    auto name = require(c, "name", &Value::is_string, "a string");
    if (!name.has_value()) return name.error();
    auto help = require(c, "help", &Value::is_string, "a string");
    if (!help.has_value()) return help.error();
    auto v = require(c, "value", &Value::is_number, "a number");
    if (!v.has_value()) return v.error();
    snapshot.counters.push_back(
        {(*name)->as_string(), (*help)->as_string(),
         static_cast<std::uint64_t>((*v)->as_number())});
  }

  auto gauges = require(obj, "gauges", &Value::is_array, "an array");
  if (!gauges.has_value()) return gauges.error();
  for (const Value& member : (*gauges)->as_array()) {
    if (!member.is_object()) return wire_error("gauge is not an object");
    const Object& g = member.as_object();
    auto name = require(g, "name", &Value::is_string, "a string");
    if (!name.has_value()) return name.error();
    auto help = require(g, "help", &Value::is_string, "a string");
    if (!help.has_value()) return help.error();
    auto v = require(g, "value", &Value::is_number, "a number");
    if (!v.has_value()) return v.error();
    snapshot.gauges.push_back({(*name)->as_string(), (*help)->as_string(),
                               static_cast<std::int64_t>((*v)->as_number())});
  }

  auto histograms = require(obj, "histograms", &Value::is_array, "an array");
  if (!histograms.has_value()) return histograms.error();
  for (const Value& member : (*histograms)->as_array()) {
    if (!member.is_object()) return wire_error("histogram is not an object");
    const Object& h = member.as_object();
    auto name = require(h, "name", &Value::is_string, "a string");
    if (!name.has_value()) return name.error();
    auto help = require(h, "help", &Value::is_string, "a string");
    if (!help.has_value()) return help.error();
    auto bounds = require(h, "bounds", &Value::is_array, "an array");
    if (!bounds.has_value()) return bounds.error();
    auto buckets = require(h, "buckets", &Value::is_array, "an array");
    if (!buckets.has_value()) return buckets.error();
    auto sum = require(h, "sum", &Value::is_number, "a number");
    if (!sum.has_value()) return sum.error();
    HistogramSample sample;
    sample.name = (*name)->as_string();
    sample.help = (*help)->as_string();
    for (const Value& bound : (*bounds)->as_array()) {
      if (!bound.is_number()) return wire_error("histogram bound not numeric");
      sample.bounds.push_back(bound.as_number());
    }
    for (const Value& bucket : (*buckets)->as_array()) {
      if (!bucket.is_number()) {
        return wire_error("histogram bucket not numeric");
      }
      const auto count = static_cast<std::uint64_t>(bucket.as_number());
      sample.buckets.push_back(count);
      sample.count += count;
    }
    if (sample.buckets.size() != sample.bounds.size() + 1) {
      return wire_error("histogram '" + sample.name + "' has " +
                        std::to_string(sample.buckets.size()) +
                        " buckets for " + std::to_string(sample.bounds.size()) +
                        " bounds (want bounds + 1)");
    }
    sample.sum = (*sum)->as_number();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

json::Value spans_to_wire_json(const std::vector<SpanEvent>& spans) {
  Array out;
  out.reserve(spans.size());
  for (const SpanEvent& span : spans) {
    Object s;
    s.set("n", std::string(span.name));
    s.set("s", span.start_ns);
    s.set("e", span.end_ns);
    s.set("t", static_cast<std::uint64_t>(span.tid));
    out.push_back(std::move(s));
  }
  return Value(std::move(out));
}

Expected<std::vector<FleetSpan>> spans_from_wire_json(
    const json::Value& value) {
  if (!value.is_array()) return wire_error("spans are not an array");
  std::vector<FleetSpan> spans;
  spans.reserve(value.as_array().size());
  for (const Value& member : value.as_array()) {
    if (!member.is_object()) return wire_error("span is not an object");
    const Object& s = member.as_object();
    auto name = require(s, "n", &Value::is_string, "a string");
    if (!name.has_value()) return name.error();
    auto start = require(s, "s", &Value::is_number, "a number");
    if (!start.has_value()) return start.error();
    auto end = require(s, "e", &Value::is_number, "a number");
    if (!end.has_value()) return end.error();
    auto tid = require(s, "t", &Value::is_number, "a number");
    if (!tid.has_value()) return tid.error();
    FleetSpan span;
    span.name = (*name)->as_string();
    span.start_ns = static_cast<std::uint64_t>((*start)->as_number());
    span.end_ns = static_cast<std::uint64_t>((*end)->as_number());
    span.tid = static_cast<std::uint32_t>((*tid)->as_number());
    spans.push_back(std::move(span));
  }
  return spans;
}

std::string with_worker_label(std::string_view series,
                              std::string_view worker) {
  std::string label = "worker=\"";
  for (const char c : worker) {
    if (c == '"' || c == '\\') label += '\\';
    label += c;
  }
  label += '"';
  const std::size_t brace = series.find('{');
  std::string out;
  out.reserve(series.size() + label.size() + 3);
  if (brace == std::string_view::npos) {
    out += series;
    out += '{';
    out += label;
    out += '}';
    return out;
  }
  out += series.substr(0, brace + 1);
  out += label;
  out += ',';
  out += series.substr(brace + 1);
  return out;
}

Snapshot merge_snapshots(
    std::vector<std::pair<std::string, Snapshot>> sources,
    MergeStats* stats) {
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Snapshot out;
  std::map<std::string, CounterSample> counter_totals;
  std::map<std::string, HistogramSample> histogram_totals;
  for (const auto& [worker, snapshot] : sources) {
    for (const CounterSample& sample : snapshot.counters) {
      out.counters.push_back(
          {with_worker_label(sample.name, worker), sample.help, sample.value});
      CounterSample& total = counter_totals[sample.name];
      total.name = sample.name;
      if (total.help.empty()) total.help = sample.help;
      total.value += sample.value;
    }
    for (const GaugeSample& sample : snapshot.gauges) {
      // Per-source only: instantaneous values do not sum across processes.
      out.gauges.push_back(
          {with_worker_label(sample.name, worker), sample.help, sample.value});
    }
    for (const HistogramSample& sample : snapshot.histograms) {
      HistogramSample labeled_sample = sample;
      labeled_sample.name = with_worker_label(sample.name, worker);
      out.histograms.push_back(std::move(labeled_sample));
      const auto it = histogram_totals.find(sample.name);
      if (it == histogram_totals.end()) {
        histogram_totals.emplace(sample.name, sample);
        continue;
      }
      HistogramSample& total = it->second;
      if (total.bounds != sample.bounds ||
          total.buckets.size() != sample.buckets.size()) {
        // Bound disagreement makes bucket-wise addition meaningless; keep
        // the labeled series, reject the contribution to the fleet total.
        if (stats != nullptr) ++stats->histogram_bound_mismatches;
        continue;
      }
      for (std::size_t b = 0; b < total.buckets.size(); ++b) {
        total.buckets[b] += sample.buckets[b];
      }
      total.count += sample.count;
      total.sum += sample.sum;
    }
  }
  for (auto& [name, total] : counter_totals) {
    out.counters.push_back(std::move(total));
  }
  for (auto& [name, total] : histogram_totals) {
    out.histograms.push_back(std::move(total));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

Snapshot snapshot_delta(const Snapshot& baseline, const Snapshot& current) {
  // Snapshots are name-sorted, so plain map lookups over the baseline keep
  // this O(n log n) on registries of a few hundred series.
  std::map<std::string_view, const CounterSample*> base_counters;
  for (const CounterSample& sample : baseline.counters) {
    base_counters[sample.name] = &sample;
  }
  std::map<std::string_view, const GaugeSample*> base_gauges;
  for (const GaugeSample& sample : baseline.gauges) {
    base_gauges[sample.name] = &sample;
  }
  std::map<std::string_view, const HistogramSample*> base_histograms;
  for (const HistogramSample& sample : baseline.histograms) {
    base_histograms[sample.name] = &sample;
  }

  Snapshot delta;
  for (const CounterSample& sample : current.counters) {
    const auto it = base_counters.find(sample.name);
    // A counter that went backwards means the registry was reset between
    // snapshots; ship the absolute value like a new series.
    if (it == base_counters.end() || it->second->value > sample.value) {
      delta.counters.push_back(sample);
      continue;
    }
    const std::uint64_t moved = sample.value - it->second->value;
    if (moved == 0) continue;
    delta.counters.push_back({sample.name, sample.help, moved});
  }
  for (const GaugeSample& sample : current.gauges) {
    const auto it = base_gauges.find(sample.name);
    if (it != base_gauges.end() && it->second->value == sample.value) continue;
    delta.gauges.push_back(sample);
  }
  for (const HistogramSample& sample : current.histograms) {
    const auto it = base_histograms.find(sample.name);
    if (it == base_histograms.end() || it->second->bounds != sample.bounds ||
        it->second->count > sample.count) {
      delta.histograms.push_back(sample);
      continue;
    }
    const HistogramSample& base = *it->second;
    if (base.count == sample.count && base.sum == sample.sum) continue;
    HistogramSample moved;
    moved.name = sample.name;
    moved.help = sample.help;
    moved.bounds = sample.bounds;
    moved.buckets.resize(sample.buckets.size());
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      moved.buckets[b] = sample.buckets[b] >= base.buckets[b]
                             ? sample.buckets[b] - base.buckets[b]
                             : sample.buckets[b];
    }
    moved.count = sample.count - base.count;
    moved.sum = sample.sum - base.sum;
    delta.histograms.push_back(std::move(moved));
  }
  return delta;
}

void apply_snapshot_delta(Snapshot& base, const Snapshot& delta) {
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  for (const CounterSample& sample : delta.counters) {
    bool found = false;
    for (CounterSample& existing : base.counters) {
      if (existing.name != sample.name) continue;
      existing.value += sample.value;
      found = true;
      break;
    }
    if (!found) base.counters.push_back(sample);
  }
  for (const GaugeSample& sample : delta.gauges) {
    bool found = false;
    for (GaugeSample& existing : base.gauges) {
      if (existing.name != sample.name) continue;
      existing.value = sample.value;
      found = true;
      break;
    }
    if (!found) base.gauges.push_back(sample);
  }
  for (const HistogramSample& sample : delta.histograms) {
    bool found = false;
    for (HistogramSample& existing : base.histograms) {
      if (existing.name != sample.name) continue;
      if (existing.bounds != sample.bounds ||
          existing.buckets.size() != sample.buckets.size()) {
        // Bounds changed under us (sender restarted with a different
        // config): the absolute sample wins.
        existing = sample;
      } else {
        for (std::size_t b = 0; b < existing.buckets.size(); ++b) {
          existing.buckets[b] += sample.buckets[b];
        }
        existing.count += sample.count;
        existing.sum += sample.sum;
      }
      found = true;
      break;
    }
    if (!found) base.histograms.push_back(sample);
  }
  std::sort(base.counters.begin(), base.counters.end(), by_name);
  std::sort(base.gauges.begin(), base.gauges.end(), by_name);
  std::sort(base.histograms.begin(), base.histograms.end(), by_name);
}

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// Microseconds with fixed 3-decimal precision: deterministic text for
/// identical inputs, sub-ns resolution is noise anyway.
void append_us(std::string& out, std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buffer;
}

}  // namespace

std::string chrome_trace_from_lanes(const std::vector<TraceLane>& lanes) {
  // Re-base so the earliest shifted event lands at t=0.
  std::int64_t min_start = std::numeric_limits<std::int64_t>::max();
  std::size_t span_count = 0;
  for (const TraceLane& lane : lanes) {
    span_count += lane.spans.size();
    for (const FleetSpan& span : lane.spans) {
      min_start = std::min(min_start,
                           static_cast<std::int64_t>(span.start_ns) +
                               lane.clock_shift_ns);
    }
  }
  if (span_count == 0) min_start = 0;

  // Serialized by hand (not via json::Value): a long batch run holds
  // hundreds of thousands of events and the DOM representation would double
  // peak memory for no benefit.
  std::string out;
  out.reserve(span_count * 96 + lanes.size() * 96 + 256);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (std::size_t lane_index = 0; lane_index < lanes.size(); ++lane_index) {
    const TraceLane& lane = lanes[lane_index];
    const std::string pid = std::to_string(lane_index + 1);
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    out += pid;
    out += ", \"args\": {\"name\": \"";
    append_json_escaped(out, lane.process_name);
    out += "\"}}";
    std::uint32_t last_tid = ~std::uint32_t{0};
    for (const FleetSpan& span : lane.spans) {
      if (span.tid != last_tid) {
        last_tid = span.tid;
        out += ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
        out += pid;
        out += ", \"tid\": ";
        out += std::to_string(span.tid);
        out += ", \"args\": {\"name\": \"worker-";
        out += std::to_string(span.tid);
        out += "\"}}";
      }
      const std::int64_t shifted = static_cast<std::int64_t>(span.start_ns) +
                                   lane.clock_shift_ns - min_start;
      out += ",\n{\"name\": \"";
      append_json_escaped(out, span.name);
      out += "\", \"cat\": \"mosaic\", \"ph\": \"X\", \"pid\": ";
      out += pid;
      out += ", \"tid\": ";
      out += std::to_string(span.tid);
      out += ", \"ts\": ";
      append_us(out, shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0);
      out += ", \"dur\": ";
      append_us(out, span.end_ns > span.start_ns
                         ? span.end_ns - span.start_ns
                         : 0);
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

void FleetRegistry::update_snapshot(const std::string& source,
                                    Snapshot snapshot) {
  const std::scoped_lock lock(mutex_);
  sources_[source].snapshot = std::move(snapshot);
}

void FleetRegistry::apply_snapshot_delta(const std::string& source,
                                         const Snapshot& delta) {
  const std::scoped_lock lock(mutex_);
  // Qualified: the unqualified name would find this member, not the free
  // combiner.
  obs::apply_snapshot_delta(sources_[source].snapshot, delta);
}

void FleetRegistry::update_spans(const std::string& source,
                                 std::vector<FleetSpan> spans) {
  const std::scoped_lock lock(mutex_);
  sources_[source].spans = std::move(spans);
}

void FleetRegistry::set_clock_offset_ns(const std::string& source,
                                        std::int64_t offset_ns) {
  const std::scoped_lock lock(mutex_);
  sources_[source].offset_ns = offset_ns;
}

std::vector<std::string> FleetRegistry::sources() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, source] : sources_) names.push_back(name);
  return names;
}

std::size_t FleetRegistry::source_count() const {
  const std::scoped_lock lock(mutex_);
  return sources_.size();
}

Snapshot FleetRegistry::merged(MergeStats* stats) const {
  std::vector<std::pair<std::string, Snapshot>> sources;
  {
    const std::scoped_lock lock(mutex_);
    sources.reserve(sources_.size());
    for (const auto& [name, source] : sources_) {
      sources.emplace_back(name, source.snapshot);
    }
  }
  return merge_snapshots(std::move(sources), stats);
}

std::string FleetRegistry::chrome_trace_json() const {
  std::vector<TraceLane> lanes;
  {
    const std::scoped_lock lock(mutex_);
    lanes.reserve(sources_.size());
    // "manager" gets pid 1 when present; std::map order puts the remaining
    // sources in name order either way, so lane assignment is deterministic.
    const auto emit = [&lanes](const std::string& name,
                               const Source& source) {
      TraceLane lane;
      lane.process_name = name == "manager" ? name : "worker " + name;
      lane.clock_shift_ns = -source.offset_ns;
      lane.spans = source.spans;
      lanes.push_back(std::move(lane));
    };
    const auto manager = sources_.find("manager");
    if (manager != sources_.end()) emit(manager->first, manager->second);
    for (const auto& [name, source] : sources_) {
      if (name == "manager") continue;
      emit(name, source);
    }
  }
  return chrome_trace_from_lanes(lanes);
}

util::Status FleetRegistry::write_chrome_trace(const std::string& path) const {
  return util::write_file_atomic(path, chrome_trace_json());
}

}  // namespace mosaic::obs
