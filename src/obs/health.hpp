// Declarative health/SLO evaluation over metric snapshots.
//
// A HealthRule names a metric (optionally divided by a second metric) and
// warn/fail thresholds; evaluate_health() resolves each rule against a
// Snapshot and folds the per-rule verdicts into one ok/warn/fail report.
// The same engine serves three consumers:
//   - live: the dispatch telemetry server's /healthz endpoint and the
//     --progress board evaluate fleet rules against the merged snapshot,
//   - piggybacked: workers evaluate their local rules each heartbeat and
//     ship the verdict, so the fleet rollup reflects worker-side trouble
//     (e.g. quarantine growth) before it shows up in manager counters,
//   - post-mortem: `mosaic health` re-evaluates rules against a saved
//     metrics JSON file.
//
// Defaults ship in code (default_health_rules / default_fleet_health_rules)
// and can be replaced wholesale by a small JSON rules file — rules are
// data, not code, so operators can tighten thresholds without rebuilding.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mosaic::obs {

/// Verdict severity; numeric order is badness order (worst wins the fold)
/// and the value exported as the mosaic_health_level gauge.
enum class HealthLevel : std::uint8_t { kOk = 0, kWarn = 1, kFail = 2 };

[[nodiscard]] std::string_view health_level_name(HealthLevel level) noexcept;

/// Parses "ok"/"warn"/"fail"; anything else errors (kParseError).
[[nodiscard]] util::Expected<HealthLevel> health_level_from_name(
    std::string_view name);

[[nodiscard]] constexpr HealthLevel worse(HealthLevel a,
                                          HealthLevel b) noexcept {
  return a < b ? b : a;
}

/// One SLO rule. `metric` resolves against a snapshot as:
///   - the exact series name when present (fleet totals match here), else
///   - the family fold over labeled variants `metric{...}`: counters sum
///     (skipping `worker="..."`-labeled series, which would double-count a
///     fleet total), gauges take the max (worst worker wins).
/// With `denominator` set the value becomes metric/denominator (0 when the
/// denominator resolves to 0). Thresholds compare with >=; a negative
/// threshold disables that level.
struct HealthRule {
  std::string name;         ///< stable rule id, e.g. "worker-staleness"
  std::string metric;
  std::string denominator;  ///< empty = use the metric value directly
  double warn = -1.0;
  double fail = -1.0;
};

/// One evaluated rule.
struct HealthCheck {
  std::string rule;
  std::string metric;
  double value = 0.0;
  double warn = -1.0;
  double fail = -1.0;
  HealthLevel level = HealthLevel::kOk;
};

struct HealthReport {
  HealthLevel level = HealthLevel::kOk;
  std::vector<HealthCheck> checks;  ///< rule order preserved
};

/// Process-local defaults: ingest eviction/retry pressure, quarantine
/// growth, thread-pool queue saturation, suppressed task errors.
[[nodiscard]] std::vector<HealthRule> default_health_rules();

/// Fleet (dispatch manager) defaults: retry ratio, quarantine, lost and
/// stale workers, degraded tasks, telemetry parse errors.
[[nodiscard]] std::vector<HealthRule> default_fleet_health_rules();

/// Evaluates `rules` against `snapshot`. Also records the verdict into the
/// live registry (mosaic_health_level gauge, mosaic_health_evaluations_total)
/// when metrics are enabled.
[[nodiscard]] HealthReport evaluate_health(const Snapshot& snapshot,
                                           const std::vector<HealthRule>& rules);

/// {"status": "...", "checks": [{rule, metric, value, warn, fail, status}]}.
[[nodiscard]] json::Value health_to_json(const HealthReport& report);

/// One-line rollup for the progress board: "ok", or
/// "warn(queue-saturation)", or "fail(worker-staleness,quarantine)".
[[nodiscard]] std::string health_summary(const HealthReport& report);

/// Multi-line human rendering for the `mosaic health` CLI.
[[nodiscard]] std::string health_text(const HealthReport& report);

/// Rules file codec: {"rules": [{"name", "metric", "denominator"?,
/// "warn"?, "fail"?}]}. Errors (kParseError) on missing/mistyped fields.
[[nodiscard]] util::Expected<std::vector<HealthRule>> health_rules_from_json(
    const json::Value& value);

/// Inverse of health_rules_from_json — round-trips exactly, so
/// `mosaic health --print-rules` output is a valid rules file.
[[nodiscard]] json::Value health_rules_to_json(
    const std::vector<HealthRule>& rules);
[[nodiscard]] util::Expected<std::vector<HealthRule>> load_health_rules(
    const std::string& path);

/// Reads a snapshot back from the metrics_to_json() format (the --metrics
/// artifact), so `mosaic health` can evaluate saved runs. Histogram buckets
/// are cumulative in that format and are de-cumulated here.
[[nodiscard]] util::Expected<Snapshot> snapshot_from_metrics_json(
    const json::Value& value);

}  // namespace mosaic::obs
