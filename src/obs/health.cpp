#include "obs/health.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/names.hpp"

namespace mosaic::obs {

using json::Array;
using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;

std::string_view health_level_name(HealthLevel level) noexcept {
  switch (level) {
    case HealthLevel::kOk: return "ok";
    case HealthLevel::kWarn: return "warn";
    case HealthLevel::kFail: return "fail";
  }
  return "ok";
}

Expected<HealthLevel> health_level_from_name(std::string_view name) {
  if (name == "ok") return HealthLevel::kOk;
  if (name == "warn") return HealthLevel::kWarn;
  if (name == "fail") return HealthLevel::kFail;
  return Error{ErrorCode::kParseError,
               "unknown health level '" + std::string(name) + "'"};
}

namespace {

/// True when `series` is `family{...}` — a labeled variant of `family`.
bool is_family_member(std::string_view series, std::string_view family) {
  return series.size() > family.size() + 1 &&
         series.compare(0, family.size(), family) == 0 &&
         series[family.size()] == '{';
}

/// True for fleet-merge-labeled series (`worker="..."` present): summing
/// those on top of the bare fleet total would double-count.
bool has_worker_label(std::string_view series) {
  return series.find("worker=\"") != std::string_view::npos;
}

/// Resolves a rule metric against a snapshot (semantics in health.hpp).
double resolve_metric(const Snapshot& snapshot, std::string_view name) {
  for (const CounterSample& sample : snapshot.counters) {
    if (sample.name == name) return static_cast<double>(sample.value);
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    if (sample.name == name) return static_cast<double>(sample.value);
  }
  // Family fold over labeled variants.
  double counter_sum = 0.0;
  bool counter_found = false;
  for (const CounterSample& sample : snapshot.counters) {
    if (!is_family_member(sample.name, name)) continue;
    if (has_worker_label(sample.name)) continue;
    counter_sum += static_cast<double>(sample.value);
    counter_found = true;
  }
  if (counter_found) return counter_sum;
  double gauge_max = 0.0;
  bool gauge_found = false;
  for (const GaugeSample& sample : snapshot.gauges) {
    if (!is_family_member(sample.name, name)) continue;
    const auto value = static_cast<double>(sample.value);
    if (!gauge_found || value > gauge_max) gauge_max = value;
    gauge_found = true;
  }
  if (gauge_found) return gauge_max;
  return 0.0;
}

std::string format_threshold(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

}  // namespace

std::vector<HealthRule> default_health_rules() {
  return {
      // Evictions per processed file: a corpus where most files die in the
      // funnel is a data problem worth failing loudly on.
      {"eviction-ratio", std::string(names::kFunnelEvictions),
       std::string(names::kIngestProcessed), 0.1, 0.5},
      // Retries per processed file: sustained retry pressure means the
      // storage layer is struggling even if everything eventually loads.
      {"retry-ratio", std::string(names::kIngestRetryAttempts),
       std::string(names::kIngestProcessed), 0.2, 1.0},
      {"quarantine", std::string(names::kIngestQuarantined), "", 1.0, 10.0},
      // Queue depth per pool thread: backlog growth beyond a few tasks per
      // worker means producers outpace the pool.
      {"queue-saturation", std::string(names::kPoolQueueDepth),
       std::string(names::kPoolThreads), 4.0, 16.0},
      {"suppressed-errors", std::string(names::kPoolSuppressedErrors), "",
       1.0, -1.0},
  };
}

std::vector<HealthRule> default_fleet_health_rules() {
  return {
      {"dispatch-retry-ratio", std::string(names::kDispatchRetries),
       std::string(names::kDispatchTasksDone), 0.5, 2.0},
      // A quarantined shard refuses the merge — that is already a failed
      // run, so warn and fail coincide.
      {"quarantine", std::string(names::kDispatchQuarantined), "", 1.0, 1.0},
      {"workers-lost", std::string(names::kDispatchWorkersLost), "", 1.0,
       -1.0},
      // A stale worker (heartbeat grace expired / quarantined / lost) means
      // the fleet view is no longer live — fail until it recovers.
      {"worker-staleness", std::string(names::kFleetWorkersStale), "", 1.0,
       1.0},
      {"degraded-tasks", std::string(names::kDispatchDegradedTasks), "", 1.0,
       -1.0},
      {"telemetry-parse-errors",
       std::string(names::kFleetTelemetryParseErrors), "", 1.0, -1.0},
  };
}

HealthReport evaluate_health(const Snapshot& snapshot,
                             const std::vector<HealthRule>& rules) {
  HealthReport report;
  report.checks.reserve(rules.size());
  for (const HealthRule& rule : rules) {
    HealthCheck check;
    check.rule = rule.name;
    check.metric = rule.metric;
    check.warn = rule.warn;
    check.fail = rule.fail;
    double value = resolve_metric(snapshot, rule.metric);
    if (!rule.denominator.empty()) {
      const double denominator = resolve_metric(snapshot, rule.denominator);
      value = denominator > 0.0 ? value / denominator : 0.0;
    }
    check.value = value;
    if (rule.fail >= 0.0 && value >= rule.fail) {
      check.level = HealthLevel::kFail;
    } else if (rule.warn >= 0.0 && value >= rule.warn) {
      check.level = HealthLevel::kWarn;
    }
    report.level = worse(report.level, check.level);
    report.checks.push_back(std::move(check));
  }
  if (metrics_enabled()) {
    static Gauge& level_gauge = Registry::global().gauge(
        names::kHealthLevel, "Latest health verdict (0 ok, 1 warn, 2 fail)");
    static Counter& evaluations = Registry::global().counter(
        names::kHealthEvaluations, "Health rule-set evaluations");
    level_gauge.set(static_cast<std::int64_t>(report.level));
    evaluations.add(1);
  }
  return report;
}

json::Value health_to_json(const HealthReport& report) {
  Object out;
  out.set("status", std::string(health_level_name(report.level)));
  Array checks;
  checks.reserve(report.checks.size());
  for (const HealthCheck& check : report.checks) {
    Object c;
    c.set("rule", check.rule);
    c.set("metric", check.metric);
    c.set("value", check.value);
    if (check.warn >= 0.0) c.set("warn", check.warn);
    if (check.fail >= 0.0) c.set("fail", check.fail);
    c.set("status", std::string(health_level_name(check.level)));
    checks.push_back(std::move(c));
  }
  out.set("checks", std::move(checks));
  return Value(std::move(out));
}

std::string health_summary(const HealthReport& report) {
  if (report.level == HealthLevel::kOk) return "ok";
  std::string culprits;
  for (const HealthCheck& check : report.checks) {
    // Name only the rules at the rollup's severity: a warn rollup listing
    // its warns, a fail rollup listing its fails.
    if (check.level != report.level) continue;
    if (!culprits.empty()) culprits += ',';
    culprits += check.rule;
  }
  std::string out(health_level_name(report.level));
  // A rollup can outrank every check (e.g. folded from another report);
  // a bare level reads better than empty parens then.
  if (!culprits.empty()) out += '(' + culprits + ')';
  return out;
}

std::string health_text(const HealthReport& report) {
  std::string out = "health: ";
  out += health_level_name(report.level);
  out += '\n';
  for (const HealthCheck& check : report.checks) {
    char value[32];
    std::snprintf(value, sizeof value, "%.4g", check.value);
    out += "  ";
    out += health_level_name(check.level);
    out.append(6 - health_level_name(check.level).size(), ' ');
    out += check.rule;
    out += " = ";
    out += value;
    if (check.warn >= 0.0) {
      out += " (warn >= " + format_threshold(check.warn);
      if (check.fail >= 0.0) out += ", fail >= " + format_threshold(check.fail);
      out += ")";
    } else if (check.fail >= 0.0) {
      out += " (fail >= " + format_threshold(check.fail) + ")";
    }
    out += "  [";
    out += check.metric;
    out += "]\n";
  }
  return out;
}

namespace {

Error rules_error(std::string what) {
  return Error{ErrorCode::kParseError, "health rules: " + std::move(what)};
}

}  // namespace

Expected<std::vector<HealthRule>> health_rules_from_json(
    const json::Value& value) {
  if (!value.is_object()) return rules_error("document is not an object");
  const Value* rules = value.as_object().find("rules");
  if (rules == nullptr || !rules->is_array()) {
    return rules_error("missing 'rules' array");
  }
  std::vector<HealthRule> out;
  out.reserve(rules->as_array().size());
  for (const Value& member : rules->as_array()) {
    if (!member.is_object()) return rules_error("rule is not an object");
    const Object& obj = member.as_object();
    HealthRule rule;
    const Value* name = obj.find("name");
    if (name == nullptr || !name->is_string()) {
      return rules_error("rule missing string 'name'");
    }
    rule.name = name->as_string();
    const Value* metric = obj.find("metric");
    if (metric == nullptr || !metric->is_string()) {
      return rules_error("rule '" + rule.name + "' missing string 'metric'");
    }
    rule.metric = metric->as_string();
    if (const Value* denominator = obj.find("denominator");
        denominator != nullptr) {
      if (!denominator->is_string()) {
        return rules_error("rule '" + rule.name +
                           "': 'denominator' is not a string");
      }
      rule.denominator = denominator->as_string();
    }
    bool any_threshold = false;
    if (const Value* warn = obj.find("warn"); warn != nullptr) {
      if (!warn->is_number()) {
        return rules_error("rule '" + rule.name + "': 'warn' is not a number");
      }
      rule.warn = warn->as_number();
      any_threshold = true;
    }
    if (const Value* fail = obj.find("fail"); fail != nullptr) {
      if (!fail->is_number()) {
        return rules_error("rule '" + rule.name + "': 'fail' is not a number");
      }
      rule.fail = fail->as_number();
      any_threshold = true;
    }
    if (!any_threshold) {
      return rules_error("rule '" + rule.name +
                         "' needs at least one of 'warn'/'fail'");
    }
    out.push_back(std::move(rule));
  }
  if (out.empty()) return rules_error("empty 'rules' array");
  return out;
}

json::Value health_rules_to_json(const std::vector<HealthRule>& rules) {
  Array members;
  members.reserve(rules.size());
  for (const HealthRule& rule : rules) {
    Object member;
    member.set("name", rule.name);
    member.set("metric", rule.metric);
    if (!rule.denominator.empty()) {
      member.set("denominator", rule.denominator);
    }
    if (rule.warn >= 0.0) member.set("warn", rule.warn);
    if (rule.fail >= 0.0) member.set("fail", rule.fail);
    members.push_back(std::move(member));
  }
  Object out;
  out.set("rules", std::move(members));
  return Value(std::move(out));
}

Expected<std::vector<HealthRule>> load_health_rules(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open rules file: " + path};
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = json::parse(text.str());
  if (!parsed.has_value()) {
    return Error{ErrorCode::kParseError,
                 "rules file " + path + ": " + parsed.error().message};
  }
  return health_rules_from_json(*parsed);
}

namespace {

Error metrics_json_error(std::string what) {
  return Error{ErrorCode::kParseError, "metrics json: " + std::move(what)};
}

}  // namespace

Expected<Snapshot> snapshot_from_metrics_json(const json::Value& value) {
  if (!value.is_object()) return metrics_json_error("not an object");
  const Object& obj = value.as_object();
  Snapshot snapshot;
  if (const Value* counters = obj.find("counters"); counters != nullptr) {
    if (!counters->is_object()) {
      return metrics_json_error("'counters' is not an object");
    }
    for (const auto& [name, member] : counters->as_object().entries()) {
      if (!member.is_number()) {
        return metrics_json_error("counter '" + name + "' is not a number");
      }
      snapshot.counters.push_back(
          {name, "", static_cast<std::uint64_t>(member.as_number())});
    }
  }
  if (const Value* gauges = obj.find("gauges"); gauges != nullptr) {
    if (!gauges->is_object()) {
      return metrics_json_error("'gauges' is not an object");
    }
    for (const auto& [name, member] : gauges->as_object().entries()) {
      if (!member.is_number()) {
        return metrics_json_error("gauge '" + name + "' is not a number");
      }
      snapshot.gauges.push_back(
          {name, "", static_cast<std::int64_t>(member.as_number())});
    }
  }
  if (const Value* histograms = obj.find("histograms"); histograms != nullptr) {
    if (!histograms->is_object()) {
      return metrics_json_error("'histograms' is not an object");
    }
    for (const auto& [name, member] : histograms->as_object().entries()) {
      if (!member.is_object()) {
        return metrics_json_error("histogram '" + name + "' is not an object");
      }
      const Object& h = member.as_object();
      HistogramSample sample;
      sample.name = name;
      if (const Value* sum = h.find("sum"); sum != nullptr && sum->is_number()) {
        sample.sum = sum->as_number();
      }
      const Value* buckets = h.find("buckets");
      if (buckets == nullptr || !buckets->is_array()) {
        return metrics_json_error("histogram '" + name +
                                  "' missing 'buckets' array");
      }
      // metrics_to_json emits Prometheus-style cumulative buckets with an
      // "le" edge per entry; the Snapshot form wants per-bucket counts and
      // the finite edges only.
      std::uint64_t previous = 0;
      for (const Value& bucket : buckets->as_array()) {
        if (!bucket.is_object()) {
          return metrics_json_error("histogram '" + name +
                                    "' bucket is not an object");
        }
        const Object& b = bucket.as_object();
        const Value* le = b.find("le");
        const Value* count = b.find("count");
        if (le == nullptr || count == nullptr || !count->is_number()) {
          return metrics_json_error("histogram '" + name +
                                    "' bucket missing le/count");
        }
        const auto cumulative =
            static_cast<std::uint64_t>(count->as_number());
        if (cumulative < previous) {
          return metrics_json_error("histogram '" + name +
                                    "' buckets are not cumulative");
        }
        sample.buckets.push_back(cumulative - previous);
        previous = cumulative;
        if (le->is_number()) {
          sample.bounds.push_back(le->as_number());
        } else if (!le->is_string() || le->as_string() != "+Inf") {
          return metrics_json_error("histogram '" + name +
                                    "' has a malformed 'le' edge");
        }
      }
      if (sample.buckets.size() != sample.bounds.size() + 1) {
        return metrics_json_error("histogram '" + name +
                                  "' is missing its +Inf bucket");
      }
      sample.count = previous;
      snapshot.histograms.push_back(std::move(sample));
    }
  }
  return snapshot;
}

}  // namespace mosaic::obs
