// Run telemetry sinks: the --metrics file dump and the --progress heartbeat.
//
// write_metrics_files() scrapes the global registry once and writes the
// snapshot in two formats — `path` gets the JSON rendering and
// `path + ".prom"` the Prometheus text exposition — both via the same
// atomic temp+rename discipline as every other artifact, so a killed run
// never leaves a torn metrics file for a scraper to mis-ingest.
//
// Heartbeat runs a background thread that logs one progress line every
// `interval_seconds` during long batch runs: files/sec over the last tick,
// funnel counts, retry/quarantine totals, thread-pool queue depth and
// utilization. It reads only the metrics registry, so it needs no hooks
// into the pipeline and costs nothing between ticks.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "util/error.hpp"

namespace mosaic::obs {

/// Scrapes Registry::global() and writes `path` (JSON) plus `path + ".prom"`
/// (Prometheus text), each atomically.
[[nodiscard]] util::Status write_metrics_files(const std::string& path);

/// Periodic progress logger over the metrics registry. The thread starts in
/// the constructor (interval <= 0 starts nothing) and is joined by stop()
/// or the destructor.
class Heartbeat {
 public:
  explicit Heartbeat(double interval_seconds);
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Joins the logger thread (idempotent). Emits one final tick plus a
  /// completion summary (total traces, elapsed, traces/sec, retries) so
  /// short runs still report and long runs end with whole-run totals.
  void stop();

 private:
  void loop();
  void tick();
  void summary() const;

  double interval_seconds_;
  double start_seconds_ = 0.0;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::uint64_t last_processed_ = 0;
  double last_tick_seconds_ = 0.0;
  std::thread thread_;
};

}  // namespace mosaic::obs
