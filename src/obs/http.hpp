// Embedded HTTP/1.x endpoint shared by `mosaic dispatch` and `mosaic
// daemon` (DESIGN.md §17).
//
// One deliberately small server: a background accept loop over
// util::Listener, one GET request per connection, poll-bounded reads so a
// wedged client cannot hang the process, and a route table registered
// before start(). Enough for curl / Prometheus scrapes and the daemon's
// JSON result serving without pulling an HTTP dependency into the binary.
//
// Cross-cutting behavior lives here, once, for every binary that serves
// HTTP (docs/API.md documents it):
//   - non-GET methods     -> 405 Method Not Allowed
//   - bearer-token auth   -> 401 + `WWW-Authenticate: Bearer` on a missing
//                            or wrong token (constant-time compare), with
//                            mosaic_http_unauthorized_total bumped and an
//                            optional owner hook for subsystem counters
//   - unknown targets     -> 404 listing the registered routes
//   - every request       -> mosaic_http_requests_total
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/net.hpp"

namespace mosaic::obs {

/// One parsed request, as far as this server parses: the method, the target
/// path (query string stripped), and the raw head for handlers that need
/// another header.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string head;
};

/// What a route handler returns. `extra_header` is one optional raw header
/// line (no trailing CRLF), e.g. "Cache-Control: no-store".
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
  std::string extra_header;
};

/// Reason-phrase for the handful of status codes the endpoint uses.
[[nodiscard]] std::string_view http_status_text(int status);

/// Parses the `METHOD SP TARGET [SP VERSION]` request line at the start of
/// a raw head into `request.method` and `request.target` (query string
/// stripped). The search never leaves the first line, so a space in a later
/// header cannot masquerade as the target delimiter. Returns false — with
/// `request` untouched — when the line is malformed: truncated before both
/// spaces, or an empty method or target. Free function so the parser is
/// unit-testable without a socket.
[[nodiscard]] bool parse_request_line(std::string_view head,
                                      HttpRequest& request);

/// The one shared "where is my endpoint" line: prints
/// `<component> metrics endpoint listening on <host>:<port>` to stdout and
/// flushes, so shell harnesses started with `--metrics-port 0` can scrape
/// the resolved ephemeral port from one stable format.
void announce_http_endpoint(std::string_view component,
                            std::string_view host, std::uint16_t port);

/// Minimal threaded HTTP server. Register routes, then start(); stop()
/// (idempotent, also run by the destructor) joins the accept thread.
/// Handlers run on the accept thread and must be thread-safe against the
/// owning subsystem.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact target, e.g. "/metrics".
  void handle(std::string target, Handler handler);

  /// Registers a handler for every target beginning with `prefix`, e.g.
  /// "/explain/" for /explain/<trace-id>. Exact routes win over prefixes;
  /// longer prefixes win over shorter ones.
  void handle_prefix(std::string prefix, Handler handler);

  /// Requires `Authorization: Bearer <token>` on every request
  /// (constant-time compare; 401 otherwise). Empty = open endpoint.
  void set_auth_token(std::string token);

  /// Called on every 401, after the shared counter bump — lets the owner
  /// keep a subsystem-scoped rejection counter too.
  void set_unauthorized_hook(std::function<void()> hook);

  /// Binds and serves on a background thread until stop(). Port 0 binds
  /// ephemerally; port() reports the resolved port.
  [[nodiscard]] util::Status start(const util::Address& address);

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  /// Joins the accept thread and closes the listener (idempotent).
  void stop();

 private:
  void serve();
  void handle_connection(util::Connection conn);
  [[nodiscard]] bool authorized(const std::string& head) const;
  [[nodiscard]] std::string route_list() const;

  std::vector<std::pair<std::string, Handler>> routes_;
  std::vector<std::pair<std::string, Handler>> prefix_routes_;
  std::function<void()> unauthorized_hook_;

  mutable std::mutex token_mutex_;
  std::string auth_token_;

  util::Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace mosaic::obs
