// Self-contained JSON value model, parser and serializer.
//
// MOSAIC persists per-trace categorization results and aggregate statistics
// as JSON (paper §III-B4). The model is a tagged union over null/bool/
// number/string/array/object; objects preserve insertion order so emitted
// reports are stable and diffable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace mosaic::json {

class Value;

/// Ordered object: keeps keys in insertion order (stable report output),
/// with O(log n) lookup through a side index.
class Object {
 public:
  /// Inserts or overwrites `key`.
  void set(std::string key, Value value);

  /// Pointer to the member or nullptr.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;

  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Insertion-ordered members.
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries()
      const noexcept {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

using Array = std::vector<Value>;

/// A JSON value. Numbers are stored as double; integers up to 2^53 round-trip
/// exactly, which covers every counter MOSAIC emits.
class Value {
 public:
  Value() : data_(nullptr) {}                       ///< null
  /* implicit */ Value(std::nullptr_t) : data_(nullptr) {}
  /* implicit */ Value(bool b) : data_(b) {}
  /* implicit */ Value(double d) : data_(d) {}
  /* implicit */ Value(int i) : data_(static_cast<double>(i)) {}
  /* implicit */ Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  /* implicit */ Value(std::uint64_t u) : data_(static_cast<double>(u)) {}
  /* implicit */ Value(const char* s) : data_(std::string(s)) {}
  /* implicit */ Value(std::string s) : data_(std::move(s)) {}
  /* implicit */ Value(std::string_view s) : data_(std::string(s)) {}
  /* implicit */ Value(Object o) : data_(std::move(o)) {}
  /* implicit */ Value(Array a) : data_(std::move(a)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(data_);
  }

  /// Typed accessors; preconditions checked with MOSAIC_ASSERT.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Serializes with 2-space indentation and '\n' line ends.
[[nodiscard]] std::string serialize(const Value& value, bool pretty = true);

/// Parses a complete JSON document. Trailing non-whitespace is an error.
/// Depth is limited (default 256) to bound stack use on hostile input.
[[nodiscard]] util::Expected<Value> parse(std::string_view text,
                                          std::size_t max_depth = 256);

}  // namespace mosaic::json
