#include "json/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace mosaic::json {

using util::Error;
using util::ErrorCode;
using util::Expected;

void Object::set(std::string key, Value value) {
  if (const auto it = index_.find(key); it != index_.end()) {
    entries_[it->second].second = std::move(value);
    return;
  }
  index_.emplace(key, entries_.size());
  entries_.emplace_back(std::move(key), std::move(value));
}

const Value* Object::find(std::string_view key) const noexcept {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

Value* Object::find(std::string_view key) noexcept {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

bool Value::as_bool() const {
  MOSAIC_ASSERT(is_bool());
  return std::get<bool>(data_);
}

double Value::as_number() const {
  MOSAIC_ASSERT(is_number());
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  MOSAIC_ASSERT(is_string());
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  MOSAIC_ASSERT(is_array());
  return std::get<Array>(data_);
}

Array& Value::as_array() {
  MOSAIC_ASSERT(is_array());
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  MOSAIC_ASSERT(is_object());
  return std::get<Object>(data_);
}

Object& Value::as_object() {
  MOSAIC_ASSERT(is_object());
  return std::get<Object>(data_);
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// std::to_chars always formats in the C locale; snprintf honors LC_NUMERIC
// and would emit "1,5" under a comma-decimal locale, corrupting every
// artifact the process writes. The fixed/general forms below produce the
// exact bytes "%.0f"/"%.17g" produce in the C locale, so goldens are stable.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; emit null like most tolerant serializers.
    out += "null";
    return;
  }
  char buf[40];
  // Integers within the exact-double range print without a fraction.
  const bool integral =
      value == std::floor(value) && std::abs(value) < 9.007199254740992e15;
  const auto result =
      integral ? std::to_chars(buf, buf + sizeof buf, value,
                               std::chars_format::fixed, 0)
               : std::to_chars(buf, buf + sizeof buf, value,
                               std::chars_format::general, 17);
  out.append(buf, result.ptr);
}

void serialize_impl(const Value& value, std::string& out, bool pretty,
                    int depth) {
  const auto newline_indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(d) * 2, ' ');
  };

  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(out, value.as_number());
  } else if (value.is_string()) {
    append_escaped(out, value.as_string());
  } else if (value.is_array()) {
    const Array& items = value.as_array();
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ',';
      newline_indent(depth + 1);
      serialize_impl(items[i], out, pretty, depth + 1);
    }
    newline_indent(depth);
    out += ']';
  } else {
    const Object& object = value.as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, member] : object.entries()) {
      if (!first) out += ',';
      first = false;
      newline_indent(depth + 1);
      append_escaped(out, key);
      out += pretty ? ": " : ":";
      serialize_impl(member, out, pretty, depth + 1);
    }
    newline_indent(depth);
    out += '}';
  }
}

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Expected<Value> run() {
    skip_whitespace();
    auto value = parse_value(0);
    if (!value) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  Error fail(std::string message) const {
    return Error{ErrorCode::kParseError,
                 message + " at offset " + std::to_string(pos_)};
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Expected<Value> parse_value(std::size_t depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto text = parse_string();
        if (!text) return std::move(text).error();
        return Value{std::move(*text)};
      }
      case 't':
        if (consume("true")) return Value{true};
        return fail("invalid literal");
      case 'f':
        if (consume("false")) return Value{false};
        return fail("invalid literal");
      case 'n':
        if (consume("null")) return Value{nullptr};
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Expected<std::string> parse_string() {
    MOSAIC_ASSERT(peek() == '"');
    ++pos_;
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are rare in
          // MOSAIC output; unpaired surrogates pass through as-is bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  /// strtod saturates out-of-range magnitudes instead of rejecting them
  /// (overflow to +-HUGE_VAL, underflow to +-0). std::from_chars reports
  /// them as errors with the value unmodified, so the saturation is redone
  /// here from a rough decimal-exponent estimate — it only has to separate
  /// ~1e+309 from ~1e-324, not be precise.
  static double saturate_out_of_range(std::string_view token) {
    const bool negative = !token.empty() && token.front() == '-';
    if (negative || (!token.empty() && token.front() == '+')) {
      token.remove_prefix(1);
    }
    long long estimate = 0;  // floor(log10(|value|)), roughly
    std::size_t i = 0;
    long long integer_digits = 0;
    bool leading = true;
    for (; i < token.size() && token[i] >= '0' && token[i] <= '9'; ++i) {
      if (leading && token[i] == '0') continue;
      leading = false;
      ++integer_digits;
    }
    if (integer_digits > 0) {
      estimate = integer_digits - 1;
    } else if (i < token.size() && token[i] == '.') {
      std::size_t j = i + 1;
      while (j < token.size() && token[j] == '0') ++j;
      estimate = -static_cast<long long>(j - i);
    }
    if (const auto e = token.find_first_of("eE");
        e != std::string_view::npos) {
      long long exponent = 0;
      (void)std::from_chars(token.data() + e + 1,
                            token.data() + token.size(), exponent);
      estimate += exponent;
    }
    const double magnitude =
        estimate >= 0 ? std::numeric_limits<double>::infinity() : 0.0;
    return negative ? -magnitude : magnitude;
  }

  Expected<Value> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '-' ||
                      peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string_view token = text_.substr(start, pos_ - start);
    // std::from_chars is locale-independent; strtod honors LC_NUMERIC and
    // under a comma-decimal locale stops at the '.' of "1.5", turning every
    // fractional number in the document into a parse error.
    const char* first = token.data();
    const char* const last = token.data() + token.size();
    if (first != last && *first == '+') ++first;  // strtod-compat leniency
    if (first == last) return fail("malformed number");
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ptr != last) return fail("malformed number");
    if (ec == std::errc::result_out_of_range) {
      value = saturate_out_of_range(token);
    } else if (ec != std::errc{}) {
      return fail("malformed number");
    }
    return Value{value};
  }

  Expected<Value> parse_array(std::size_t depth) {
    ++pos_;  // '['
    Array items;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value{std::move(items)};
    }
    while (true) {
      skip_whitespace();
      auto item = parse_value(depth + 1);
      if (!item) return item;
      items.push_back(std::move(*item));
      skip_whitespace();
      if (eof()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Value{std::move(items)};
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  Expected<Value> parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Object object;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value{std::move(object)};
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') return fail("expected object key");
      auto key = parse_string();
      if (!key) return std::move(key).error();
      skip_whitespace();
      if (eof() || text_[pos_++] != ':') return fail("expected ':'");
      skip_whitespace();
      auto member = parse_value(depth + 1);
      if (!member) return member;
      object.set(std::move(*key), std::move(*member));
      skip_whitespace();
      if (eof()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Value{std::move(object)};
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize(const Value& value, bool pretty) {
  std::string out;
  serialize_impl(value, out, pretty, 0);
  if (pretty) out += '\n';
  return out;
}

Expected<Value> parse(std::string_view text, std::size_t max_depth) {
  return Parser{text, max_depth}.run();
}

}  // namespace mosaic::json
