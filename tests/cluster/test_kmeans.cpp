#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/rng.hpp"

namespace mosaic::cluster {
namespace {

PointSet gaussian_blobs(std::span<const std::array<double, 2>> centers,
                        std::size_t per_blob, double sigma,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  PointSet points(2);
  for (const auto& center : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::array<double, 2> p{center[0] + rng.normal(0.0, sigma),
                                    center[1] + rng.normal(0.0, sigma)};
      points.add(p);
    }
  }
  return points;
}

TEST(KMeans, EmptyInput) {
  const KMeansResult result = k_means(PointSet(2));
  EXPECT_TRUE(result.labels.empty());
  EXPECT_TRUE(result.centroids.empty());
}

TEST(KMeans, KClampedToPointCount) {
  PointSet points(1);
  const double v[] = {1.0};
  points.add(v);
  KMeansConfig config;
  config.k = 10;
  const KMeansResult result = k_means(points, config);
  EXPECT_EQ(result.labels.size(), 1u);
  EXPECT_LE(result.centroids.size(), 1u);
}

TEST(KMeans, SeparatesThreeBlobs) {
  const std::array<std::array<double, 2>, 3> centers{
      {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}};
  const PointSet points = gaussian_blobs(centers, 40, 0.3, 5);
  KMeansConfig config;
  config.k = 3;
  const KMeansResult result = k_means(points, config);

  // Each blob must be pure: all 40 points share one label, and the three
  // blobs get three distinct labels.
  std::array<std::size_t, 3> blob_label{};
  for (std::size_t blob = 0; blob < 3; ++blob) {
    blob_label[blob] = result.labels[blob * 40];
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(result.labels[blob * 40 + i], blob_label[blob]);
    }
  }
  EXPECT_NE(blob_label[0], blob_label[1]);
  EXPECT_NE(blob_label[0], blob_label[2]);
  EXPECT_NE(blob_label[1], blob_label[2]);
}

TEST(KMeans, CentroidsNearBlobCenters) {
  const std::array<std::array<double, 2>, 2> centers{{{0.0, 0.0}, {8.0, 8.0}}};
  const PointSet points = gaussian_blobs(centers, 60, 0.2, 9);
  KMeansConfig config;
  config.k = 2;
  const KMeansResult result = k_means(points, config);
  ASSERT_EQ(result.centroids.size(), 2u);
  for (const auto& center : centers) {
    double best = 1e9;
    for (const auto& centroid : result.centroids) {
      best = std::min(best, squared_distance(
                                std::span<const double>(center),
                                centroid));
    }
    EXPECT_LT(best, 0.05);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const std::array<std::array<double, 2>, 4> centers{
      {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}, {5.0, 5.0}}};
  const PointSet points = gaussian_blobs(centers, 25, 0.4, 13);
  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 4u}) {
    KMeansConfig config;
    config.k = k;
    const double inertia = k_means(points, config).inertia;
    EXPECT_LT(inertia, previous + 1e-9);
    previous = inertia;
  }
}

TEST(KMeans, DeterministicForSeed) {
  const std::array<std::array<double, 2>, 2> centers{{{0.0, 0.0}, {6.0, 6.0}}};
  const PointSet points = gaussian_blobs(centers, 30, 0.5, 21);
  KMeansConfig config;
  config.k = 2;
  config.seed = 42;
  const KMeansResult a = k_means(points, config);
  const KMeansResult b = k_means(points, config);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(AdjustedRandIndex, IdenticalPartitionsScoreOne) {
  const std::vector<std::size_t> labels{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(labels, labels), 1.0);
}

TEST(AdjustedRandIndex, RelabelingInvariant) {
  const std::vector<std::size_t> a{0, 0, 1, 1, 2, 2};
  const std::vector<std::size_t> b{5, 5, 9, 9, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(AdjustedRandIndex, IndependentPartitionsNearZero) {
  util::Rng rng(3);
  std::vector<std::size_t> a(2000);
  std::vector<std::size_t> b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::size_t>(rng.uniform_int(0, 3));
    b[i] = static_cast<std::size_t>(rng.uniform_int(0, 3));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.05);
}

TEST(AdjustedRandIndex, PartialAgreementBetween) {
  // Split one true cluster in half: ARI strictly between 0 and 1.
  const std::vector<std::size_t> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::size_t> split{0, 0, 2, 2, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(truth, split);
  EXPECT_GT(ari, 0.2);
  EXPECT_LT(ari, 1.0);
}

TEST(AdjustedRandIndex, TrivialPartitionsHandled) {
  const std::vector<std::size_t> all_same{7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(all_same, all_same), 1.0);
}

}  // namespace
}  // namespace mosaic::cluster
