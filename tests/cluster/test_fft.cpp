#include "cluster/fft.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numbers>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace mosaic::cluster {
namespace {

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, DeltaFunctionHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kTone = 5;
  std::vector<std::complex<double>> data(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(kTone * i) /
                         static_cast<double>(kN);
    data[i] = {std::cos(phase), 0.0};
  }
  fft(data);
  for (std::size_t k = 0; k < kN; ++k) {
    const double magnitude = std::abs(data[k]);
    if (k == kTone || k == kN - kTone) {
      EXPECT_NEAR(magnitude, kN / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(magnitude, 0.0, 1e-9);
    }
  }
}

TEST(Fft, ForwardInverseIsIdentity) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 32; ++i) {
    data.emplace_back(std::sin(i * 0.7), std::cos(i * 1.3));
  }
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 128; ++i) data.emplace_back(std::sin(i * 0.3), 0.0);
  double time_energy = 0.0;
  for (const auto& x : data) time_energy += std::norm(x);
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-8);
}

TEST(BinSeries, AccumulatesIntoBins) {
  const std::vector<std::pair<double, double>> samples{
      {0.5, 10.0}, {0.9, 5.0}, {3.2, 1.0}, {-1.0, 2.0}, {99.0, 3.0}};
  const auto series = bin_series(samples, 10.0, 1.0);
  ASSERT_EQ(series.size(), 10u);
  EXPECT_DOUBLE_EQ(series[0], 17.0);  // 10 + 5 + clamped 2
  EXPECT_DOUBLE_EQ(series[3], 1.0);
  EXPECT_DOUBLE_EQ(series[9], 3.0);  // clamped from t=99
}

TEST(DftDetector, FindsPlantedPeriod) {
  // 1 burst every 60 seconds over an hour, 1-second bins.
  std::vector<double> series(3600, 0.0);
  for (std::size_t t = 30; t < series.size(); t += 60) series[t] = 100.0;
  const DftPeriodicity result = detect_periodicity_dft(series);
  ASSERT_TRUE(result.periodic);
  ASSERT_FALSE(result.peaks.empty());
  EXPECT_NEAR(result.peaks.front().period_seconds, 60.0, 2.0);
}

TEST(DftDetector, FlatSignalIsNotPeriodic) {
  const std::vector<double> series(512, 5.0);
  const DftPeriodicity result = detect_periodicity_dft(series);
  EXPECT_FALSE(result.periodic);
}

TEST(DftDetector, WhiteNoiseIsNotPeriodic) {
  std::vector<double> series;
  std::uint64_t state = 12345;
  for (int i = 0; i < 1024; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    series.push_back(static_cast<double>(state >> 40));
  }
  const DftPeriodicity result = detect_periodicity_dft(series);
  EXPECT_FALSE(result.periodic);
}

TEST(DftDetector, TooShortSeriesRejected) {
  const std::vector<double> series{1.0, 2.0, 1.0};
  EXPECT_FALSE(detect_periodicity_dft(series).periodic);
}

TEST(DftDetector, TwoMixedPeriodsFindDominantOnly) {
  // The case the paper says frequency methods "fail to distinguish": two
  // intricate superposed periodic behaviors. The detector finds the
  // dominant train; the lighter one drowns in the dominant train's
  // autocorrelation structure (its confidence falls below the significance
  // gate). This documented limitation is what the segmentation+Mean-Shift
  // approach — clustering per-operation (duration, volume) signatures —
  // is designed to avoid (see bench/ablation_dft_vs_meanshift).
  std::vector<double> series(4096, 0.0);
  for (std::size_t t = 0; t < series.size(); t += 64) series[t] += 50.0;
  for (std::size_t t = 10; t < series.size(); t += 100) series[t] += 50.0;
  const DftPeriodicity result = detect_periodicity_dft(series);
  ASSERT_TRUE(result.periodic);
  ASSERT_FALSE(result.peaks.empty());
  EXPECT_NEAR(result.peaks.front().period_seconds, 64.0, 3.0);
}

TEST(DftDetector, ScoreWithinUnitRange) {
  std::vector<double> series(512, 0.0);
  for (std::size_t t = 0; t < series.size(); t += 32) series[t] = 10.0;
  const DftPeriodicity result = detect_periodicity_dft(series);
  for (const auto& peak : result.peaks) {
    EXPECT_GE(peak.score, 0.0);
    EXPECT_LE(peak.score, 1.0);
  }
}

std::vector<std::complex<double>> random_signal(std::size_t n,
                                                util::Rng& rng) {
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return data;
}

TEST(FftPlanCache, CachedMatchesColdBitForBit) {
  // The plan cache (bit-reversal swap list + twiddle tables) must not change
  // a single output bit relative to the cold path — the categorization
  // byte-identity invariant (DESIGN.md §12) depends on it. Run every cached
  // size twice so both the plan-building call and the warm-plan call are
  // covered, forward and inverse.
  util::Rng rng(123);
  for (std::size_t n = 8; n <= 4096; n *= 2) {
    const std::vector<std::complex<double>> input = random_signal(n, rng);
    for (const bool inverse : {false, true}) {
      std::vector<std::complex<double>> cold = input;
      fft_uncached(cold, inverse);
      for (int pass = 0; pass < 2; ++pass) {
        std::vector<std::complex<double>> cached = input;
        fft(cached, inverse);
        for (std::size_t i = 0; i < n; ++i) {
          // EXPECT_EQ on doubles is exact comparison: bit-identical, not
          // merely close.
          EXPECT_EQ(cached[i].real(), cold[i].real())
              << "n=" << n << " inverse=" << inverse << " pass=" << pass
              << " i=" << i;
          EXPECT_EQ(cached[i].imag(), cold[i].imag())
              << "n=" << n << " inverse=" << inverse << " pass=" << pass
              << " i=" << i;
        }
      }
    }
  }
}

TEST(FftSimd, ForcedScalarMatchesDispatchedTransformBitForBit) {
  // The AVX2 butterfly/norm/scale kernels share one rounding structure with
  // their scalar references (util/simd.hpp), so a forced-scalar transform
  // must reproduce the dispatched transform exactly — cached and cold,
  // forward and inverse, across non-trivial sizes.
  util::Rng rng(31);
  for (std::size_t n = 8; n <= 2048; n *= 4) {
    const std::vector<std::complex<double>> input = random_signal(n, rng);
    for (const bool inverse : {false, true}) {
      std::vector<std::complex<double>> dispatched = input;
      fft(dispatched, inverse);
      util::simd::set_level_for_testing(util::simd::Level::kScalar);
      std::vector<std::complex<double>> scalar = input;
      fft(scalar, inverse);
      std::vector<std::complex<double>> scalar_cold = input;
      fft_uncached(scalar_cold, inverse);
      util::simd::clear_level_for_testing();
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(scalar[i].real(), dispatched[i].real())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
        EXPECT_EQ(scalar[i].imag(), dispatched[i].imag())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
        EXPECT_EQ(scalar_cold[i].real(), dispatched[i].real())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
        EXPECT_EQ(scalar_cold[i].imag(), dispatched[i].imag())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
      }
    }
  }
}

TEST(BinSeriesColumnar, MatchesPairFormBitForBit) {
  // The columnar overload feeds the same simd::bin_add the pair form's
  // arithmetic mirrors; both must produce identical series.
  util::Rng rng(17);
  std::vector<std::pair<double, double>> pairs;
  std::vector<double> times, weights;
  for (int i = 0; i < 257; ++i) {
    const double t = rng.uniform(-5.0, 105.0);  // includes out-of-range
    const double w = rng.uniform(0.0, 10.0);
    pairs.emplace_back(t, w);
    times.push_back(t);
    weights.push_back(w);
  }
  const std::vector<double> from_pairs = bin_series(pairs, 100.0, 0.5);
  std::vector<double> from_columns;
  bin_series(times.data(), weights.data(), times.size(), 100.0, 0.5,
             from_columns);
  ASSERT_EQ(from_pairs.size(), from_columns.size());
  for (std::size_t i = 0; i < from_pairs.size(); ++i) {
    EXPECT_EQ(from_pairs[i], from_columns[i]) << "bin=" << i;
  }
}

TEST(FftPlanCache, ThreadLocalPlansMatchColdUnderPool) {
  // Plans are thread-local; interleaving sizes across pool workers exercises
  // several independent caches at once. Whichever worker (and whichever
  // cache state) serves a transform, the result must equal the cold path.
  util::Rng rng(7);
  const std::size_t sizes[] = {8, 64, 512, 4096};
  std::vector<std::vector<std::complex<double>>> inputs;
  std::vector<std::vector<std::complex<double>>> expected;
  for (const std::size_t n : sizes) {
    inputs.push_back(random_signal(n, rng));
    expected.push_back(inputs.back());
    fft_uncached(expected.back());
  }

  constexpr std::size_t kJobs = 32;
  std::vector<std::vector<std::complex<double>>> results(kJobs);
  parallel::ThreadPool pool(4);
  for (std::size_t job = 0; job < kJobs; ++job) {
    pool.submit([&, job] {
      results[job] = inputs[job % std::size(sizes)];
      fft(results[job]);
    });
  }
  pool.wait_idle();

  for (std::size_t job = 0; job < kJobs; ++job) {
    const auto& want = expected[job % std::size(sizes)];
    ASSERT_EQ(results[job].size(), want.size()) << "job=" << job;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(results[job][i].real(), want[i].real())
          << "job=" << job << " i=" << i;
      EXPECT_EQ(results[job][i].imag(), want[i].imag())
          << "job=" << job << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace mosaic::cluster
