#include "cluster/meanshift.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "util/rng.hpp"

namespace mosaic::cluster {
namespace {

PointSet points_from(std::initializer_list<std::array<double, 2>> rows) {
  PointSet points(2);
  for (const auto& row : rows) points.add(row);
  return points;
}

TEST(PointSet, StoresAndRetrieves) {
  PointSet points(3);
  const std::array<double, 3> p{1.0, 2.0, 3.0};
  points.add(p);
  EXPECT_EQ(points.size(), 1u);
  EXPECT_EQ(points.dim(), 3u);
  EXPECT_DOUBLE_EQ(points.point(0)[2], 3.0);
}

TEST(SquaredDistance, Computes) {
  const std::array<double, 2> a{0.0, 0.0};
  const std::array<double, 2> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(MinMaxScale, MapsToUnitBox) {
  const PointSet points =
      points_from({{0.0, 100.0}, {10.0, 200.0}, {5.0, 150.0}});
  const PointSet scaled = min_max_scale(points);
  EXPECT_DOUBLE_EQ(scaled.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.point(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(scaled.point(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(scaled.point(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(scaled.point(1)[1], 1.0);
}

TEST(MinMaxScale, ConstantColumnMapsToZero) {
  const PointSet points = points_from({{5.0, 1.0}, {5.0, 2.0}});
  const PointSet scaled = min_max_scale(points);
  EXPECT_DOUBLE_EQ(scaled.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.point(1)[0], 0.0);
}

TEST(MeanShift, EmptyInput) {
  const PointSet points(2);
  const MeanShiftResult result = mean_shift(points);
  EXPECT_TRUE(result.labels.empty());
  EXPECT_TRUE(result.modes.empty());
}

TEST(MeanShift, SinglePointIsItsOwnCluster) {
  const PointSet points = points_from({{0.5, 0.5}});
  const MeanShiftResult result = mean_shift(points);
  ASSERT_EQ(result.labels.size(), 1u);
  EXPECT_EQ(result.labels[0], 0u);
  ASSERT_EQ(result.cluster_sizes.size(), 1u);
  EXPECT_EQ(result.cluster_sizes[0], 1u);
}

TEST(MeanShift, TwoTightClustersSeparate) {
  MeanShiftConfig config;
  config.bandwidth = 0.15;
  const PointSet points = points_from({{0.0, 0.0},
                                       {0.02, 0.01},
                                       {0.01, 0.03},
                                       {0.9, 0.9},
                                       {0.92, 0.91},
                                       {0.91, 0.88}});
  const MeanShiftResult result = mean_shift(points, config);
  ASSERT_EQ(result.labels.size(), 6u);
  EXPECT_EQ(result.modes.size(), 2u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[0], result.labels[2]);
  EXPECT_EQ(result.labels[3], result.labels[4]);
  EXPECT_EQ(result.labels[3], result.labels[5]);
  EXPECT_NE(result.labels[0], result.labels[3]);
}

TEST(MeanShift, LargeBandwidthMergesEverything) {
  MeanShiftConfig config;
  config.bandwidth = 2.0;
  const PointSet points =
      points_from({{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}, {0.2, 0.8}});
  const MeanShiftResult result = mean_shift(points, config);
  EXPECT_EQ(result.modes.size(), 1u);
  EXPECT_EQ(result.cluster_sizes[0], 4u);
}

TEST(MeanShift, ClustersOrderedBySizeDescending) {
  MeanShiftConfig config;
  config.bandwidth = 0.1;
  const PointSet points = points_from({{0.0, 0.0},
                                       {0.01, 0.0},
                                       {0.0, 0.01},
                                       {0.02, 0.02},
                                       {0.5, 0.5},   // singleton
                                       {0.9, 0.9},
                                       {0.91, 0.9}});
  const MeanShiftResult result = mean_shift(points, config);
  ASSERT_GE(result.cluster_sizes.size(), 3u);
  for (std::size_t i = 1; i < result.cluster_sizes.size(); ++i) {
    EXPECT_LE(result.cluster_sizes[i], result.cluster_sizes[i - 1]);
  }
  EXPECT_EQ(result.cluster_sizes[0], 4u);
}

TEST(MeanShift, ModeNearClusterCenter) {
  MeanShiftConfig config;
  config.bandwidth = 0.2;
  util::Rng rng(3);
  PointSet points(2);
  for (int i = 0; i < 60; ++i) {
    const std::array<double, 2> p{0.5 + rng.normal(0.0, 0.02),
                                  0.5 + rng.normal(0.0, 0.02)};
    points.add(p);
  }
  const MeanShiftResult result = mean_shift(points, config);
  ASSERT_EQ(result.modes.size(), 1u);
  EXPECT_NEAR(result.modes[0][0], 0.5, 0.02);
  EXPECT_NEAR(result.modes[0][1], 0.5, 0.02);
}

TEST(MeanShift, PermutationInvariantPartition) {
  MeanShiftConfig config;
  config.bandwidth = 0.15;
  util::Rng rng(11);
  std::vector<std::array<double, 2>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.normal(0.2, 0.02), rng.normal(0.2, 0.02)});
    rows.push_back({rng.normal(0.8, 0.02), rng.normal(0.8, 0.02)});
  }
  PointSet forward(2);
  for (const auto& row : rows) forward.add(row);
  PointSet backward(2);
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) backward.add(*it);

  const MeanShiftResult a = mean_shift(forward, config);
  const MeanShiftResult b = mean_shift(backward, config);
  ASSERT_EQ(a.modes.size(), b.modes.size());
  // Same partition: labels of reversed input, reversed, must be a relabeling
  // of the forward labels.
  const std::size_t n = rows.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool same_a = a.labels[i] == a.labels[j];
      const bool same_b = b.labels[n - 1 - i] == b.labels[n - 1 - j];
      EXPECT_EQ(same_a, same_b);
    }
  }
}

TEST(MeanShift, GaussianKernelFindsSameTwoClusters) {
  MeanShiftConfig config;
  config.bandwidth = 0.1;
  config.kernel = Kernel::kGaussian;
  const PointSet points = points_from(
      {{0.1, 0.1}, {0.12, 0.11}, {0.11, 0.09}, {0.85, 0.9}, {0.88, 0.89}});
  const MeanShiftResult result = mean_shift(points, config);
  EXPECT_EQ(result.modes.size(), 2u);
  EXPECT_EQ(result.cluster_sizes[0], 3u);
  EXPECT_EQ(result.cluster_sizes[1], 2u);
}

TEST(MeanShift, LabelsConsistentWithSizes) {
  MeanShiftConfig config;
  config.bandwidth = 0.1;
  util::Rng rng(17);
  PointSet points(2);
  for (int i = 0; i < 50; ++i) {
    const std::array<double, 2> p{rng.uniform(), rng.uniform()};
    points.add(p);
  }
  const MeanShiftResult result = mean_shift(points, config);
  std::vector<std::size_t> recount(result.modes.size(), 0);
  for (const std::size_t label : result.labels) {
    ASSERT_LT(label, result.modes.size());
    ++recount[label];
  }
  EXPECT_EQ(recount, result.cluster_sizes);
}

TEST(GridIndex, NegativeCoordinatesFindAllNeighbors) {
  // Regression: cell keys are zigzag-packed before hashing so that negative
  // cell coordinates (points left of / below the origin) hash without
  // wrap-around. A plain cast would alias distant cells and silently drop
  // neighbors. Compare every radius query against brute force on a point
  // cloud straddling the origin in both dimensions.
  util::Rng rng(42);
  PointSet points(2);
  for (int i = 0; i < 200; ++i) {
    const std::array<double, 2> p{rng.uniform(-5.0, 5.0),
                                  rng.uniform(-5.0, 5.0)};
    points.add(p);
  }
  const double radius = 0.9;
  GridIndex grid;
  grid.build(points, radius);

  const std::array<double, 2> centers[] = {
      {-4.5, -4.5}, {-0.1, 0.1}, {0.0, 0.0}, {-3.0, 2.0}, {4.5, -4.5},
  };
  for (const auto& center : centers) {
    std::vector<std::size_t> indexed;
    grid.for_neighbors(center, radius,
                       [&](std::size_t i) { indexed.push_back(i); });
    std::sort(indexed.begin(), indexed.end());

    std::vector<std::size_t> brute;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (squared_distance(points.point(i), center) <= radius * radius) {
        brute.push_back(i);
      }
    }
    EXPECT_EQ(indexed, brute)
        << "center (" << center[0] << ", " << center[1] << ")";
  }
}

TEST(GridIndex, RebuildReusesStorageAcrossPointSets) {
  // The index is rebuilt per trace from a worker-owned workspace; a second
  // build over different points must fully supersede the first.
  PointSet first(2);
  for (int i = 0; i < 20; ++i) {
    const std::array<double, 2> p{static_cast<double>(i), 0.0};
    first.add(p);
  }
  GridIndex grid;
  grid.build(first, 1.0);

  PointSet second(2);
  const std::array<double, 2> lone{-7.25, -3.5};
  second.add(lone);
  grid.build(second, 1.0);

  std::vector<std::size_t> hits;
  grid.for_neighbors(lone, 1.0, [&](std::size_t i) { hits.push_back(i); });
  EXPECT_EQ(hits, std::vector<std::size_t>{0});

  const std::array<double, 2> far{5.0, 5.0};
  hits.clear();
  grid.for_neighbors(far, 1.0, [&](std::size_t i) { hits.push_back(i); });
  EXPECT_TRUE(hits.empty());
}

TEST(MeanShift, NegativeCoordinateClustersMatchShiftedCopy) {
  // Translating the whole point cloud must not change the partition: the
  // grid, the kernel, and mode merging are all translation-invariant, and
  // the negative quadrant must behave exactly like the positive one.
  util::Rng rng(9);
  PointSet positive(2);
  PointSet negative(2);
  for (int i = 0; i < 40; ++i) {
    // Unequal cluster sizes so the size-descending numbering is unambiguous.
    const double cx = (i % 3 == 0) ? 0.2 : 0.8;
    const std::array<double, 2> p{cx + 0.02 * rng.normal(),
                                  0.5 + 0.02 * rng.normal()};
    positive.add(p);
    const std::array<double, 2> shifted{p[0] - 10.0, p[1] - 10.0};
    negative.add(shifted);
  }
  MeanShiftConfig config;
  config.bandwidth = 0.15;
  const MeanShiftResult a = mean_shift(positive, config);
  const MeanShiftResult b = mean_shift(negative, config);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.cluster_sizes, b.cluster_sizes);
}

}  // namespace
}  // namespace mosaic::cluster
