#include "cluster/meanshift.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "util/rng.hpp"

namespace mosaic::cluster {
namespace {

PointSet points_from(std::initializer_list<std::array<double, 2>> rows) {
  PointSet points(2);
  for (const auto& row : rows) points.add(row);
  return points;
}

TEST(PointSet, StoresAndRetrieves) {
  PointSet points(3);
  const std::array<double, 3> p{1.0, 2.0, 3.0};
  points.add(p);
  EXPECT_EQ(points.size(), 1u);
  EXPECT_EQ(points.dim(), 3u);
  EXPECT_DOUBLE_EQ(points.point(0)[2], 3.0);
}

TEST(SquaredDistance, Computes) {
  const std::array<double, 2> a{0.0, 0.0};
  const std::array<double, 2> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(MinMaxScale, MapsToUnitBox) {
  const PointSet points =
      points_from({{0.0, 100.0}, {10.0, 200.0}, {5.0, 150.0}});
  const PointSet scaled = min_max_scale(points);
  EXPECT_DOUBLE_EQ(scaled.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.point(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(scaled.point(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(scaled.point(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(scaled.point(1)[1], 1.0);
}

TEST(MinMaxScale, ConstantColumnMapsToZero) {
  const PointSet points = points_from({{5.0, 1.0}, {5.0, 2.0}});
  const PointSet scaled = min_max_scale(points);
  EXPECT_DOUBLE_EQ(scaled.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.point(1)[0], 0.0);
}

TEST(MeanShift, EmptyInput) {
  const PointSet points(2);
  const MeanShiftResult result = mean_shift(points);
  EXPECT_TRUE(result.labels.empty());
  EXPECT_TRUE(result.modes.empty());
}

TEST(MeanShift, SinglePointIsItsOwnCluster) {
  const PointSet points = points_from({{0.5, 0.5}});
  const MeanShiftResult result = mean_shift(points);
  ASSERT_EQ(result.labels.size(), 1u);
  EXPECT_EQ(result.labels[0], 0u);
  ASSERT_EQ(result.cluster_sizes.size(), 1u);
  EXPECT_EQ(result.cluster_sizes[0], 1u);
}

TEST(MeanShift, TwoTightClustersSeparate) {
  MeanShiftConfig config;
  config.bandwidth = 0.15;
  const PointSet points = points_from({{0.0, 0.0},
                                       {0.02, 0.01},
                                       {0.01, 0.03},
                                       {0.9, 0.9},
                                       {0.92, 0.91},
                                       {0.91, 0.88}});
  const MeanShiftResult result = mean_shift(points, config);
  ASSERT_EQ(result.labels.size(), 6u);
  EXPECT_EQ(result.modes.size(), 2u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[0], result.labels[2]);
  EXPECT_EQ(result.labels[3], result.labels[4]);
  EXPECT_EQ(result.labels[3], result.labels[5]);
  EXPECT_NE(result.labels[0], result.labels[3]);
}

TEST(MeanShift, LargeBandwidthMergesEverything) {
  MeanShiftConfig config;
  config.bandwidth = 2.0;
  const PointSet points =
      points_from({{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}, {0.2, 0.8}});
  const MeanShiftResult result = mean_shift(points, config);
  EXPECT_EQ(result.modes.size(), 1u);
  EXPECT_EQ(result.cluster_sizes[0], 4u);
}

TEST(MeanShift, ClustersOrderedBySizeDescending) {
  MeanShiftConfig config;
  config.bandwidth = 0.1;
  const PointSet points = points_from({{0.0, 0.0},
                                       {0.01, 0.0},
                                       {0.0, 0.01},
                                       {0.02, 0.02},
                                       {0.5, 0.5},   // singleton
                                       {0.9, 0.9},
                                       {0.91, 0.9}});
  const MeanShiftResult result = mean_shift(points, config);
  ASSERT_GE(result.cluster_sizes.size(), 3u);
  for (std::size_t i = 1; i < result.cluster_sizes.size(); ++i) {
    EXPECT_LE(result.cluster_sizes[i], result.cluster_sizes[i - 1]);
  }
  EXPECT_EQ(result.cluster_sizes[0], 4u);
}

TEST(MeanShift, ModeNearClusterCenter) {
  MeanShiftConfig config;
  config.bandwidth = 0.2;
  util::Rng rng(3);
  PointSet points(2);
  for (int i = 0; i < 60; ++i) {
    const std::array<double, 2> p{0.5 + rng.normal(0.0, 0.02),
                                  0.5 + rng.normal(0.0, 0.02)};
    points.add(p);
  }
  const MeanShiftResult result = mean_shift(points, config);
  ASSERT_EQ(result.modes.size(), 1u);
  EXPECT_NEAR(result.modes[0][0], 0.5, 0.02);
  EXPECT_NEAR(result.modes[0][1], 0.5, 0.02);
}

TEST(MeanShift, PermutationInvariantPartition) {
  MeanShiftConfig config;
  config.bandwidth = 0.15;
  util::Rng rng(11);
  std::vector<std::array<double, 2>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.normal(0.2, 0.02), rng.normal(0.2, 0.02)});
    rows.push_back({rng.normal(0.8, 0.02), rng.normal(0.8, 0.02)});
  }
  PointSet forward(2);
  for (const auto& row : rows) forward.add(row);
  PointSet backward(2);
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) backward.add(*it);

  const MeanShiftResult a = mean_shift(forward, config);
  const MeanShiftResult b = mean_shift(backward, config);
  ASSERT_EQ(a.modes.size(), b.modes.size());
  // Same partition: labels of reversed input, reversed, must be a relabeling
  // of the forward labels.
  const std::size_t n = rows.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool same_a = a.labels[i] == a.labels[j];
      const bool same_b = b.labels[n - 1 - i] == b.labels[n - 1 - j];
      EXPECT_EQ(same_a, same_b);
    }
  }
}

TEST(MeanShift, GaussianKernelFindsSameTwoClusters) {
  MeanShiftConfig config;
  config.bandwidth = 0.1;
  config.kernel = Kernel::kGaussian;
  const PointSet points = points_from(
      {{0.1, 0.1}, {0.12, 0.11}, {0.11, 0.09}, {0.85, 0.9}, {0.88, 0.89}});
  const MeanShiftResult result = mean_shift(points, config);
  EXPECT_EQ(result.modes.size(), 2u);
  EXPECT_EQ(result.cluster_sizes[0], 3u);
  EXPECT_EQ(result.cluster_sizes[1], 2u);
}

TEST(MeanShift, LabelsConsistentWithSizes) {
  MeanShiftConfig config;
  config.bandwidth = 0.1;
  util::Rng rng(17);
  PointSet points(2);
  for (int i = 0; i < 50; ++i) {
    const std::array<double, 2> p{rng.uniform(), rng.uniform()};
    points.add(p);
  }
  const MeanShiftResult result = mean_shift(points, config);
  std::vector<std::size_t> recount(result.modes.size(), 0);
  for (const std::size_t label : result.labels) {
    ASSERT_LT(label, result.modes.size());
    ++recount[label];
  }
  EXPECT_EQ(recount, result.cluster_sizes);
}

}  // namespace
}  // namespace mosaic::cluster
