#include "sim/corruption.hpp"

#include <gtest/gtest.h>

namespace mosaic::sim {
namespace {

trace::Trace make_valid_trace() {
  trace::Trace t;
  t.meta.job_id = 1;
  t.meta.app_name = "app";
  t.meta.user = "u";
  t.meta.nprocs = 8;
  t.meta.run_time = 500.0;
  trace::FileRecord file;
  file.file_id = 1;
  file.bytes_written = 1 << 24;
  file.writes = 16;
  file.opens = 8;
  file.closes = 8;
  file.open_ts = 10.0;
  file.close_ts = 400.0;
  file.first_write_ts = 12.0;
  file.last_write_ts = 390.0;
  t.files.push_back(file);
  return t;
}

class CorruptionStyleTest
    : public ::testing::TestWithParam<CorruptionStyle> {};

TEST_P(CorruptionStyleTest, EveryStyleFailsValidation) {
  trace::Trace t = make_valid_trace();
  ASSERT_TRUE(trace::validate(t).valid());
  util::Rng rng(3);
  corrupt_trace(t, GetParam(), rng);
  EXPECT_FALSE(trace::validate(t).valid());
}

INSTANTIATE_TEST_SUITE_P(
    AllStyles, CorruptionStyleTest,
    ::testing::Values(CorruptionStyle::kDeallocationPastEnd,
                      CorruptionStyle::kNegativeTimestamp,
                      CorruptionStyle::kInvertedWindow,
                      CorruptionStyle::kNonFinite,
                      CorruptionStyle::kCounterMismatch,
                      CorruptionStyle::kZeroRuntime));

TEST(Corruption, DeallocationMapsToAccessOutsideJob) {
  trace::Trace t = make_valid_trace();
  util::Rng rng(5);
  corrupt_trace(t, CorruptionStyle::kDeallocationPastEnd, rng);
  EXPECT_EQ(trace::validate(t).kind, trace::CorruptionKind::kAccessOutsideJob);
}

TEST(Corruption, FilelessTraceFallsBackToRuntimeCorruption) {
  trace::Trace t;
  t.meta.run_time = 100.0;
  t.meta.nprocs = 2;
  util::Rng rng(7);
  corrupt_trace(t, CorruptionStyle::kInvertedWindow, rng);
  EXPECT_EQ(trace::validate(t).kind,
            trace::CorruptionKind::kNonPositiveRuntime);
}

TEST(Corruption, RandomStyleCoversSeveralKinds) {
  util::Rng rng(11);
  std::set<CorruptionStyle> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(random_corruption_style(rng));
  }
  EXPECT_GE(seen.size(), 5u);
}

}  // namespace
}  // namespace mosaic::sim
