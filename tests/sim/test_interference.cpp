#include "sim/interference.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/generator.hpp"

namespace mosaic::sim {
namespace {

using trace::IoOp;
using trace::OpKind;

JobLoad burst_job(double start, std::uint64_t bytes, std::uint32_t nprocs) {
  JobLoad job;
  job.nprocs = nprocs;
  job.ops.push_back(IoOp{.start = start, .end = start + 1.0, .bytes = bytes,
                         .kind = OpKind::kRead});
  return job;
}

TEST(Interference, EmptyJobsAreNoops) {
  const InterferenceResult result = simulate_pair({}, {});
  EXPECT_DOUBLE_EQ(result.a.solo_io_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.a.slowdown(), 1.0);
  EXPECT_DOUBLE_EQ(result.overlap_seconds, 0.0);
}

TEST(Interference, DisjointJobsDoNotSlowDown) {
  // Job A does I/O at t=0, job B hours later: no contention.
  const JobLoad a = burst_job(0.0, 8ull << 30, 64);
  const JobLoad b = burst_job(50000.0, 8ull << 30, 64);
  const InterferenceResult result = simulate_pair(a, b);
  EXPECT_NEAR(result.a.slowdown(), 1.0, 0.02);
  EXPECT_NEAR(result.b.slowdown(), 1.0, 0.02);
  EXPECT_DOUBLE_EQ(result.overlap_seconds, 0.0);
}

TEST(Interference, SimultaneousBurstsContend) {
  // Two identical jobs starting their ingest at the same instant with a
  // shared allocation of 1.5x one job's bandwidth: each gets 0.75x ->
  // slowdown ~ 1/0.75 = 1.33.
  const JobLoad a = burst_job(0.0, 32ull << 30, 64);
  const JobLoad b = burst_job(0.0, 32ull << 30, 64);
  const InterferenceResult result = simulate_pair(a, b);
  EXPECT_GT(result.overlap_seconds, 0.0);
  EXPECT_NEAR(result.a.slowdown(), 4.0 / 3.0, 0.05);
  EXPECT_NEAR(result.b.slowdown(), 4.0 / 3.0, 0.05);
}

TEST(Interference, CapacityFactorControlsContention) {
  const JobLoad a = burst_job(0.0, 32ull << 30, 64);
  const JobLoad b = burst_job(0.0, 32ull << 30, 64);
  InterferenceConfig roomy;
  roomy.shared_capacity_factor = 2.0;  // full bandwidth for both
  const InterferenceResult uncontended = simulate_pair(a, b, roomy);
  EXPECT_NEAR(uncontended.a.slowdown(), 1.0, 0.02);

  InterferenceConfig tight;
  tight.shared_capacity_factor = 1.0;  // either job saturates it alone
  const InterferenceResult contended = simulate_pair(a, b, tight);
  EXPECT_NEAR(contended.a.slowdown(), 2.0, 0.1);
}

TEST(Interference, AsymmetricJobsShareProportionally) {
  // A large job and a small one, equal nprocs: proportional sharing slows
  // both by the same factor while they overlap; the small one finishes
  // first and the large one speeds back up.
  const JobLoad big = burst_job(0.0, 64ull << 30, 64);
  const JobLoad small = burst_job(0.0, 4ull << 30, 64);
  const InterferenceResult result = simulate_pair(big, small);
  // The small job is fully overlapped -> ~1.33 slowdown; the big one is
  // contended only while the small one runs -> less than 1.33.
  EXPECT_GT(result.b.slowdown(), 1.2);
  EXPECT_LT(result.a.slowdown(), result.b.slowdown());
  EXPECT_GT(result.a.slowdown(), 1.0);
}

TEST(Interference, StaggeredCheckpointsAvoidContention) {
  // Two periodic checkpointers, period 600 s. Aligned: every burst
  // collides. Offset by 300 s: no overlap at all — the paper's
  // checkpoint-interleaving scheduling idea.
  const auto checkpoints = [](double offset) {
    JobLoad job;
    job.nprocs = 128;
    for (int i = 0; i < 10; ++i) {
      job.ops.push_back(IoOp{.start = offset + i * 600.0,
                             .end = offset + i * 600.0 + 5.0,
                             .bytes = 16ull << 30,
                             .kind = OpKind::kWrite});
    }
    return job;
  };
  const InterferenceResult aligned =
      simulate_pair(checkpoints(0.0), checkpoints(0.0));
  const InterferenceResult staggered =
      simulate_pair(checkpoints(0.0), checkpoints(300.0));
  EXPECT_GT(aligned.a.slowdown(), 1.25);
  EXPECT_NEAR(staggered.a.slowdown(), 1.0, 0.02);
  EXPECT_LT(staggered.overlap_seconds, aligned.overlap_seconds);
}

TEST(Interference, MdsOverloadDetected) {
  JobLoad a;
  a.nprocs = 4;
  a.metadata.push_back({10.0, 2000});
  JobLoad b;
  b.nprocs = 4;
  b.metadata.push_back({10.4, 1800});  // same second: 3800 > 3000
  b.metadata.push_back({50.0, 100});   // alone: fine
  const InterferenceResult result = simulate_pair(a, b);
  EXPECT_DOUBLE_EQ(result.mds_overload_seconds, 1.0);
}

TEST(Interference, JobLoadFromTraceMergesBothKinds) {
  AppSpec spec;
  spec.name = "pairtest";
  spec.runtime_median = 3600.0;
  spec.runtime_sigma = 0.0;
  BurstSpec input;
  input.kind = OpKind::kRead;
  input.position_frac = 0.02;
  input.bytes = 4ull << 30;
  spec.bursts.push_back(input);
  PeriodicSpec ckpt;
  ckpt.kind = OpKind::kWrite;
  ckpt.period_seconds = 600.0;
  spec.periodic.push_back(ckpt);

  const TraceGenerator generator;
  util::Rng rng(5);
  const LabeledTrace labeled = generator.generate(spec, {}, {.job_id = 1}, rng);
  const JobLoad load = job_load_from_trace(labeled.trace);
  EXPECT_EQ(load.nprocs, labeled.trace.meta.nprocs);
  EXPECT_GE(load.ops.size(), 6u);  // input + checkpoints
  EXPECT_FALSE(load.metadata.empty());
  for (std::size_t i = 1; i < load.ops.size(); ++i) {
    EXPECT_GE(load.ops[i].start, load.ops[i - 1].start);
  }
}

TEST(Interference, SelfPairIsSymmetric) {
  const JobLoad a = burst_job(0.0, 16ull << 30, 32);
  const InterferenceResult result = simulate_pair(a, a);
  EXPECT_NEAR(result.a.slowdown(), result.b.slowdown(), 1e-9);
  EXPECT_NEAR(result.a.solo_io_seconds, result.b.solo_io_seconds, 1e-9);
}

}  // namespace
}  // namespace mosaic::sim
