#include "sim/generator.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace mosaic::sim {
namespace {

using core::Category;
using core::Temporality;
using trace::OpKind;

constexpr std::uint64_t GiB = 1ull << 30;

AppSpec checkpoint_spec() {
  AppSpec spec;
  spec.name = "ckpt";
  spec.runtime_median = 7200.0;
  spec.runtime_sigma = 0.0;  // deterministic runtime for assertions
  spec.log2_nprocs_min = 6;
  spec.log2_nprocs_max = 6;
  PeriodicSpec periodic;
  periodic.kind = OpKind::kWrite;
  periodic.period_seconds = 600.0;
  periodic.bytes_per_burst = 2 * GiB;
  spec.periodic.push_back(periodic);
  return spec;
}

TEST(Generator, DeterministicForSameSeed) {
  const TraceGenerator generator;
  const AppSpec spec = checkpoint_spec();
  const Intent intent{.write_temporality = Temporality::kSteady};
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const LabeledTrace a = generator.generate(spec, intent, {.job_id = 1}, rng_a);
  const LabeledTrace b = generator.generate(spec, intent, {.job_id = 1}, rng_b);
  ASSERT_EQ(a.trace.files.size(), b.trace.files.size());
  EXPECT_DOUBLE_EQ(a.trace.meta.run_time, b.trace.meta.run_time);
  EXPECT_EQ(a.trace.total_bytes(), b.trace.total_bytes());
  EXPECT_EQ(a.truth.categories, b.truth.categories);
}

TEST(Generator, ProducesValidTraces) {
  const TraceGenerator generator;
  const AppSpec spec = checkpoint_spec();
  util::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const LabeledTrace labeled = generator.generate(
        spec, Intent{.write_temporality = Temporality::kSteady},
        {.job_id = static_cast<std::uint64_t>(i)}, rng);
    const trace::ValidityReport report = trace::validate(labeled.trace);
    EXPECT_TRUE(report.valid()) << report.detail;
  }
}

TEST(Generator, JobShapeRespectsSpec) {
  const TraceGenerator generator;
  AppSpec spec = checkpoint_spec();
  spec.log2_nprocs_min = 5;
  spec.log2_nprocs_max = 8;
  util::Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    const LabeledTrace labeled =
        generator.generate(spec, {}, {.job_id = 1}, rng);
    const std::uint32_t nprocs = labeled.trace.meta.nprocs;
    EXPECT_GE(nprocs, 32u);
    EXPECT_LE(nprocs, 256u);
    // Power of two.
    EXPECT_EQ(nprocs & (nprocs - 1), 0u);
    EXPECT_NEAR(labeled.trace.meta.run_time, 7200.0, 1.0);
  }
}

TEST(Generator, PeriodicSpecYieldsDetectablePattern) {
  const TraceGenerator generator;
  util::Rng rng(31);
  const LabeledTrace labeled = generator.generate(
      checkpoint_spec(), Intent{.write_temporality = Temporality::kSteady},
      {.job_id = 7}, rng);

  // Truth carries the periodic labels.
  EXPECT_TRUE(labeled.truth.categories.contains(Category::kWritePeriodic));
  EXPECT_TRUE(
      labeled.truth.categories.contains(Category::kWritePeriodicMinute));

  // And MOSAIC recovers them from the generated trace.
  const core::Analyzer analyzer;
  const core::TraceResult result = analyzer.analyze(labeled.trace);
  EXPECT_TRUE(result.categories.contains(Category::kWritePeriodic));
  ASSERT_TRUE(result.write.periodicity.periodic);
  EXPECT_NEAR(result.write.periodicity.dominant().period_seconds, 600.0, 30.0);
}

TEST(Generator, BurstIntentRecovered) {
  AppSpec spec;
  spec.name = "rcw";
  spec.runtime_median = 3600.0;
  spec.runtime_sigma = 0.0;
  BurstSpec input;
  input.kind = OpKind::kRead;
  input.position_frac = 0.02;
  input.position_jitter = 0.0;
  input.bytes = 6 * GiB;
  input.file_count = 4;
  spec.bursts.push_back(input);
  BurstSpec output;
  output.kind = OpKind::kWrite;
  output.position_frac = 0.93;
  output.position_jitter = 0.0;
  output.bytes = 2 * GiB;
  spec.bursts.push_back(output);

  const Intent intent{.read_temporality = Temporality::kOnStart,
                      .write_temporality = Temporality::kOnEnd};
  const TraceGenerator generator;
  util::Rng rng(41);
  const LabeledTrace labeled =
      generator.generate(spec, intent, {.job_id = 9}, rng);
  EXPECT_TRUE(labeled.truth.categories.contains(Category::kReadOnStart));
  EXPECT_TRUE(labeled.truth.categories.contains(Category::kWriteOnEnd));

  const core::Analyzer analyzer;
  const core::TraceResult result = analyzer.analyze(labeled.trace);
  EXPECT_TRUE(result.categories.contains(Category::kReadOnStart));
  EXPECT_TRUE(result.categories.contains(Category::kWriteOnEnd));
}

TEST(Generator, SteadySpecHidesStructure) {
  AppSpec spec;
  spec.name = "stream";
  spec.runtime_median = 3600.0;
  spec.runtime_sigma = 0.0;
  SteadySpec stream;
  stream.kind = OpKind::kWrite;
  stream.bytes = 10 * GiB;
  spec.steady.push_back(stream);

  const TraceGenerator generator;
  util::Rng rng(43);
  const LabeledTrace labeled = generator.generate(
      spec, Intent{.write_temporality = Temporality::kSteady}, {.job_id = 2},
      rng);
  // One aggregated record spanning the run; no periodicity visible or claimed.
  EXPECT_FALSE(labeled.truth.categories.contains(Category::kWritePeriodic));
  const core::Analyzer analyzer;
  const core::TraceResult result = analyzer.analyze(labeled.trace);
  EXPECT_TRUE(result.categories.contains(Category::kWriteSteady));
  EXPECT_FALSE(result.categories.contains(Category::kWritePeriodic));
}

TEST(Generator, VolumeBelowThresholdDemotesToInsignificant) {
  AppSpec spec;
  spec.name = "small";
  spec.runtime_median = 600.0;
  spec.runtime_sigma = 0.0;
  spec.volume_sigma = 0.0;
  BurstSpec tiny;
  tiny.kind = OpKind::kRead;
  tiny.position_frac = 0.0;
  tiny.bytes = 10 << 20;  // 10 MiB, far below 100 MB
  spec.bursts.push_back(tiny);

  const TraceGenerator generator;
  util::Rng rng(47);
  const LabeledTrace labeled = generator.generate(
      spec, Intent{.read_temporality = Temporality::kOnStart}, {.job_id = 3},
      rng);
  // Intent said on_start, but realized volume forces insignificant.
  EXPECT_TRUE(
      labeled.truth.categories.contains(Category::kReadInsignificant));
  EXPECT_FALSE(labeled.truth.categories.contains(Category::kReadOnStart));
}

TEST(Generator, MetaStormTruthMatchesDefinitionalRules) {
  AppSpec spec;
  spec.name = "storm";
  spec.runtime_median = 900.0;
  spec.runtime_sigma = 0.0;
  spec.ambient_opens = 0;
  MetaStormSpec storm;
  storm.start_frac = 0.05;
  storm.spike_count = 10;
  storm.requests_per_spike = 400;
  storm.spacing_seconds = 30.0;
  spec.storms.push_back(storm);

  const TraceGenerator generator;
  util::Rng rng(53);
  const LabeledTrace labeled = generator.generate(spec, {}, {.job_id = 4}, rng);
  EXPECT_TRUE(labeled.truth.categories.contains(Category::kMetadataHighSpike));
  EXPECT_TRUE(
      labeled.truth.categories.contains(Category::kMetadataMultipleSpikes));

  const core::Analyzer analyzer;
  const core::TraceResult result = analyzer.analyze(labeled.trace);
  EXPECT_TRUE(result.categories.contains(Category::kMetadataHighSpike));
  EXPECT_TRUE(result.categories.contains(Category::kMetadataMultipleSpikes));
}

TEST(Generator, QuietAppIsInsignificantEverywhere) {
  AppSpec spec;
  spec.name = "quiet";
  spec.runtime_median = 1800.0;
  spec.log2_nprocs_min = 5;
  spec.log2_nprocs_max = 5;
  spec.ambient_opens = 2;

  const TraceGenerator generator;
  util::Rng rng(59);
  const LabeledTrace labeled = generator.generate(spec, {}, {.job_id = 5}, rng);
  EXPECT_TRUE(
      labeled.truth.categories.contains(Category::kReadInsignificant));
  EXPECT_TRUE(
      labeled.truth.categories.contains(Category::kWriteInsignificant));
  EXPECT_TRUE(
      labeled.truth.categories.contains(Category::kMetadataInsignificantLoad));

  const core::Analyzer analyzer;
  const core::TraceResult result = analyzer.analyze(labeled.trace);
  EXPECT_EQ(result.categories, labeled.truth.categories);
}

TEST(Generator, BoundaryBurstMarkedAmbiguous) {
  AppSpec spec;
  spec.name = "edge";
  spec.runtime_median = 1000.0;
  spec.runtime_sigma = 0.0;
  BurstSpec burst;
  burst.kind = OpKind::kRead;
  burst.position_frac = 0.25;  // straddles the first chunk boundary
  burst.position_jitter = 0.0;
  burst.bytes = GiB;
  spec.bursts.push_back(burst);

  const TraceGenerator generator;
  util::Rng rng(61);
  const LabeledTrace labeled = generator.generate(
      spec, Intent{.read_temporality = Temporality::kOnStart}, {.job_id = 6},
      rng);
  EXPECT_TRUE(labeled.truth.ambiguous);
}

TEST(Generator, ThreeOccurrenceMinimumForPeriodicTruth) {
  AppSpec spec = checkpoint_spec();
  // Burst window is (0.98 - 0.05) * runtime = 1116 s: exactly two bursts of
  // period 600 s fit, below the three-occurrence detectability floor.
  spec.runtime_median = 1200.0;
  const TraceGenerator generator;
  util::Rng rng(67);
  const LabeledTrace labeled = generator.generate(
      spec, Intent{.write_temporality = Temporality::kSteady}, {.job_id = 8},
      rng);
  EXPECT_FALSE(labeled.truth.categories.contains(Category::kWritePeriodic));
}

}  // namespace
}  // namespace mosaic::sim
