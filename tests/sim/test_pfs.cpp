#include "sim/pfs.hpp"

#include <gtest/gtest.h>

namespace mosaic::sim {
namespace {

TEST(PfsModel, BandwidthScalesWithStripes) {
  const PfsModel pfs;
  const double narrow = pfs.effective_bandwidth(1, 1);
  const double wide = pfs.effective_bandwidth(1, 8);
  EXPECT_GT(wide, narrow);
  EXPECT_NEAR(wide / narrow, 8.0, 0.01);  // one rank: no contention change
}

TEST(PfsModel, ContentionDegradesPerRankBandwidth) {
  const PfsModel pfs;
  const double few = pfs.effective_bandwidth(4, 4);
  const double many = pfs.effective_bandwidth(1024, 4);
  EXPECT_GT(few, many);
}

TEST(PfsModel, StripesCappedAtOstCount) {
  PfsConfig config;
  config.ost_count = 8;
  const PfsModel pfs(config);
  EXPECT_DOUBLE_EQ(pfs.effective_bandwidth(1, 8),
                   pfs.effective_bandwidth(1, 100));
}

TEST(PfsModel, ZeroStripesMeansDefault) {
  const PfsModel pfs;
  EXPECT_DOUBLE_EQ(
      pfs.effective_bandwidth(16, 0),
      pfs.effective_bandwidth(16, pfs.config().default_stripe_count));
}

TEST(PfsModel, TransferTimeIncludesLatencyFloor) {
  const PfsModel pfs;
  EXPECT_GE(pfs.transfer_seconds(0, 1), pfs.config().op_latency);
}

TEST(PfsModel, TransferTimeMonotoneInBytes) {
  const PfsModel pfs;
  double previous = 0.0;
  for (std::uint64_t bytes = 1 << 20; bytes <= 1ull << 40; bytes <<= 4) {
    const double seconds = pfs.transfer_seconds(bytes, 64);
    EXPECT_GT(seconds, previous);
    previous = seconds;
  }
}

TEST(PfsModel, RealisticCheckpointDuration) {
  // A 1 GiB shared checkpoint over default striping should land in the
  // 0.1 s .. 60 s range on a Blue Waters-like system — sanity, not precision.
  const PfsModel pfs;
  const double seconds = pfs.transfer_seconds(1ull << 30, 512);
  EXPECT_GT(seconds, 0.1);
  EXPECT_LT(seconds, 60.0);
}

TEST(PfsModel, MetadataSecondsFollowRate) {
  const PfsModel pfs;
  EXPECT_NEAR(pfs.metadata_seconds(3000), 1.0, 1e-9);
  EXPECT_NEAR(pfs.metadata_seconds(1500), 0.5, 1e-9);
}

}  // namespace
}  // namespace mosaic::sim
