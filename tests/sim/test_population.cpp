#include "sim/population.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/corruption.hpp"

namespace mosaic::sim {
namespace {

PopulationConfig small_config() {
  PopulationConfig config;
  config.target_traces = 2000;
  config.seed = 99;
  return config;
}

TEST(BlueWatersProfile, FractionsSumToOne) {
  const auto profile = blue_waters_profile();
  ASSERT_FALSE(profile.empty());
  double total = 0.0;
  for (const Archetype& archetype : profile) {
    EXPECT_GT(archetype.app_fraction, 0.0);
    EXPECT_GE(archetype.mean_runs, 1.0);
    total += archetype.app_fraction;
  }
  EXPECT_NEAR(total, 100.0, 0.5);
}

TEST(BlueWatersProfile, QuietArchetypeDominatesApps) {
  const auto profile = blue_waters_profile();
  double max_fraction = 0.0;
  std::string heaviest;
  for (const Archetype& archetype : profile) {
    if (archetype.app_fraction > max_fraction) {
      max_fraction = archetype.app_fraction;
      heaviest = archetype.spec.name;
    }
  }
  EXPECT_EQ(heaviest, "quiet");
  EXPECT_GT(max_fraction, 70.0);
}

TEST(GeneratePopulation, MeetsTargetCount) {
  const Population population = generate_population(small_config());
  EXPECT_EQ(population.traces.size(), 2000u);
  EXPECT_GT(population.app_count, 0u);
  EXPECT_LT(population.app_count, population.traces.size());
}

TEST(GeneratePopulation, Deterministic) {
  const Population a = generate_population(small_config());
  const Population b = generate_population(small_config());
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i].trace.meta.job_id, b.traces[i].trace.meta.job_id);
    EXPECT_EQ(a.traces[i].trace.total_bytes(), b.traces[i].trace.total_bytes());
    EXPECT_EQ(a.traces[i].corrupted, b.traces[i].corrupted);
    EXPECT_EQ(a.traces[i].truth.categories, b.traces[i].truth.categories);
  }
}

TEST(GeneratePopulation, ParallelMatchesSerial) {
  const Population serial = generate_population(small_config());
  parallel::ThreadPool pool(4);
  const Population threaded = generate_population(small_config(), &pool);
  ASSERT_EQ(serial.traces.size(), threaded.traces.size());
  for (std::size_t i = 0; i < serial.traces.size(); ++i) {
    EXPECT_EQ(serial.traces[i].trace.meta.job_id,
              threaded.traces[i].trace.meta.job_id);
    EXPECT_EQ(serial.traces[i].trace.total_bytes(),
              threaded.traces[i].trace.total_bytes());
  }
}

TEST(GeneratePopulation, CorruptionFractionApproximatelyMet) {
  PopulationConfig config = small_config();
  config.target_traces = 5000;
  const Population population = generate_population(config);
  std::size_t corrupted = 0;
  for (const LabeledTrace& labeled : population.traces) {
    if (labeled.corrupted) {
      ++corrupted;
      EXPECT_FALSE(trace::validate(labeled.trace).valid());
    }
  }
  const double fraction =
      static_cast<double>(corrupted) / static_cast<double>(5000);
  EXPECT_NEAR(fraction, 0.32, 0.03);
}

TEST(GeneratePopulation, UncorruptedTracesAreValid) {
  const Population population = generate_population(small_config());
  for (const LabeledTrace& labeled : population.traces) {
    if (!labeled.corrupted) {
      const auto report = trace::validate(labeled.trace);
      EXPECT_TRUE(report.valid())
          << labeled.archetype << ": " << report.detail;
    }
  }
}

TEST(GeneratePopulation, DistinctAppsHaveDistinctIdentities) {
  const Population population = generate_population(small_config());
  std::set<std::string> keys;
  for (const LabeledTrace& labeled : population.traces) {
    keys.insert(labeled.trace.app_key());
  }
  EXPECT_EQ(keys.size(), population.app_count);
}

TEST(GeneratePopulation, RunsOfSameAppShareArchetype) {
  const Population population = generate_population(small_config());
  std::map<std::string, std::string> archetype_of;
  for (const LabeledTrace& labeled : population.traces) {
    const auto [it, inserted] =
        archetype_of.emplace(labeled.trace.app_key(), labeled.archetype);
    if (!inserted) {
      EXPECT_EQ(it->second, labeled.archetype);
    }
  }
}

TEST(GeneratePopulation, ZeroCorruptionConfig) {
  PopulationConfig config = small_config();
  config.corruption_fraction = 0.0;
  const Population population = generate_population(config);
  for (const LabeledTrace& labeled : population.traces) {
    EXPECT_FALSE(labeled.corrupted);
  }
}

TEST(ToTraces, StripsLabels) {
  const Population population = generate_population(small_config());
  const std::size_t count = population.traces.size();
  const std::uint64_t first_id = population.traces.front().trace.meta.job_id;
  const auto traces = to_traces(std::move(population));
  EXPECT_EQ(traces.size(), count);
  EXPECT_EQ(traces.front().meta.job_id, first_id);
}

TEST(GeneratePopulation, CustomArchetypeMixRespected) {
  PopulationConfig config = small_config();
  Archetype only;
  only.spec.name = "solo";
  only.spec.runtime_median = 600.0;
  only.app_fraction = 100.0;
  only.mean_runs = 5.0;
  config.archetypes.push_back(only);
  config.corruption_fraction = 0.0;
  const Population population = generate_population(config);
  for (const LabeledTrace& labeled : population.traces) {
    EXPECT_EQ(labeled.archetype, "solo");
  }
}

}  // namespace
}  // namespace mosaic::sim
