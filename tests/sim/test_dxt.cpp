// Tests for DXT-level event emission (the aggregation-ablation substrate).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/generator.hpp"
#include "sim/population.hpp"

namespace mosaic::sim {
namespace {

using trace::OpKind;

AppSpec hidden_periodic_spec() {
  AppSpec spec;
  spec.name = "hidden";
  spec.runtime_median = 7200.0;
  spec.runtime_sigma = 0.0;
  SteadySpec stream;
  stream.kind = OpKind::kWrite;
  stream.bytes = 24ull << 30;
  stream.inner_period = 600.0;  // the aggregation-hidden truth
  spec.steady.push_back(stream);
  return spec;
}

TEST(DxtEmission, OffByDefault) {
  const TraceGenerator generator;  // emit_dxt defaults to false
  util::Rng rng(3);
  const LabeledTrace labeled =
      generator.generate(hidden_periodic_spec(), {}, {.job_id = 1}, rng);
  EXPECT_TRUE(labeled.dxt_ops.empty());
}

TEST(DxtEmission, InnerPeriodProducesAppendTrain) {
  const TraceGenerator generator(PfsModel{}, core::Thresholds{}, true);
  util::Rng rng(3);
  const LabeledTrace labeled =
      generator.generate(hidden_periodic_spec(), {}, {.job_id = 1}, rng);
  // ~ (0.96 * 7200) / 600 = 11 appends.
  EXPECT_GE(labeled.dxt_ops.size(), 9u);
  EXPECT_LE(labeled.dxt_ops.size(), 13u);
  // Byte conservation: the DXT events hold (close to) the record's bytes.
  std::uint64_t dxt_bytes = 0;
  for (const trace::IoOp& op : labeled.dxt_ops) {
    EXPECT_EQ(op.kind, OpKind::kWrite);
    dxt_bytes += op.bytes;
  }
  const std::uint64_t record_bytes = labeled.trace.total_bytes_written();
  EXPECT_NEAR(static_cast<double>(dxt_bytes),
              static_cast<double>(record_bytes),
              0.01 * static_cast<double>(record_bytes));
}

TEST(DxtEmission, AggregatedViewHidesWhatDxtReveals) {
  const TraceGenerator generator(PfsModel{}, core::Thresholds{}, true);
  util::Rng rng(7);
  const LabeledTrace labeled =
      generator.generate(hidden_periodic_spec(), {}, {.job_id = 2}, rng);

  const core::Analyzer analyzer;
  // Aggregated records: one long window -> steady, not periodic.
  const core::TraceResult aggregated = analyzer.analyze(labeled.trace);
  EXPECT_FALSE(aggregated.write.periodicity.periodic);

  // DXT events: the period is visible.
  std::vector<trace::IoOp> write_ops;
  for (const trace::IoOp& op : labeled.dxt_ops) {
    if (op.kind == OpKind::kWrite) write_ops.push_back(op);
  }
  const core::KindAnalysis dxt =
      analyzer.analyze_ops(std::move(write_ops), labeled.trace.meta.run_time);
  ASSERT_TRUE(dxt.periodicity.periodic);
  EXPECT_NEAR(dxt.periodicity.dominant().period_seconds, 600.0, 30.0);
}

TEST(DxtEmission, PlainSteadyStaysSingleEvent) {
  AppSpec spec = hidden_periodic_spec();
  spec.steady.front().inner_period = 0.0;  // genuinely continuous
  const TraceGenerator generator(PfsModel{}, core::Thresholds{}, true);
  util::Rng rng(9);
  const LabeledTrace labeled = generator.generate(spec, {}, {.job_id = 3}, rng);
  ASSERT_EQ(labeled.dxt_ops.size(), 1u);
  EXPECT_GT(labeled.dxt_ops.front().duration(), 6000.0);
}

TEST(DxtEmission, BurstsAndPeriodicEmitPerFileEvents) {
  AppSpec spec;
  spec.name = "mix";
  spec.runtime_median = 3600.0;
  spec.runtime_sigma = 0.0;
  BurstSpec input;
  input.kind = OpKind::kRead;
  input.bytes = 4ull << 30;
  input.file_count = 3;
  spec.bursts.push_back(input);
  PeriodicSpec ckpt;
  ckpt.kind = OpKind::kWrite;
  ckpt.period_seconds = 600.0;
  ckpt.files_per_burst = 2;
  spec.periodic.push_back(ckpt);

  const TraceGenerator generator(PfsModel{}, core::Thresholds{}, true);
  util::Rng rng(11);
  const LabeledTrace labeled = generator.generate(spec, {}, {.job_id = 4}, rng);
  std::size_t reads = 0;
  std::size_t writes = 0;
  for (const trace::IoOp& op : labeled.dxt_ops) {
    (op.kind == OpKind::kRead ? reads : writes) += 1;
  }
  EXPECT_EQ(reads, 3u);          // one per input file
  EXPECT_GE(writes, 2u * 4u);    // >= 4 bursts of 2 files
}

TEST(DxtEmission, PopulationFlagPropagates) {
  PopulationConfig config;
  config.target_traces = 300;
  config.seed = 5;
  config.emit_dxt = true;
  const Population with_dxt = generate_population(config);
  bool any = false;
  for (const LabeledTrace& labeled : with_dxt.traces) {
    if (!labeled.dxt_ops.empty()) any = true;
  }
  EXPECT_TRUE(any);

  config.emit_dxt = false;
  const Population without = generate_population(config);
  for (const LabeledTrace& labeled : without.traces) {
    EXPECT_TRUE(labeled.dxt_ops.empty());
  }
}

}  // namespace
}  // namespace mosaic::sim
