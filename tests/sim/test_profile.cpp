// Assertions about the calibrated Blue Waters profile itself: the archetype
// mixture must keep producing the structural features the paper's tables
// rely on (these are the contract between the calibration and the benches).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/pipeline.hpp"
#include "report/aggregate.hpp"
#include "sim/population.hpp"

namespace mosaic::sim {
namespace {

using core::Category;

class ProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PopulationConfig config;
    config.target_traces = 12000;
    config.seed = 424242;  // not the bench seed: the contract must hold
                           // regardless of the particular realization
    population_ = new Population(generate_population(config));
    batch_ = new core::BatchResult(
        core::analyze_population(to_traces(*population_)));
  }
  static void TearDownTestSuite() {
    delete population_;
    delete batch_;
    population_ = nullptr;
    batch_ = nullptr;
  }
  static Population* population_;
  static core::BatchResult* batch_;
};

Population* ProfileTest::population_ = nullptr;
core::BatchResult* ProfileTest::batch_ = nullptr;

TEST_F(ProfileTest, EveryArchetypeRealized) {
  std::set<std::string> seen;
  for (const LabeledTrace& labeled : population_->traces) {
    seen.insert(labeled.archetype);
  }
  for (const Archetype& archetype : blue_waters_profile()) {
    EXPECT_TRUE(seen.contains(archetype.spec.name))
        << "archetype never drawn: " << archetype.spec.name;
  }
}

TEST_F(ProfileTest, StratificationTracksFractions) {
  std::map<std::string, std::size_t> apps_per_archetype;
  std::set<std::string> counted;
  for (const LabeledTrace& labeled : population_->traces) {
    if (counted.insert(labeled.trace.app_key()).second) {
      ++apps_per_archetype[labeled.archetype];
    }
  }
  const double total = static_cast<double>(counted.size());
  for (const Archetype& archetype : blue_waters_profile()) {
    const double expected = archetype.app_fraction / 100.0;
    const double actual =
        static_cast<double>(apps_per_archetype[archetype.spec.name]) / total;
    // Largest-deficit allocation keeps shares within a percent-ish of spec.
    EXPECT_NEAR(actual, expected, 0.02 + 0.1 * expected)
        << archetype.spec.name;
  }
}

TEST_F(ProfileTest, QuietAppsAreTrulyQuiet) {
  for (const LabeledTrace& labeled : population_->traces) {
    if (labeled.archetype != "quiet" || labeled.corrupted) continue;
    EXPECT_TRUE(labeled.truth.categories.contains(Category::kReadInsignificant));
    EXPECT_TRUE(
        labeled.truth.categories.contains(Category::kWriteInsignificant));
  }
}

TEST_F(ProfileTest, CheckpointersCarryPeriodicTruth) {
  std::size_t ckpt_apps = 0;
  std::size_t periodic_truth = 0;
  for (const LabeledTrace& labeled : population_->traces) {
    if (labeled.corrupted) continue;
    if (labeled.archetype != "ckpt_minute" && labeled.archetype != "ckpt_cycle")
      continue;
    ++ckpt_apps;
    if (labeled.truth.categories.contains(Category::kWritePeriodic)) {
      ++periodic_truth;
    }
  }
  ASSERT_GT(ckpt_apps, 0u);
  // The occasional short run fits < 3 bursts; the vast majority are periodic.
  EXPECT_GT(static_cast<double>(periodic_truth) /
                static_cast<double>(ckpt_apps),
            0.8);
}

TEST_F(ProfileTest, DensityAnchoredToIngestArchetypes) {
  for (const core::TraceResult& result : batch_->results) {
    if (!result.categories.contains(Category::kMetadataHighDensity)) continue;
    // Dense-metadata applications read on start (the §IV-D correlation).
    EXPECT_TRUE(result.categories.contains(Category::kReadOnStart) ||
                result.categories.contains(Category::kReadInsignificant))
        << result.app_key;
  }
}

TEST_F(ProfileTest, MarginalShapesHoldOnUnseenSeed) {
  const mosaic::report::CategoryDistribution distribution =
      mosaic::report::aggregate_categories(*batch_);
  // The claims the calibration must preserve on ANY seed (loose bands):
  // insignificant dominates the single-run view...
  EXPECT_GT(distribution.single_fraction(Category::kReadInsignificant), 0.7);
  EXPECT_GT(distribution.single_fraction(Category::kWriteInsignificant), 0.7);
  // ...reads concentrate at start, writes at end among active single-run...
  EXPECT_GT(distribution.single_fraction(Category::kReadOnStart),
            distribution.single_fraction(Category::kReadOnEnd));
  EXPECT_GT(distribution.single_fraction(Category::kWriteOnEnd),
            distribution.single_fraction(Category::kWriteOnStart));
  // ...and the all-runs view shifts sharply toward the active categories.
  EXPECT_LT(distribution.weighted_fraction(Category::kReadInsignificant),
            distribution.single_fraction(Category::kReadInsignificant) - 0.2);
  EXPECT_GT(distribution.weighted_fraction(Category::kWriteSteady),
            distribution.single_fraction(Category::kWriteSteady) * 3.0);
}

}  // namespace
}  // namespace mosaic::sim
