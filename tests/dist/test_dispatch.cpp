// End-to-end tests of the fault-tolerant distributed execution path
// (dist/dispatch.hpp + dist/worker.hpp) over real loopback sockets:
// in-process workers on ephemeral ports serve a dispatch manager, faults
// are injected deterministically, and the merged output must stay
// byte-identical to the single-shot run — the PR-5 golden guarantee
// extended across process/network boundaries.
#include "dist/dispatch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "darshan/binary_format.hpp"
#include "dist/worker.hpp"
#include "ingest/ingest.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "report/json_output.hpp"
#include "report/partial.hpp"
#include "sim/population.hpp"

namespace mosaic::dist {
namespace {

namespace fs = std::filesystem;

/// One in-process worker serving on an ephemeral loopback port.
struct TestWorker {
  std::unique_ptr<Worker> worker;
  std::thread thread;
  Address address;

  explicit TestWorker(WorkerOptions options) {
    options.listen = Address{"127.0.0.1", 0};
    options.heartbeat_interval_seconds = 0.2;
    worker = std::make_unique<Worker>(std::move(options));
    EXPECT_TRUE(worker->bind().ok());
    address = Address{"127.0.0.1", worker->port()};
    thread = std::thread([this] { EXPECT_TRUE(worker->serve().ok()); });
  }

  ~TestWorker() { join(); }

  void join() {
    if (!thread.joinable()) return;
    worker->stop();
    thread.join();
  }
};

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("mosaic_dispatch_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    seed_population(40, 11);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void seed_population(std::size_t traces, std::uint64_t seed) {
    sim::PopulationConfig config;
    config.target_traces = traces;
    config.seed = seed;
    const sim::Population population = sim::generate_population(config);
    for (const auto& entry : population.traces) {
      const std::string file =
          path("job_" + std::to_string(entry.trace.meta.job_id) + ".mbt");
      ASSERT_TRUE(darshan::write_mbt_file(entry.trace, file).ok());
      corpus_.push_back(file);
    }
  }

  /// The single-shot reference JSON every distributed run must reproduce.
  std::string single_shot_json() {
    parallel::ThreadPool pool(2);
    ingest::IngestOptions options;
    auto ingested = ingest::ingest_paths(corpus_, options, pool);
    EXPECT_TRUE(ingested.has_value());
    const core::BatchResult batch =
        core::analyze_preprocessed(std::move(ingested->pre), {}, &pool);
    return json::serialize(
        report::batch_to_json(batch, /*include_traces=*/true));
  }

  /// Merges a dispatch result's partials and serializes like the single
  /// shot (through the same on-disk artifacts the CLI would read).
  std::string merged_json(const DispatchResult& result) {
    std::vector<report::PartialArtifact> partials;
    for (const std::string& artifact : result.partial_paths) {
      auto partial = report::read_partial(artifact);
      EXPECT_TRUE(partial.has_value()) << partial.error().to_string();
      partials.push_back(std::move(*partial));
    }
    auto merged = report::merge_partials(std::move(partials));
    EXPECT_TRUE(merged.has_value()) << merged.error().to_string();
    return json::serialize(
        report::batch_to_json(merged->batch, /*include_traces=*/true));
  }

  DispatchOptions base_options(const std::vector<const TestWorker*>& workers,
                               std::size_t shards,
                               const std::string& out_sub = "parts") {
    DispatchOptions options;
    for (const TestWorker* worker : workers) {
      options.workers.push_back(worker->address);
    }
    options.shard_count = shards;
    options.paths = corpus_;
    options.out_dir = path(out_sub);
    options.degraded_threads = 2;
    options.connect_timeout_seconds = 5.0;
    options.heartbeat_grace_seconds = 5.0;
    // Tight retry schedule so failure-path tests stay fast.
    options.retry_initial_delay_ms = 5.0;
    options.retry_max_delay_ms = 50.0;
    return options;
  }

  fs::path dir_;
  std::vector<std::string> corpus_;
};

TEST_F(DispatchTest, TwoWorkersFourShardsMatchSingleShot) {
  TestWorker w1{WorkerOptions{}};
  TestWorker w2{WorkerOptions{}};
  auto result = run_dispatch(base_options({&w1, &w2}, 4));
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  ASSERT_TRUE(result->complete());
  EXPECT_EQ(result->stats.tasks_done, 4U);
  EXPECT_EQ(result->stats.quarantined, 0U);
  EXPECT_EQ(merged_json(*result), single_shot_json());
}

TEST_F(DispatchTest, WorkerKilledMidRunIsReassignedByteIdentically) {
  WorkerOptions faulty;
  faulty.fault = NetFaultSpec{};
  faulty.fault->kill_after_tasks = 1;  // dies for good after one task
  TestWorker w1{std::move(faulty)};
  TestWorker w2{WorkerOptions{}};

  auto options = base_options({&w1, &w2}, 4);
  options.reconnect_attempts = 1;
  options.connect_timeout_seconds = 0.5;
  auto result = run_dispatch(options);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  ASSERT_TRUE(result->complete());
  EXPECT_EQ(result->stats.workers_lost, 1U);
  EXPECT_EQ(merged_json(*result), single_shot_json());
}

TEST_F(DispatchTest, AllWorkersLostDegradesInProcessByteIdentically) {
  WorkerOptions faulty;
  faulty.fault = NetFaultSpec{};
  faulty.fault->kill_after_tasks = 1;
  TestWorker w1{std::move(faulty)};

  auto options = base_options({&w1}, 3);
  options.reconnect_attempts = 1;
  options.connect_timeout_seconds = 0.5;
  auto result = run_dispatch(options);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  ASSERT_TRUE(result->complete());
  EXPECT_EQ(result->stats.workers_lost, 1U);
  EXPECT_GE(result->stats.degraded_tasks, 1U);
  EXPECT_EQ(merged_json(*result), single_shot_json());
}

TEST_F(DispatchTest, CorruptPartialFramesHealOnReRequest) {
  WorkerOptions faulty;
  faulty.fault = NetFaultSpec{};
  faulty.fault->corrupt_probability = 1.0;  // every shard's first reply
  faulty.fault->corrupt_failures = 1;       // ...then heals, like EIO
  TestWorker w1{std::move(faulty)};

  auto result = run_dispatch(base_options({&w1}, 2));
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  ASSERT_TRUE(result->complete());
  EXPECT_GE(result->stats.retries, 2U);  // one re-request per shard
  EXPECT_EQ(result->stats.quarantined, 0U);
  EXPECT_EQ(merged_json(*result), single_shot_json());
}

TEST_F(DispatchTest, PoisonedTaskIsQuarantinedNotRetriedForever) {
  WorkerOptions faulty;
  faulty.fault = NetFaultSpec{};
  faulty.fault->close_probability = 1.0;  // drops every task, every attempt
  TestWorker w1{std::move(faulty)};

  auto options = base_options({&w1}, 2);
  options.max_task_attempts = 2;
  options.allow_degraded = false;  // isolate the quarantine path
  auto result = run_dispatch(options);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  EXPECT_FALSE(result->complete());
  EXPECT_EQ(result->stats.quarantined, 2U);
  for (const TaskOutcome& outcome : result->outcomes) {
    EXPECT_EQ(outcome.status, "quarantined");
    EXPECT_GE(outcome.attempts, 2U);
    EXPECT_FALSE(outcome.error.empty());
  }
}

TEST_F(DispatchTest, KilledManagerResumesFromJournalByteIdentically) {
  TestWorker w1{WorkerOptions{}};

  // First run "crashes" (abort seam) after one journaled partial.
  auto options = base_options({&w1}, 3);
  options.journal_path = path("dispatch.jsonl");
  options.abort_after_partials = 1;
  auto first = run_dispatch(options);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  EXPECT_TRUE(first->aborted);
  EXPECT_FALSE(first->complete());
  EXPECT_GE(first->stats.tasks_done, 1U);

  // The resumed run replays the journal and only schedules the remainder —
  // and the merge is still byte-identical to the uninterrupted run.
  options.abort_after_partials = 0;
  options.resume = true;
  auto second = run_dispatch(options);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  ASSERT_TRUE(second->complete());
  EXPECT_GE(second->stats.resumed_tasks, 1U);
  EXPECT_LE(second->stats.tasks_done, 2U);
  EXPECT_EQ(merged_json(*second), single_shot_json());
}

TEST_F(DispatchTest, NoWorkersReachableStillCompletesDegraded) {
  // Nothing listens on this port (connect_to a just-closed ephemeral bind).
  Listener probe;
  ASSERT_TRUE(probe.listen_on(Address{"127.0.0.1", 0}).ok());
  const std::uint16_t dead_port = probe.port();
  probe.close();

  DispatchOptions options;
  options.workers = {Address{"127.0.0.1", dead_port}};
  options.shard_count = 2;
  options.paths = corpus_;
  options.out_dir = path("parts");
  options.degraded_threads = 2;
  options.connect_timeout_seconds = 0.25;
  options.reconnect_attempts = 0;
  options.retry_initial_delay_ms = 5.0;
  auto result = run_dispatch(options);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  ASSERT_TRUE(result->complete());
  EXPECT_EQ(result->stats.workers_lost, 1U);
  EXPECT_EQ(result->stats.degraded_tasks, 2U);
  EXPECT_EQ(merged_json(*result), single_shot_json());
}

}  // namespace
}  // namespace mosaic::dist
