// Wire-level tests of the dispatch protocol (dist/protocol.hpp) over real
// loopback sockets: framing round-trips, the error taxonomy the task
// lifecycle classifies on (truncated frame -> kIoError, corrupt frame ->
// kParseError with the stream still framed, silence -> kTimeout), address
// validation, deterministic network fault specs, and the dispatch journal.
#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/faults.hpp"
#include "dist/journal.hpp"
#include "dist/net.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace mosaic::dist {
namespace {

using util::ErrorCode;

/// A listener + connected socket pair on an ephemeral loopback port.
struct Loopback {
  Listener listener;
  Connection server;
  Connection client;

  Loopback() {
    EXPECT_TRUE(listener.listen_on(Address{"127.0.0.1", 0}).ok());
    auto connected =
        connect_to(Address{"127.0.0.1", listener.port()}, 5.0);
    EXPECT_TRUE(connected.has_value());
    client = std::move(*connected);
    auto accepted = listener.accept_connection(5.0);
    EXPECT_TRUE(accepted.has_value());
    server = std::move(*accepted);
  }
};

TEST(Protocol, FramesRoundTrip) {
  Loopback loop;
  const std::string payload = "{\"hello\":\"world\"}";
  ASSERT_TRUE(write_frame(loop.client, FrameType::kTask, payload).ok());
  ASSERT_TRUE(write_frame(loop.client, FrameType::kHeartbeat, "").ok());

  auto first = read_frame(loop.server, 5.0);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  EXPECT_EQ(first->type, FrameType::kTask);
  EXPECT_EQ(first->payload, payload);

  auto second = read_frame(loop.server, 5.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, FrameType::kHeartbeat);
  EXPECT_TRUE(second->payload.empty());
}

TEST(Protocol, SilentPeerIsTimeout) {
  Loopback loop;
  auto frame = read_frame(loop.server, 0.1);
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.error().code, ErrorCode::kTimeout);
}

// Regression for the partial-receipt hardening: a peer that dies mid-send
// leaves a truncated frame, which must classify as kIoError (worker death,
// reassign) — never hang and never be mistaken for wire corruption.
TEST(Protocol, TruncatedFrameIsIoError) {
  Loopback loop;
  // Hand-build a header (layout documented in protocol.hpp) advertising a
  // 64-byte payload, send only 10 bytes, then close.
  unsigned char header[20] = {0};
  const std::uint32_t magic = kProtocolMagic;
  std::memcpy(header, &magic, 4);
  header[4] = kProtocolVersion;
  header[5] = static_cast<unsigned char>(FrameType::kPartial);
  const std::uint32_t len = 64;
  std::memcpy(header + 8, &len, 4);
  ASSERT_TRUE(loop.client.send_all(header, sizeof(header)).ok());
  ASSERT_TRUE(loop.client.send_all("0123456789", 10).ok());
  loop.client.close();

  auto frame = read_frame(loop.server, 5.0);
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.error().code, ErrorCode::kIoError);
}

// A checksum-mismatched frame is kParseError AND leaves the stream framed:
// the very next frame must read cleanly. This is what makes wire corruption
// retryable (re-request) instead of connection-fatal.
TEST(Protocol, CorruptFrameIsParseErrorAndStreamStaysFramed) {
  Loopback loop;
  ASSERT_TRUE(write_frame(loop.client, FrameType::kPartial, "not-the-sum",
                          /*corrupt_payload_byte=*/true)
                  .ok());
  ASSERT_TRUE(write_frame(loop.client, FrameType::kShutdown, "clean").ok());

  auto corrupt = read_frame(loop.server, 5.0);
  ASSERT_FALSE(corrupt.has_value());
  EXPECT_EQ(corrupt.error().code, ErrorCode::kParseError);

  auto clean = read_frame(loop.server, 5.0);
  ASSERT_TRUE(clean.has_value()) << clean.error().to_string();
  EXPECT_EQ(clean->type, FrameType::kShutdown);
  EXPECT_EQ(clean->payload, "clean");
}

TEST(Protocol, TaskRequestRoundTrips) {
  TaskRequest task;
  task.shard = ingest::ShardSpec{2, 8};
  task.attempt = 3;
  task.paths = {"/corpus/a.mbt", "/corpus/b.mbt"};
  task.max_retries = 5;
  task.file_deadline_seconds = 12.5;
  auto decoded = task_request_from_payload(task_request_to_payload(task));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_EQ(decoded->shard, task.shard);
  EXPECT_EQ(decoded->attempt, 3U);
  EXPECT_EQ(decoded->paths, task.paths);
  EXPECT_EQ(decoded->max_retries, 5);
  EXPECT_DOUBLE_EQ(decoded->file_deadline_seconds, 12.5);
}

TEST(Protocol, TaskErrorRoundTripsAndDecodeNeverFails) {
  const util::Error original{ErrorCode::kTimeout, "file deadline blown"};
  const util::Error decoded =
      task_error_from_payload(task_error_to_payload(original));
  EXPECT_EQ(decoded.code, ErrorCode::kTimeout);
  EXPECT_EQ(decoded.message, "file deadline blown");

  const util::Error garbage = task_error_from_payload("not json at all");
  EXPECT_EQ(garbage.code, ErrorCode::kParseError);
}

TEST(Protocol, HelloHandshakeValidates) {
  EXPECT_TRUE(check_hello_payload(hello_payload()).ok());
  EXPECT_FALSE(check_hello_payload("{}").ok());
  EXPECT_FALSE(
      check_hello_payload("{\"protocol\":\"mosaic-dispatch-v0\"}").ok());
}

TEST(Addresses, ParseValidatesActionably) {
  auto ok = parse_address("10.0.0.1:9100");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->host, "10.0.0.1");
  EXPECT_EQ(ok->port, 9100);

  EXPECT_FALSE(parse_address("no-port").has_value());
  EXPECT_FALSE(parse_address(":9100").has_value());
  EXPECT_FALSE(parse_address("host:").has_value());
  EXPECT_FALSE(parse_address("host:99999").has_value());
  EXPECT_FALSE(parse_address("host:nan").has_value());

  auto list = parse_address_list("a:1,b:2");
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->size(), 2U);
  // Port 0 is only meaningful for listeners, never as a connect target.
  EXPECT_FALSE(parse_address_list("a:1,b:0").has_value());
  EXPECT_FALSE(parse_address_list("").has_value());
}

TEST(NetFaults, ParseAndDeterminism) {
  auto spec = NetFaultSpec::parse(
      "seed=7,close=0.5,corrupt=1.0,corrupt_failures=2,stall=0.25,"
      "stall_ms=40,kill_after=3");
  ASSERT_TRUE(spec.has_value()) << spec.error().to_string();
  EXPECT_EQ(spec->seed, 7U);
  EXPECT_DOUBLE_EQ(spec->close_probability, 0.5);
  EXPECT_EQ(spec->corrupt_failures, 2);
  EXPECT_EQ(spec->kill_after_tasks, 3U);

  // Decisions are pure functions of (seed, shard, attempt).
  for (std::size_t shard = 0; shard < 16; ++shard) {
    EXPECT_EQ(spec->should_close(shard, 0), spec->should_close(shard, 0));
    EXPECT_EQ(spec->should_stall(shard, 1), spec->should_stall(shard, 1));
  }
  // corrupt=1.0 hits every task but heals after corrupt_failures attempts,
  // modeling a transient rather than permanent fault.
  EXPECT_TRUE(spec->should_corrupt(3, 0));
  EXPECT_TRUE(spec->should_corrupt(3, 1));
  EXPECT_FALSE(spec->should_corrupt(3, 2));

  EXPECT_FALSE(NetFaultSpec::parse("close=2.0").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("bogus=1").has_value());
}

TEST(DispatchJournal, RoundTripsAndToleratesTornTail) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mosaic_dispatch_journal_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "dispatch.jsonl").string();

  {
    DispatchJournalWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer
                    .append({0, 4, "done", "127.0.0.1:9100", 1,
                             "parts/results.shard-0.json", ""})
                    .ok());
    ASSERT_TRUE(writer
                    .append({2, 4, "quarantined", "", 3, "",
                             "io-error: connection lost"})
                    .ok());
  }
  // Simulate a manager killed mid-append: a torn, half-written line.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"shard\": 3, \"count\": 4, \"status\": \"do", f);
    std::fclose(f);
  }

  std::size_t dropped = 0;
  auto loaded = load_dispatch_journal(path, &dropped);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  EXPECT_EQ(loaded->size(), 2U);
  EXPECT_EQ(dropped, 1U);
  EXPECT_EQ(loaded->at(0).status, "done");
  EXPECT_EQ(loaded->at(0).partial_path, "parts/results.shard-0.json");
  EXPECT_EQ(loaded->at(2).status, "quarantined");

  // Missing journal = fresh start, not an error.
  auto missing = load_dispatch_journal((dir / "absent.jsonl").string());
  ASSERT_TRUE(missing.has_value());
  EXPECT_TRUE(missing->empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mosaic::dist
