// Funnel metrics vs the resume journal: the --metrics acceptance contract.
//
// The per-ErrorCode eviction counters are bumped at the same sites as the
// PreprocessStats breakdown maps, for live and journal-replayed outcomes
// alike. Two consequences are pinned here: (1) the funnel subset of the
// metrics dump is byte-identical between an uninterrupted run and a
// crash+resume run over the same corpus, and (2) the labeled counters agree
// exactly with the eviction breakdown the batch summary prints.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "ingest/ingest.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "parallel/thread_pool.hpp"

namespace mosaic::obs {
namespace {

namespace fs = std::filesystem;

trace::Trace make_trace(const std::string& user, const std::string& app,
                        std::uint64_t job_id, std::uint64_t bytes) {
  trace::Trace t;
  t.meta.job_id = job_id;
  t.meta.app_name = app;
  t.meta.user = user;
  t.meta.nprocs = 8;
  t.meta.run_time = 200.0;
  trace::FileRecord file;
  file.file_id = job_id;
  file.file_name = "/data/out.dat";
  file.bytes_written = bytes;
  file.writes = 4;
  file.opens = 1;
  file.closes = 1;
  file.open_ts = 1.0;
  file.close_ts = 190.0;
  file.first_write_ts = 2.0;
  file.last_write_ts = 180.0;
  t.files.push_back(file);
  return t;
}

class ObsResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    dir_ = fs::temp_directory_path() /
           (std::string("mosaic_obs_resume_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Mixed corpus: two dedup runs, a binary trace, a validity eviction, a
  /// torn binary, garbage, and a missing file.
  std::vector<std::string> seed_corpus() {
    EXPECT_TRUE(darshan::write_text_file(make_trace("u1", "alpha", 1, 1 << 20),
                                         path("alpha_run1.txt"))
                    .ok());
    EXPECT_TRUE(darshan::write_text_file(make_trace("u1", "alpha", 2, 4 << 20),
                                         path("alpha_run2.txt"))
                    .ok());
    EXPECT_TRUE(darshan::write_mbt_file(make_trace("u2", "beta", 3, 2 << 20),
                                        path("beta.mbt"))
                    .ok());
    trace::Trace corrupt = make_trace("u3", "gamma", 4, 1 << 20);
    corrupt.files[0].close_ts = corrupt.meta.run_time + 500.0;
    EXPECT_TRUE(
        darshan::write_text_file(corrupt, path("corrupt_validity.txt")).ok());
    const auto bytes = darshan::to_mbt(make_trace("u4", "delta", 5, 1 << 20));
    {
      std::ofstream torn(path("truncated.mbt"), std::ios::binary);
      torn.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    {
      std::ofstream garbage(path("garbage.txt"));
      garbage << "this is not a darshan trace\n";
    }
    return {path("alpha_run1.txt"), path("alpha_run2.txt"), path("beta.mbt"),
            path("corrupt_validity.txt"), path("truncated.mbt"),
            path("garbage.txt"), path("missing.txt")};
  }

  /// The resume-invariant subset of the registry: every mosaic_funnel_*
  /// counter, rendered one per line for byte comparison.
  static std::string funnel_metrics_text() {
    std::string out;
    for (const CounterSample& sample : Registry::global().snapshot().counters) {
      if (sample.name.rfind("mosaic_funnel_", 0) != 0) continue;
      out += sample.name + " " + std::to_string(sample.value) + "\n";
    }
    return out;
  }

  fs::path dir_;
};

TEST_F(ObsResumeTest, FunnelMetricsByteStableAcrossResume) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);

  // Uninterrupted reference run.
  Registry::global().reset();
  ingest::IngestOptions options;
  options.max_retries = 0;
  {
    const auto result = ingest::ingest_paths(paths, options, pool);
    ASSERT_TRUE(result.has_value());
  }
  const std::string uninterrupted = funnel_metrics_text();
  ASSERT_FALSE(uninterrupted.empty());

  // Crash after 3 files, journaling outcomes...
  Registry::global().reset();
  options.journal_path = path("journal.jsonl");
  options.abort_after_files = 3;
  {
    const auto result = ingest::ingest_paths(paths, options, pool);
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->stats.aborted);
  }

  // ...then resume in a "new process" (fresh registry), replaying the
  // journal for the already-processed prefix.
  Registry::global().reset();
  options.abort_after_files = 0;
  options.resume = true;
  {
    const auto result = ingest::ingest_paths(paths, options, pool);
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->stats.journal_replayed, 0u);
  }
  const std::string resumed = funnel_metrics_text();

  EXPECT_EQ(uninterrupted, resumed);
}

TEST_F(ObsResumeTest, EvictionCountersMatchFunnelBreakdownExactly) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);
  Registry::global().reset();
  ingest::IngestOptions options;
  options.max_retries = 0;
  const auto result = ingest::ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());
  const auto& stats = result->pre.stats;
  ASSERT_FALSE(stats.eviction_breakdown.empty());

  // Each breakdown entry has a counter series with the identical count...
  for (const auto& [code, count] : stats.eviction_breakdown) {
    const std::uint64_t metric =
        Registry::global()
            .counter(labeled(names::kFunnelEvictions, "code", code))
            .value();
    EXPECT_EQ(metric, count) << "code=" << code;
  }
  // ...and no eviction series exists beyond the breakdown map.
  std::size_t eviction_series = 0;
  for (const CounterSample& sample : Registry::global().snapshot().counters) {
    if (sample.name.rfind(std::string(names::kFunnelEvictions) + "{", 0) ==
        0) {
      ++eviction_series;
    }
  }
  EXPECT_EQ(eviction_series, stats.eviction_breakdown.size());

  // The corruption series likewise mirrors its breakdown map.
  for (const auto& [kind, count] : stats.corruption_breakdown) {
    const std::uint64_t metric =
        Registry::global()
            .counter(labeled(names::kFunnelCorruption, "kind", kind))
            .value();
    EXPECT_EQ(metric, count) << "kind=" << kind;
  }
  EXPECT_EQ(Registry::global().counter(names::kFunnelValid).value(),
            stats.valid);
}

}  // namespace
}  // namespace mosaic::obs
