// Concurrency and exposition tests for the metrics registry.
//
// The sharded counters promise exact totals once writers quiesce: a pool of
// threads hammering the same instrument must sum to precisely the number of
// increments issued, and histogram bucket counts must add up to the
// observation count. The exposition tests pin the JSON and Prometheus
// renderings the --metrics flag emits.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "obs/names.hpp"
#include "parallel/thread_pool.hpp"

namespace mosaic::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    Registry::global().reset();
  }
};

TEST_F(MetricsTest, CounterSumsExactlyUnderThreadPoolHammering) {
  Counter& counter = Registry::global().counter("test_hammer_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50'000;
  parallel::ThreadPool pool(kThreads);
  parallel::parallel_for(pool, kThreads, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.add();
    }
  });
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterExactAcrossManyRawThreads) {
  Counter& counter = Registry::global().counter("test_raw_threads_total");
  constexpr int kThreads = 2 * static_cast<int>(kShards) + 1;  // shard reuse
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(2);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 2 * kPerThread * kThreads);
}

TEST_F(MetricsTest, HistogramTotalsMatchUnderConcurrency) {
  static constexpr double kEdges[] = {1.0, 10.0, 100.0};
  Histogram& hist = Registry::global().histogram("test_hist", kEdges);
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 20'000;
  parallel::ThreadPool pool(kThreads);
  parallel::parallel_for(pool, kThreads, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>(i % 200));  // spans all buckets
      }
    }
  });
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  // Every thread observes the same 0..199 cycle, so the sum is exact.
  const double cycle_sum = 199.0 * 200.0 / 2.0;
  EXPECT_DOUBLE_EQ(hist.sum(),
                   static_cast<double>(kThreads) *
                       (static_cast<double>(kPerThread) / 200.0) * cycle_sum);

  const Snapshot snapshot = Registry::global().snapshot();
  for (const HistogramSample& sample : snapshot.histograms) {
    if (sample.name != "test_hist") continue;
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : sample.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, sample.count);
    ASSERT_EQ(sample.buckets.size(), 4u);  // 3 bounds + implicit +Inf
    return;
  }
  FAIL() << "test_hist missing from snapshot";
}

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  Counter& a = Registry::global().counter("test_stable_total");
  Counter& b = Registry::global().counter("test_stable_total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = Registry::global().gauge("test_gauge");
  Gauge& g2 = Registry::global().gauge("test_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& gauge = Registry::global().gauge("test_depth");
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
}

TEST_F(MetricsTest, DisabledUpdatesAreDropped) {
  Counter& counter = Registry::global().counter("test_disabled_total");
  counter.add(5);
  set_metrics_enabled(false);
  counter.add(100);
  set_metrics_enabled(true);
  counter.add(1);
  EXPECT_EQ(counter.value(), 6u);
}

TEST_F(MetricsTest, LabeledEncodesPrometheusSeries) {
  EXPECT_EQ(labeled("m_total", "code", "io-error"),
            "m_total{code=\"io-error\"}");
}

TEST_F(MetricsTest, SnapshotIsNameSorted) {
  Registry::global().counter("test_b_total").add();
  Registry::global().counter("test_a_total").add();
  const Snapshot snapshot = Registry::global().snapshot();
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST_F(MetricsTest, JsonExportParsesAndRoundTripsCounts) {
  Registry::global().counter("test_json_total").add(42);
  static constexpr double kEdges[] = {1.0, 2.0};
  Registry::global().histogram("test_json_ms", kEdges).observe(1.5);
  const auto parsed = json::parse(
      json::serialize(metrics_to_json(Registry::global().snapshot())));
  ASSERT_TRUE(parsed.has_value());
  const json::Object& root = parsed->as_object();
  ASSERT_TRUE(root.contains("counters"));
  ASSERT_TRUE(root.contains("gauges"));
  ASSERT_TRUE(root.contains("histograms"));
  const json::Value* counter = root.find("counters")->as_object().find(
      "test_json_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->as_number(), 42.0);
  const json::Value* hist =
      root.find("histograms")->as_object().find("test_json_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->as_object().find("count")->as_number(), 1.0);
  // Cumulative buckets: 1.5 falls past le=1, so [0, 1, 1].
  const json::Array& buckets = hist->as_object().find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].as_object().find("count")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(buckets[2].as_object().find("count")->as_number(), 1.0);
}

TEST_F(MetricsTest, PrometheusExportHasTypeLinesAndCumulativeBuckets) {
  Registry::global().counter(labeled("test_prom_total", "code", "x")).add(3);
  Registry::global().counter(labeled("test_prom_total", "code", "y")).add(4);
  static constexpr double kEdges[] = {10.0};
  Histogram& hist = Registry::global().histogram("test_prom_ms", kEdges);
  hist.observe(5.0);
  hist.observe(50.0);
  const std::string text =
      metrics_to_prometheus(Registry::global().snapshot());
  // One TYPE line per family even with two labeled series.
  std::size_t type_lines = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE test_prom_total counter", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("test_prom_total{code=\"x\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total{code=\"y\"} 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_ms_count 2"), std::string::npos);
}

TEST_F(MetricsTest, ScopedTimerObservesOnceOnExit) {
  static constexpr double kEdges[] = {1e9};  // everything lands in bucket 0
  Histogram& hist = Registry::global().histogram("test_timer_ms", kEdges);
  { const ScopedTimerMs timer(hist); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 0.0);
}

TEST_F(MetricsTest, InstrumentedNamesFollowConventions) {
  // Counters end in _total; the canonical names all carry the prefix.
  for (const std::string_view name :
       {names::kIngestLoaded, names::kFunnelValid, names::kPoolTasks,
        names::kTracesAnalyzed, names::kMeanShiftPoints}) {
    EXPECT_TRUE(name.starts_with("mosaic_")) << name;
    EXPECT_TRUE(name.ends_with("_total")) << name;
  }
}

}  // namespace
}  // namespace mosaic::obs
