// Tests for the sampling profiler: disabled hooks are no-ops, enabled
// scopes aggregate into collapsed stacks with self/total attribution,
// allocations charge to the sampled stack, depth truncation stays balanced,
// reset clears, and the exports (collapsed text, profile JSON, trace lane)
// carry what the sampler saw.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"

namespace mosaic::obs {
namespace {

/// Every test starts and ends with a disabled, empty profiler — the
/// singleton is process-global, so leftover state would bleed across tests.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::global().disable();
    Profiler::global().reset();
  }
  void TearDown() override {
    Profiler::global().disable();
    Profiler::global().reset();
  }
};

/// Holds `frames` pushed (innermost last) until `samples` new stack samples
/// have been taken or `timeout` passes. Returns the number of new samples.
std::uint64_t sample_while_pushed(const std::vector<const char*>& frames,
                                  std::uint64_t samples,
                                  std::chrono::seconds timeout =
                                      std::chrono::seconds(10)) {
  const std::uint64_t before = Profiler::global().sample_count();
  std::vector<bool> pushed;
  pushed.reserve(frames.size());
  for (const char* frame : frames) pushed.push_back(profiler_push_frame(frame));
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (Profiler::global().sample_count() < before + samples &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto it = pushed.rbegin(); it != pushed.rend(); ++it) {
    if (*it) profiler_pop_frame();
  }
  return Profiler::global().sample_count() - before;
}

TEST_F(ProfilerTest, DisabledHooksAreNoops) {
  EXPECT_FALSE(Profiler::global().enabled());
  EXPECT_FALSE(profiler_push_frame("ignored"));
  profiler_note_allocation();  // must not crash or register anything
  { ProfilerFrame frame("also-ignored"); }
  EXPECT_EQ(Profiler::global().sample_count(), 0u);
  EXPECT_TRUE(Profiler::global().stacks().empty());
  EXPECT_EQ(Profiler::global().collapsed_text(), "");
}

TEST_F(ProfilerTest, EnableClampsRateAndReportsState) {
  Profiler::global().enable(1e9);  // clamped to 10 kHz
  EXPECT_TRUE(Profiler::global().enabled());
  EXPECT_DOUBLE_EQ(Profiler::global().hz(), 10'000.0);
  Profiler::global().disable();
  EXPECT_FALSE(Profiler::global().enabled());
  Profiler::global().enable(0.001);  // clamped to 1 Hz
  EXPECT_DOUBLE_EQ(Profiler::global().hz(), 1.0);
}

TEST_F(ProfilerTest, SamplesAttributeToTheHeldStack) {
  Profiler::global().enable(2000.0);
  const std::uint64_t got = sample_while_pushed({"outer", "inner"}, 5);
  Profiler::global().disable();
  ASSERT_GE(got, 5u);

  const std::vector<ProfileStack> stacks = Profiler::global().stacks();
  const ProfileStack* ours = nullptr;
  for (const ProfileStack& stack : stacks) {
    if (stack.frames ==
        std::vector<std::string>{"outer", "inner"}) {
      ours = &stack;
    }
  }
  ASSERT_NE(ours, nullptr) << Profiler::global().collapsed_text();
  EXPECT_GE(ours->samples, 5u);

  // Self/total attribution: "inner" was always the leaf while pushed,
  // "outer" appeared on every one of those stacks.
  std::uint64_t inner_self = 0;
  std::uint64_t outer_total = 0;
  std::uint64_t outer_self = 0;
  for (const ProfileSelfTime& frame : Profiler::global().self_times()) {
    if (frame.frame == "inner") inner_self = frame.self;
    if (frame.frame == "outer") {
      outer_total = frame.total;
      outer_self = frame.self;
    }
  }
  EXPECT_GE(inner_self, 5u);
  EXPECT_GE(outer_total, inner_self);
  EXPECT_EQ(outer_self + inner_self, outer_total);
}

TEST_F(ProfilerTest, CollapsedTextIsSortedFlamegraphFormat) {
  Profiler::global().enable(2000.0);
  ASSERT_GE(sample_while_pushed({"b-frame"}, 2), 2u);
  ASSERT_GE(sample_while_pushed({"a-frame", "leaf"}, 2), 2u);
  Profiler::global().disable();

  const std::string text = Profiler::global().collapsed_text();
  // One "frames count\n" line per aggregated stack, sorted by key — the
  // format flamegraph.pl and speedscope ingest directly.
  std::istringstream lines(text);
  std::string line;
  std::string previous_key;
  bool saw_nested = false;
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string key = line.substr(0, space);
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    EXPECT_LE(previous_key, key) << "collapsed keys must be sorted";
    previous_key = key;
    if (key == "a-frame;leaf") saw_nested = true;
  }
  EXPECT_TRUE(saw_nested) << text;
}

TEST_F(ProfilerTest, WriteCollapsedMatchesCollapsedText) {
  Profiler::global().enable(2000.0);
  ASSERT_GE(sample_while_pushed({"persisted"}, 2), 2u);
  Profiler::global().disable();

  const std::string path =
      ::testing::TempDir() + "mosaic_profiler_collapsed.txt";
  auto status = Profiler::global().write_collapsed(path);
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(), Profiler::global().collapsed_text());
  std::remove(path.c_str());
}

TEST_F(ProfilerTest, AllocationsChargeToTheSampledStack) {
  Profiler::global().enable(2000.0);
  {
    ProfilerFrame frame("alloc-site");
    for (int i = 0; i < 7; ++i) profiler_note_allocation();
    // Pending allocations are charged at the next sampler tick of this
    // thread's stack, so hold the frame until one lands.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    const std::uint64_t before = Profiler::global().sample_count();
    while (Profiler::global().sample_count() < before + 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  Profiler::global().disable();

  std::uint64_t charged = 0;
  for (const ProfileStack& stack : Profiler::global().stacks()) {
    if (!stack.frames.empty() && stack.frames.front() == "alloc-site") {
      charged += stack.allocations;
    }
  }
  EXPECT_GE(charged, 7u);
}

TEST_F(ProfilerTest, PushesBeyondMaxDepthAreRefusedButBalanced) {
  Profiler::global().enable(100.0);
  std::size_t accepted = 0;
  for (std::size_t depth = 0; depth < kProfilerMaxDepth + 4; ++depth) {
    if (profiler_push_frame("deep")) ++accepted;
  }
  EXPECT_EQ(accepted, kProfilerMaxDepth);
  for (std::size_t depth = 0; depth < accepted; ++depth) profiler_pop_frame();
  Profiler::global().disable();
}

TEST_F(ProfilerTest, IdleRegisteredThreadsCountAsIdleSamples) {
  Profiler::global().enable(2000.0);
  // Register this thread by pushing once, then go idle with an empty stack.
  ASSERT_GE(sample_while_pushed({"warmup"}, 1), 1u);
  const std::uint64_t before = Profiler::global().idle_samples();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Profiler::global().idle_samples() < before + 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Profiler::global().disable();
  EXPECT_GE(Profiler::global().idle_samples(), before + 3);
}

TEST_F(ProfilerTest, LaneSpansCarrySampledLeavesWithPeriodDuration) {
  Profiler::global().enable(2000.0);
  ASSERT_GE(sample_while_pushed({"lane-frame"}, 3), 3u);
  Profiler::global().disable();

  const std::vector<FleetSpan> lane = Profiler::global().lane_spans();
  ASSERT_FALSE(lane.empty());
  bool found = false;
  for (const FleetSpan& span : lane) {
    EXPECT_GT(span.end_ns, span.start_ns);
    if (span.name == "lane-frame") found = true;
  }
  EXPECT_TRUE(found);
  // Sorted by (tid, start) for deterministic trace output.
  for (std::size_t i = 1; i < lane.size(); ++i) {
    EXPECT_TRUE(lane[i - 1].tid < lane[i].tid ||
                (lane[i - 1].tid == lane[i].tid &&
                 lane[i - 1].start_ns <= lane[i].start_ns));
  }
}

TEST_F(ProfilerTest, ProfileJsonSummarizesAggregates) {
  Profiler::global().enable(2000.0);
  ASSERT_GE(sample_while_pushed({"json-frame"}, 2), 2u);
  Profiler::global().disable();

  const json::Value summary = Profiler::global().profile_json();
  ASSERT_TRUE(summary.is_object());
  const json::Object& obj = summary.as_object();
  ASSERT_TRUE(obj.contains("enabled"));
  ASSERT_TRUE(obj.contains("hz"));
  ASSERT_TRUE(obj.contains("samples"));
  ASSERT_TRUE(obj.contains("idle_samples"));
  EXPECT_GE(obj.find("samples")->as_number(), 2.0);
  const json::Value* stacks = obj.find("stacks");
  ASSERT_NE(stacks, nullptr);
  ASSERT_TRUE(stacks->is_array());
  EXPECT_FALSE(stacks->as_array().empty());
  const json::Value* self = obj.find("self");
  ASSERT_NE(self, nullptr);
  ASSERT_TRUE(self->is_array());
  // Serializes without blowing up — this is the /profile endpoint body.
  EXPECT_FALSE(json::serialize(summary).empty());
}

TEST_F(ProfilerTest, ResetDropsAggregatesButKeepsEnabledState) {
  Profiler::global().enable(2000.0);
  ASSERT_GE(sample_while_pushed({"to-be-dropped"}, 2), 2u);
  Profiler::global().reset();
  EXPECT_TRUE(Profiler::global().enabled());
  EXPECT_EQ(Profiler::global().sample_count(), 0u);
  EXPECT_TRUE(Profiler::global().stacks().empty());
  EXPECT_TRUE(Profiler::global().lane_spans().empty());
  EXPECT_EQ(Profiler::global().collapsed_text(), "");
  Profiler::global().disable();
}

TEST_F(ProfilerTest, ChromeTraceWithProfileContainsBothLanes) {
  Profiler::global().enable(2000.0);
  ASSERT_GE(sample_while_pushed({"trace-frame"}, 2), 2u);
  Profiler::global().disable();

  const std::string trace = chrome_trace_with_profile_json();
  EXPECT_NE(trace.find("\"profile\""), std::string::npos);
  EXPECT_NE(trace.find("trace-frame"), std::string::npos);
  auto parsed = json::parse(trace);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
}

}  // namespace
}  // namespace mosaic::obs
