// Tests for the declarative health engine: metric resolution (exact name,
// counter family sum skipping worker-labeled series, gauge family max),
// denominator ratios, threshold semantics, rollup folding, the summary and
// JSON renderings, the rules-file codec round-trip, and reading snapshots
// back from the saved metrics JSON artifact (cumulative-bucket decumulation
// plus malformed-input rejection).
#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"

namespace mosaic::obs {
namespace {

CounterSample counter(std::string name, std::uint64_t value) {
  return {std::move(name), "", value};
}

GaugeSample gauge(std::string name, std::int64_t value) {
  return {std::move(name), "", value};
}

HealthRule rule(std::string name, std::string metric, double warn,
                double fail, std::string denominator = "") {
  return {std::move(name), std::move(metric), std::move(denominator), warn,
          fail};
}

TEST(HealthLevelTest, NamesRoundTripAndUnknownErrors) {
  EXPECT_EQ(health_level_name(HealthLevel::kOk), "ok");
  EXPECT_EQ(health_level_name(HealthLevel::kWarn), "warn");
  EXPECT_EQ(health_level_name(HealthLevel::kFail), "fail");
  for (const HealthLevel level :
       {HealthLevel::kOk, HealthLevel::kWarn, HealthLevel::kFail}) {
    auto parsed = health_level_from_name(health_level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(health_level_from_name("degraded").has_value());
}

TEST(HealthLevelTest, WorseTakesTheMaximum) {
  EXPECT_EQ(worse(HealthLevel::kOk, HealthLevel::kWarn), HealthLevel::kWarn);
  EXPECT_EQ(worse(HealthLevel::kFail, HealthLevel::kWarn), HealthLevel::kFail);
  EXPECT_EQ(worse(HealthLevel::kOk, HealthLevel::kOk), HealthLevel::kOk);
}

TEST(HealthEvaluate, ThresholdsCompareWithGreaterOrEqual) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("m_total", 5));
  const std::vector<HealthRule> rules = {rule("r", "m_total", 5.0, 10.0)};

  auto report = evaluate_health(snapshot, rules);
  EXPECT_EQ(report.level, HealthLevel::kWarn);  // 5 >= warn 5

  snapshot.counters[0].value = 4;
  EXPECT_EQ(evaluate_health(snapshot, rules).level, HealthLevel::kOk);

  snapshot.counters[0].value = 10;
  report = evaluate_health(snapshot, rules);
  EXPECT_EQ(report.level, HealthLevel::kFail);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_EQ(report.checks[0].rule, "r");
  EXPECT_EQ(report.checks[0].metric, "m_total");
  EXPECT_DOUBLE_EQ(report.checks[0].value, 10.0);
  EXPECT_EQ(report.checks[0].level, HealthLevel::kFail);
}

TEST(HealthEvaluate, NegativeThresholdDisablesThatLevel) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("m_total", 100));
  EXPECT_EQ(evaluate_health(snapshot, {rule("r", "m_total", -1.0, -1.0)}).level,
            HealthLevel::kOk);
  EXPECT_EQ(evaluate_health(snapshot, {rule("r", "m_total", 1.0, -1.0)}).level,
            HealthLevel::kWarn);
}

TEST(HealthEvaluate, CounterFamilySumSkipsWorkerLabeledSeries) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("m_total{code=\"x\"}", 2));
  snapshot.counters.push_back(counter("m_total{code=\"y\"}", 3));
  // Fleet-merge-labeled copies would double-count the fleet total.
  snapshot.counters.push_back(counter("m_total{worker=\"h:1\"}", 100));

  const auto report =
      evaluate_health(snapshot, {rule("r", "m_total", 10.0, -1.0)});
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_DOUBLE_EQ(report.checks[0].value, 5.0);
  EXPECT_EQ(report.level, HealthLevel::kOk);
}

TEST(HealthEvaluate, ExactNameWinsOverFamilyFold) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("m_total", 1));
  snapshot.counters.push_back(counter("m_total{code=\"x\"}", 50));
  const auto report =
      evaluate_health(snapshot, {rule("r", "m_total", 10.0, -1.0)});
  EXPECT_DOUBLE_EQ(report.checks[0].value, 1.0);
}

TEST(HealthEvaluate, GaugeFamilyTakesTheMax) {
  Snapshot snapshot;
  snapshot.gauges.push_back(gauge("depth{worker=\"a\"}", 3));
  snapshot.gauges.push_back(gauge("depth{worker=\"b\"}", 7));
  const auto report =
      evaluate_health(snapshot, {rule("r", "depth", 5.0, -1.0)});
  EXPECT_DOUBLE_EQ(report.checks[0].value, 7.0);
  EXPECT_EQ(report.level, HealthLevel::kWarn);
}

TEST(HealthEvaluate, DenominatorMakesARatioAndZeroDenominatorIsZero) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("bad_total", 3));
  snapshot.counters.push_back(counter("all_total", 12));
  auto report = evaluate_health(
      snapshot, {rule("ratio", "bad_total", 0.2, 0.5, "all_total")});
  EXPECT_DOUBLE_EQ(report.checks[0].value, 0.25);
  EXPECT_EQ(report.level, HealthLevel::kWarn);

  snapshot.counters[1].value = 0;  // no denominator yet: ratio defined as 0
  report = evaluate_health(
      snapshot, {rule("ratio", "bad_total", 0.2, 0.5, "all_total")});
  EXPECT_DOUBLE_EQ(report.checks[0].value, 0.0);
  EXPECT_EQ(report.level, HealthLevel::kOk);
}

TEST(HealthEvaluate, MissingMetricResolvesToZero) {
  const auto report =
      evaluate_health(Snapshot{}, {rule("r", "does_not_exist", 1.0, -1.0)});
  EXPECT_DOUBLE_EQ(report.checks[0].value, 0.0);
  EXPECT_EQ(report.level, HealthLevel::kOk);
}

TEST(HealthEvaluate, RollupIsTheWorstCheck) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("a_total", 5));
  snapshot.counters.push_back(counter("b_total", 50));
  const auto report = evaluate_health(
      snapshot,
      {rule("a", "a_total", 1.0, 100.0), rule("b", "b_total", 1.0, 10.0)});
  EXPECT_EQ(report.level, HealthLevel::kFail);
  EXPECT_EQ(report.checks[0].level, HealthLevel::kWarn);
  EXPECT_EQ(report.checks[1].level, HealthLevel::kFail);
}

TEST(HealthSummary, NamesTheCulpritsAtTheRollupSeverity) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("a_total", 5));
  snapshot.counters.push_back(counter("b_total", 50));
  snapshot.counters.push_back(counter("c_total", 50));
  EXPECT_EQ(health_summary(evaluate_health(snapshot, {})), "ok");
  EXPECT_EQ(health_summary(evaluate_health(
                snapshot, {rule("a", "a_total", 1.0, -1.0)})),
            "warn(a)");
  // A warn-level check is not listed when the rollup is fail.
  EXPECT_EQ(health_summary(evaluate_health(
                snapshot, {rule("a", "a_total", 1.0, -1.0),
                           rule("b", "b_total", 1.0, 10.0),
                           rule("c", "c_total", 1.0, 10.0)})),
            "fail(b,c)");
}

TEST(HealthSummary, RollupAboveEveryCheckRendersBareLevel) {
  // A rollup folded from another report (e.g. a worker's piggybacked
  // verdict) can outrank every local check; "warn" beats "warn()".
  HealthReport report;
  report.level = HealthLevel::kWarn;
  report.checks.push_back({"local", "m_total", 0.0, 1.0, -1.0,
                           HealthLevel::kOk});
  EXPECT_EQ(health_summary(report), "warn");
}

TEST(HealthJson, ReportSerializesStatusAndChecks) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("m_total", 10));
  const auto report =
      evaluate_health(snapshot, {rule("r", "m_total", 5.0, 10.0)});
  const json::Value out = health_to_json(report);
  ASSERT_TRUE(out.is_object());
  EXPECT_EQ(out.as_object().find("status")->as_string(), "fail");
  const json::Value* checks = out.as_object().find("checks");
  ASSERT_NE(checks, nullptr);
  ASSERT_EQ(checks->as_array().size(), 1u);
  const json::Object& check = checks->as_array()[0].as_object();
  EXPECT_EQ(check.find("rule")->as_string(), "r");
  EXPECT_EQ(check.find("status")->as_string(), "fail");
  EXPECT_DOUBLE_EQ(check.find("warn")->as_number(), 5.0);
  EXPECT_DOUBLE_EQ(check.find("fail")->as_number(), 10.0);
}

TEST(HealthText, RendersOneLinePerCheckWithThresholds) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("m_total", 3));
  const auto report =
      evaluate_health(snapshot, {rule("r", "m_total", 5.0, 10.0)});
  const std::string text = health_text(report);
  EXPECT_NE(text.find("health: ok"), std::string::npos);
  EXPECT_NE(text.find("r = 3"), std::string::npos);
  EXPECT_NE(text.find("warn >= 5"), std::string::npos);
  EXPECT_NE(text.find("fail >= 10"), std::string::npos);
  EXPECT_NE(text.find("[m_total]"), std::string::npos);
}

TEST(HealthRulesCodec, RoundTripsThroughJson) {
  const std::vector<HealthRule> rules = {
      rule("ratio", "bad_total", 0.25, 0.75, "all_total"),
      rule("warn-only", "w_total", 3.0, -1.0),
      rule("fail-only", "f_total", -1.0, 9.0),
  };
  auto decoded = health_rules_from_json(health_rules_to_json(rules));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->size(), rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ((*decoded)[i].name, rules[i].name);
    EXPECT_EQ((*decoded)[i].metric, rules[i].metric);
    EXPECT_EQ((*decoded)[i].denominator, rules[i].denominator);
    EXPECT_DOUBLE_EQ((*decoded)[i].warn, rules[i].warn);
    EXPECT_DOUBLE_EQ((*decoded)[i].fail, rules[i].fail);
  }
}

TEST(HealthRulesCodec, DefaultsRoundTripToo) {
  for (const auto& rules :
       {default_health_rules(), default_fleet_health_rules()}) {
    auto decoded = health_rules_from_json(health_rules_to_json(rules));
    ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
    EXPECT_EQ(decoded->size(), rules.size());
  }
}

TEST(HealthRulesCodec, RejectsMalformedDocuments) {
  const char* bad[] = {
      "[]",                                        // not an object
      "{}",                                        // no rules array
      "{\"rules\": []}",                           // empty rules
      "{\"rules\": [{\"metric\": \"m\", \"warn\": 1}]}",  // missing name
      "{\"rules\": [{\"name\": \"r\", \"warn\": 1}]}",    // missing metric
      "{\"rules\": [{\"name\": \"r\", \"metric\": \"m\"}]}",  // no thresholds
      "{\"rules\": [{\"name\": \"r\", \"metric\": \"m\","
      " \"warn\": \"high\"}]}",                    // mistyped threshold
  };
  for (const char* doc : bad) {
    auto parsed = json::parse(doc);
    ASSERT_TRUE(parsed.has_value()) << doc;
    EXPECT_FALSE(health_rules_from_json(*parsed).has_value()) << doc;
  }
}

TEST(HealthRulesCodec, LoadsFromFileAndErrorsOnMissingPath) {
  const std::string path = ::testing::TempDir() + "mosaic_health_rules.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << json::serialize(
        health_rules_to_json({rule("r", "m_total", 1.0, 2.0)}));
  }
  auto loaded = load_health_rules(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].name, "r");
  std::remove(path.c_str());

  EXPECT_FALSE(load_health_rules(path + ".does-not-exist").has_value());
}

TEST(HealthMetricsJson, SnapshotRoundTripsThroughMetricsJson) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("c_total", 42));
  snapshot.gauges.push_back(gauge("depth", -3));
  HistogramSample histogram;
  histogram.name = "lat_ms";
  histogram.bounds = {1.0, 10.0};
  histogram.buckets = {2, 3, 1};  // non-cumulative in the Snapshot form
  histogram.count = 6;
  histogram.sum = 44.5;
  snapshot.histograms.push_back(histogram);

  auto decoded = snapshot_from_metrics_json(metrics_to_json(snapshot));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->counters.size(), 1u);
  EXPECT_EQ(decoded->counters[0].name, "c_total");
  EXPECT_EQ(decoded->counters[0].value, 42u);
  ASSERT_EQ(decoded->gauges.size(), 1u);
  EXPECT_EQ(decoded->gauges[0].value, -3);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  // metrics_to_json writes Prometheus-style cumulative buckets; the reader
  // de-cumulates back to the Snapshot form.
  EXPECT_EQ(decoded->histograms[0].bounds, histogram.bounds);
  EXPECT_EQ(decoded->histograms[0].buckets, histogram.buckets);
  EXPECT_EQ(decoded->histograms[0].count, 6u);
  EXPECT_DOUBLE_EQ(decoded->histograms[0].sum, 44.5);
}

TEST(HealthMetricsJson, RejectsMalformedMetricsDocuments) {
  const char* bad[] = {
      "[]",                                   // not an object
      "{\"counters\": []}",                   // counters not an object
      "{\"counters\": {\"c\": \"many\"}}",    // counter not a number
      "{\"histograms\": {\"h\": {}}}",        // histogram missing buckets
      // Decreasing cumulative counts are corrupt data, not a histogram.
      "{\"histograms\": {\"h\": {\"buckets\":"
      " [{\"le\": 1, \"count\": 5}, {\"le\": \"+Inf\", \"count\": 2}]}}}",
      // A finite last edge means the +Inf bucket is missing.
      "{\"histograms\": {\"h\": {\"buckets\":"
      " [{\"le\": 1, \"count\": 5}]}}}",
  };
  for (const char* doc : bad) {
    auto parsed = json::parse(doc);
    ASSERT_TRUE(parsed.has_value()) << doc;
    EXPECT_FALSE(snapshot_from_metrics_json(*parsed).has_value()) << doc;
  }
}

TEST(HealthMetricsJson, EvaluatesRulesAgainstADecodedArtifact) {
  // End-to-end shape of `mosaic health`: serialize a snapshot the way
  // --metrics does, read it back, evaluate a rules file against it.
  Snapshot snapshot;
  snapshot.counters.push_back(counter("bad_total", 8));
  snapshot.counters.push_back(counter("all_total", 10));
  auto decoded = snapshot_from_metrics_json(metrics_to_json(snapshot));
  ASSERT_TRUE(decoded.has_value());
  const auto report = evaluate_health(
      *decoded, {rule("ratio", "bad_total", 0.2, 0.5, "all_total")});
  EXPECT_EQ(report.level, HealthLevel::kFail);
  EXPECT_EQ(health_summary(report), "fail(ratio)");
}

}  // namespace
}  // namespace mosaic::obs
