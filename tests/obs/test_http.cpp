#include "obs/http.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/net.hpp"

namespace mosaic::obs {
namespace {

// ---------------------------------------------------------------------------
// parse_request_line: the pure parser, no sockets.

TEST(ParseRequestLine, WellFormedGet) {
  HttpRequest request;
  ASSERT_TRUE(parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
                                 request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
}

TEST(ParseRequestLine, StripsQueryString) {
  HttpRequest request;
  ASSERT_TRUE(parse_request_line("GET /explain/abc?verbose=1 HTTP/1.1\r\n\r\n",
                                 request));
  EXPECT_EQ(request.target, "/explain/abc");
}

TEST(ParseRequestLine, NoSpacesAtAllIsMalformed) {
  HttpRequest request;
  EXPECT_FALSE(parse_request_line("garbage\r\n\r\n", request));
}

TEST(ParseRequestLine, TruncatedAfterMethodIsMalformed) {
  HttpRequest request;
  // First find(' ') succeeds, second must not: this was the silently
  // dropped case.
  EXPECT_FALSE(parse_request_line("GET /metrics\r\n\r\n", request));
}

TEST(ParseRequestLine, EmptyMethodIsMalformed) {
  HttpRequest request;
  EXPECT_FALSE(parse_request_line(" /metrics HTTP/1.1\r\n\r\n", request));
}

TEST(ParseRequestLine, EmptyTargetIsMalformed) {
  HttpRequest request;
  EXPECT_FALSE(parse_request_line("GET  HTTP/1.1\r\n\r\n", request));
}

TEST(ParseRequestLine, EmptyHeadIsMalformed) {
  HttpRequest request;
  EXPECT_FALSE(parse_request_line("", request));
}

TEST(ParseRequestLine, SpaceInLaterHeaderDoesNotRescueTheRequestLine) {
  HttpRequest request;
  // The old code searched the whole head, so "User-Agent: curl thing" could
  // supply the missing delimiters. The parse must stay on line one.
  EXPECT_FALSE(parse_request_line(
      "GET/metrics\r\nUser-Agent: curl thing\r\n\r\n", request));
}

TEST(ParseRequestLine, BinaryGarbageIsMalformed) {
  HttpRequest request;
  EXPECT_FALSE(parse_request_line(
      std::string_view("\x00\x01\x02\x03\xff\xfe", 6), request));
}

TEST(ParseRequestLine, MalformedLineLeavesRequestUntouched) {
  HttpRequest request;
  request.method = "SENTINEL";
  request.target = "/sentinel";
  EXPECT_FALSE(parse_request_line("nospace\r\n\r\n", request));
  EXPECT_EQ(request.method, "SENTINEL");
  EXPECT_EQ(request.target, "/sentinel");
}

// ---------------------------------------------------------------------------
// End to end: a live server must answer 400, not close the socket silently.

std::string roundtrip(std::uint16_t port, const std::string& raw) {
  auto conn = util::connect_to({"127.0.0.1", port}, 2.0);
  if (!conn.has_value()) return "<connect failed>";
  if (!conn->send_all(raw.data(), raw.size()).ok()) return "<send failed>";
  std::string response;
  char buffer[512];
  for (;;) {
    auto got = conn->recv_some(buffer, sizeof buffer, 2.0);
    if (!got.has_value() || *got == 0) break;
    response.append(buffer, *got);
  }
  return response;
}

TEST(HttpServerRequestLine, GarbageRequestLineGets400) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong\n", {}};
  });
  ASSERT_TRUE(server.start({"127.0.0.1", 0}).ok());

  const std::string response = roundtrip(server.port(), "garbage\r\n\r\n");
  EXPECT_EQ(response.substr(0, 12), "HTTP/1.1 400") << response;
  server.stop();
}

TEST(HttpServerRequestLine, TruncatedRequestLineGets400) {
  HttpServer server;
  ASSERT_TRUE(server.start({"127.0.0.1", 0}).ok());

  const std::string response =
      roundtrip(server.port(), "GET /metrics\r\n\r\n");
  EXPECT_EQ(response.substr(0, 12), "HTTP/1.1 400") << response;
  server.stop();
}

TEST(HttpServerRequestLine, WellFormedStillRoutes) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong\n", {}};
  });
  ASSERT_TRUE(server.start({"127.0.0.1", 0}).ok());

  const std::string response =
      roundtrip(server.port(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.substr(0, 12), "HTTP/1.1 200") << response;
  EXPECT_NE(response.find("pong"), std::string::npos) << response;
  server.stop();
}

}  // namespace
}  // namespace mosaic::obs
