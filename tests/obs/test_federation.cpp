// Tests for telemetry federation: the snapshot/span wire codecs, the fleet
// merge semantics (counters sum, gauges stay per-worker, histograms add
// bucket-wise with bound-mismatch rejection), merge determinism, the merged
// Chrome trace lanes, and the manager-side payload classification that
// degrades malformed telemetry instead of failing the task.
#include "obs/federation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/net.hpp"
#include "dist/protocol.hpp"
#include "dist/telemetry.hpp"
#include "json/json.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace mosaic::obs {
namespace {

CounterSample counter(std::string name, std::uint64_t value) {
  return {std::move(name), "", value};
}

GaugeSample gauge(std::string name, std::int64_t value) {
  return {std::move(name), "", value};
}

HistogramSample histogram(std::string name, std::vector<double> bounds,
                          std::vector<std::uint64_t> buckets, double sum) {
  HistogramSample sample;
  sample.name = std::move(name);
  sample.bounds = std::move(bounds);
  sample.buckets = std::move(buckets);
  for (const std::uint64_t bucket : sample.buckets) sample.count += bucket;
  sample.sum = sum;
  return sample;
}

const CounterSample* find_counter(const Snapshot& snapshot,
                                  std::string_view name) {
  for (const CounterSample& sample : snapshot.counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* find_histogram(const Snapshot& snapshot,
                                      std::string_view name) {
  for (const HistogramSample& sample : snapshot.histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

TEST(FederationWire, SnapshotRoundTripsThroughWireJson) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("a_total", 7));
  snapshot.gauges.push_back(gauge("depth", -3));
  snapshot.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 44.5));

  auto decoded = snapshot_from_wire_json(snapshot_to_wire_json(snapshot));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->counters.size(), 1u);
  EXPECT_EQ(decoded->counters[0].name, "a_total");
  EXPECT_EQ(decoded->counters[0].value, 7u);
  ASSERT_EQ(decoded->gauges.size(), 1u);
  EXPECT_EQ(decoded->gauges[0].value, -3);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  EXPECT_EQ(decoded->histograms[0].bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(decoded->histograms[0].buckets,
            (std::vector<std::uint64_t>{2, 3, 1}));
  EXPECT_EQ(decoded->histograms[0].count, 6u);
  EXPECT_DOUBLE_EQ(decoded->histograms[0].sum, 44.5);
}

TEST(FederationWire, RejectsBucketCountMismatch) {
  Snapshot snapshot;
  snapshot.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 44.5));
  json::Value wire = snapshot_to_wire_json(snapshot);
  // Drop one bucket: 2 bounds now claim 2 buckets instead of bounds+1.
  wire.as_object()
      .find("histograms")
      ->as_array()[0]
      .as_object()
      .find("buckets")
      ->as_array()
      .pop_back();
  auto decoded = snapshot_from_wire_json(wire);
  ASSERT_FALSE(decoded.has_value());
}

TEST(FederationWire, SpansRoundTripThroughWireJson) {
  std::vector<SpanEvent> events;
  events.push_back({"parse", 100, 250, 1});
  events.push_back({"merge", 300, 900, 2});
  auto decoded = spans_from_wire_json(spans_to_wire_json(events));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].name, "parse");
  EXPECT_EQ((*decoded)[0].start_ns, 100u);
  EXPECT_EQ((*decoded)[0].end_ns, 250u);
  EXPECT_EQ((*decoded)[1].tid, 2u);
}

TEST(FederationLabel, WorkerLabelGoesFirstAndEscapes) {
  EXPECT_EQ(with_worker_label("a_total", "h:1"), "a_total{worker=\"h:1\"}");
  // Already-labeled series get worker prepended so stripping
  // `worker="...",` recovers the bare name.
  EXPECT_EQ(with_worker_label("a_total{code=\"x\"}", "h:1"),
            "a_total{worker=\"h:1\",code=\"x\"}");
  EXPECT_EQ(with_worker_label("a_total", "q\"\\"),
            "a_total{worker=\"q\\\"\\\\\"}");
}

TEST(FederationMerge, CountersSumIntoBareTotals) {
  Snapshot one;
  one.counters.push_back(counter("tasks_total", 2));
  Snapshot two;
  two.counters.push_back(counter("tasks_total", 5));

  const Snapshot merged =
      merge_snapshots({{"w1", std::move(one)}, {"w2", std::move(two)}});
  const CounterSample* total = find_counter(merged, "tasks_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 7u);
  const CounterSample* w1 =
      find_counter(merged, "tasks_total{worker=\"w1\"}");
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->value, 2u);
  const CounterSample* w2 =
      find_counter(merged, "tasks_total{worker=\"w2\"}");
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->value, 5u);
}

TEST(FederationMerge, GaugesStayPerWorkerWithNoTotal) {
  Snapshot one;
  one.gauges.push_back(gauge("queue_depth", 4));
  Snapshot two;
  two.gauges.push_back(gauge("queue_depth", 9));

  const Snapshot merged =
      merge_snapshots({{"w1", std::move(one)}, {"w2", std::move(two)}});
  ASSERT_EQ(merged.gauges.size(), 2u);
  EXPECT_EQ(merged.gauges[0].name, "queue_depth{worker=\"w1\"}");
  EXPECT_EQ(merged.gauges[0].value, 4);
  EXPECT_EQ(merged.gauges[1].name, "queue_depth{worker=\"w2\"}");
  EXPECT_EQ(merged.gauges[1].value, 9);
  // No bare "queue_depth": summing point-in-time values is meaningless.
  for (const GaugeSample& sample : merged.gauges) {
    EXPECT_NE(sample.name, "queue_depth");
  }
}

TEST(FederationMerge, HistogramsAddBucketWise) {
  Snapshot one;
  one.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {1, 2, 0}, 12.0));
  Snapshot two;
  two.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {0, 1, 4}, 80.0));

  const Snapshot merged =
      merge_snapshots({{"w1", std::move(one)}, {"w2", std::move(two)}});
  const HistogramSample* total = find_histogram(merged, "lat_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->buckets, (std::vector<std::uint64_t>{1, 3, 4}));
  EXPECT_EQ(total->count, 8u);
  EXPECT_DOUBLE_EQ(total->sum, 92.0);
  EXPECT_NE(find_histogram(merged, "lat_ms{worker=\"w1\"}"), nullptr);
  EXPECT_NE(find_histogram(merged, "lat_ms{worker=\"w2\"}"), nullptr);
}

TEST(FederationMerge, MismatchedHistogramBoundsAreRejectedFromTotals) {
  Snapshot one;
  one.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {1, 2, 0}, 12.0));
  Snapshot two;
  two.histograms.push_back(
      histogram("lat_ms", {5.0, 50.0}, {0, 1, 4}, 80.0));

  MergeStats stats;
  const Snapshot merged = merge_snapshots(
      {{"w1", std::move(one)}, {"w2", std::move(two)}}, &stats);
  EXPECT_EQ(stats.histogram_bound_mismatches, 1u);
  // First-seen bounds win the total; the mismatched source still shows up
  // as its own labeled series.
  const HistogramSample* total = find_histogram(merged, "lat_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(total->count, 3u);
  const HistogramSample* w2 =
      find_histogram(merged, "lat_ms{worker=\"w2\"}");
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->bounds, (std::vector<double>{5.0, 50.0}));
}

TEST(FederationMerge, DeterministicRegardlessOfArrivalOrder) {
  const auto build = [](bool flip) {
    Snapshot one;
    one.counters.push_back(counter("tasks_total", 2));
    one.gauges.push_back(gauge("depth", 1));
    one.histograms.push_back(
        histogram("lat_ms", {1.0}, {1, 0}, 0.5));
    Snapshot two;
    two.counters.push_back(counter("tasks_total", 5));
    two.gauges.push_back(gauge("depth", 2));
    two.histograms.push_back(
        histogram("lat_ms", {1.0}, {0, 2}, 9.0));
    std::vector<std::pair<std::string, Snapshot>> sources;
    if (flip) {
      sources.emplace_back("w2", std::move(two));
      sources.emplace_back("w1", std::move(one));
    } else {
      sources.emplace_back("w1", std::move(one));
      sources.emplace_back("w2", std::move(two));
    }
    return merge_snapshots(std::move(sources));
  };

  const Snapshot forward = build(false);
  const Snapshot reversed = build(true);
  EXPECT_EQ(metrics_to_prometheus(forward), metrics_to_prometheus(reversed));
}

TEST(FederationTrace, MergedTraceHasOneNamedLanePerSource) {
  TraceLane manager;
  manager.process_name = "manager";
  manager.spans.push_back({"dispatch-run", 1'000'000, 9'000'000, 1});
  TraceLane worker;
  worker.process_name = "worker w1";
  worker.clock_shift_ns = -500'000;  // worker clock ran ahead by 500us
  worker.spans.push_back({"worker-task", 2'500'000, 4'500'000, 7});

  const std::string trace = chrome_trace_from_lanes({manager, worker});
  auto parsed = json::parse(trace);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  const auto& events =
      parsed->as_object().find("traceEvents")->as_array();

  std::vector<std::string> process_names;
  double worker_ts = -1.0;
  for (const json::Value& event : events) {
    const auto& obj = event.as_object();
    if (obj.find("name")->as_string() == "process_name") {
      process_names.push_back(obj.find("args")
                                  ->as_object()
                                  .find("name")
                                  ->as_string());
    }
    if (obj.find("ph")->as_string() == "X" &&
        obj.find("name")->as_string() == "worker-task") {
      worker_ts = obj.find("ts")->as_number();
    }
  }
  ASSERT_EQ(process_names.size(), 2u);
  EXPECT_EQ(process_names[0], "manager");
  EXPECT_EQ(process_names[1], "worker w1");
  // Timeline re-based to the earliest shifted span (manager's 1ms); the
  // worker span lands at (2.5ms - 0.5ms) - 1ms = 1ms on the shared axis.
  EXPECT_DOUBLE_EQ(worker_ts, 1000.0);
}

TEST(FederationRegistry, FleetRegistryMergesAndLabels) {
  FleetRegistry registry;
  Snapshot one;
  one.counters.push_back(counter("tasks_total", 2));
  registry.update_snapshot("w1", std::move(one));
  Snapshot two;
  two.counters.push_back(counter("tasks_total", 3));
  registry.update_snapshot("w2", std::move(two));
  // Last write wins per source: refresh w1 with a newer snapshot.
  Snapshot newer;
  newer.counters.push_back(counter("tasks_total", 4));
  registry.update_snapshot("w1", std::move(newer));

  EXPECT_EQ(registry.source_count(), 2u);
  const Snapshot merged = registry.merged();
  const CounterSample* total = find_counter(merged, "tasks_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 7u);
}

TEST(FederationTelemetry, HeartbeatPayloadClassification) {
  using dist::parse_heartbeat_telemetry;
  // Empty payload: a pre-federation heartbeat, no telemetry, no error.
  auto empty = parse_heartbeat_telemetry("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->has_value());
  // Valid JSON without a telemetry member: also plain liveness.
  auto plain = parse_heartbeat_telemetry("{\"other\":1}");
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->has_value());
  // Telemetry present but missing the required snapshot: an Error the
  // manager degrades on (count it, keep the task running).
  auto malformed = parse_heartbeat_telemetry("{\"telemetry\":{}}");
  EXPECT_FALSE(malformed.has_value());
  // Unparseable bytes: same degradation path.
  auto garbage = parse_heartbeat_telemetry("{nope");
  EXPECT_FALSE(garbage.has_value());
}

TEST(FederationTelemetry, TaskRequestTelemetryFlagsRoundTripAndDefaultOff) {
  dist::TaskRequest task;
  task.shard = {0, 2};
  task.paths = {"a.mbt"};
  const std::string off_payload = dist::task_request_to_payload(task);
  // Off = absent: pre-federation payload bytes, old workers parse it.
  EXPECT_EQ(off_payload.find("telemetry"), std::string::npos);
  EXPECT_EQ(off_payload.find("collect_spans"), std::string::npos);

  task.telemetry = true;
  task.collect_spans = true;
  auto decoded =
      dist::task_request_from_payload(dist::task_request_to_payload(task));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_TRUE(decoded->telemetry);
  EXPECT_TRUE(decoded->collect_spans);

  auto decoded_off = dist::task_request_from_payload(off_payload);
  ASSERT_TRUE(decoded_off.has_value());
  EXPECT_FALSE(decoded_off->telemetry);
  EXPECT_FALSE(decoded_off->collect_spans);
}

const GaugeSample* find_gauge(const Snapshot& snapshot,
                              std::string_view name) {
  for (const GaugeSample& sample : snapshot.gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

TEST(FederationDelta, OmitsUnchangedSeriesAndShipsCounterDiffs) {
  Snapshot baseline;
  baseline.counters.push_back(counter("moved_total", 5));
  baseline.counters.push_back(counter("static_total", 7));
  baseline.gauges.push_back(gauge("depth", 3));
  baseline.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 44.5));

  Snapshot current = baseline;
  current.counters[0].value = 9;

  const Snapshot delta = snapshot_delta(baseline, current);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].name, "moved_total");
  EXPECT_EQ(delta.counters[0].value, 4u);  // the diff, not the new absolute
  EXPECT_TRUE(delta.gauges.empty());       // unchanged gauge omitted
  EXPECT_TRUE(delta.histograms.empty());   // unchanged histogram omitted
}

TEST(FederationDelta, NewSeriesShipWholeAndChangedGaugesShipAbsolute) {
  Snapshot baseline;
  baseline.counters.push_back(counter("old_total", 5));
  baseline.gauges.push_back(gauge("depth", 3));

  Snapshot current = baseline;
  current.counters.push_back(counter("new_total", 11));
  current.gauges[0].value = -2;

  const Snapshot delta = snapshot_delta(baseline, current);
  const CounterSample* fresh = find_counter(delta, "new_total");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->value, 11u);  // unknown to the baseline: whole value
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, -2);  // gauges are instantaneous
}

TEST(FederationDelta, HistogramsDiffBucketWiseAndBoundChangesShipWhole) {
  Snapshot baseline;
  baseline.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 40.0));
  baseline.histograms.push_back(
      histogram("rebuilt_ms", {1.0}, {1, 1}, 2.0));

  Snapshot current;
  current.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 5, 2}, 55.5));
  // Same name, different bounds: the delta must ship the whole histogram,
  // not a meaningless bucket diff.
  current.histograms.push_back(
      histogram("rebuilt_ms", {1.0, 8.0}, {4, 2, 1}, 9.0));

  const Snapshot delta = snapshot_delta(baseline, current);
  const HistogramSample* lat = find_histogram(delta, "lat_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->buckets, (std::vector<std::uint64_t>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(lat->sum, 15.5);
  const HistogramSample* rebuilt = find_histogram(delta, "rebuilt_ms");
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->bounds, (std::vector<double>{1.0, 8.0}));
  EXPECT_EQ(rebuilt->buckets, (std::vector<std::uint64_t>{4, 2, 1}));
}

TEST(FederationDelta, ApplyReconstructsCurrentByteForByte) {
  Snapshot baseline;
  baseline.counters.push_back(counter("a_total", 5));
  baseline.counters.push_back(counter("b_total", 7));
  baseline.gauges.push_back(gauge("depth", 3));
  baseline.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 40.0));

  Snapshot current = baseline;
  current.counters[0].value = 12;
  current.counters.push_back(counter("c_total", 1));
  std::sort(current.counters.begin(), current.counters.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  current.gauges[0].value = 4;
  current.histograms[0].buckets = {2, 6, 1};
  current.histograms[0].count = 9;
  current.histograms[0].sum = 71.0;

  Snapshot rebuilt = baseline;
  apply_snapshot_delta(rebuilt, snapshot_delta(baseline, current));
  EXPECT_EQ(metrics_to_prometheus(rebuilt), metrics_to_prometheus(current));
}

TEST(FederationDelta, FleetDeltaChainMatchesWholeSnapshotByteForByte) {
  // The acceptance invariant: a manager fed baseline + deltas ends up with
  // exactly the fleet view a whole-snapshot manager has.
  Snapshot s0;
  s0.counters.push_back(counter("tasks_total", 2));
  s0.gauges.push_back(gauge("depth", 1));
  s0.histograms.push_back(histogram("lat_ms", {1.0}, {1, 0}, 0.5));

  Snapshot s1 = s0;
  s1.counters[0].value = 5;
  s1.histograms[0].buckets = {1, 2};
  s1.histograms[0].count = 3;
  s1.histograms[0].sum = 12.5;

  Snapshot s2 = s1;
  s2.counters[0].value = 9;
  s2.gauges[0].value = 4;

  FleetRegistry via_deltas;
  via_deltas.update_snapshot("w", s0);
  via_deltas.apply_snapshot_delta("w", snapshot_delta(s0, s1));
  via_deltas.apply_snapshot_delta("w", snapshot_delta(s1, s2));

  FleetRegistry via_whole;
  via_whole.update_snapshot("w", s2);

  EXPECT_EQ(metrics_to_prometheus(via_deltas.merged()),
            metrics_to_prometheus(via_whole.merged()));
}

TEST(FederationDelta, DeltaFrameIsMuchSmallerThanFullFrame) {
  Snapshot baseline;
  for (int i = 0; i < 60; ++i) {
    baseline.counters.push_back(
        counter("series_" + std::to_string(i) + "_total", 100 + i));
  }
  Snapshot current = baseline;
  current.counters[7].value += 1;

  const std::string full =
      json::serialize(snapshot_to_wire_json(current), false);
  const std::string delta = json::serialize(
      snapshot_to_wire_json(snapshot_delta(baseline, current)), false);
  // One moved counter out of 60: the delta frame should be a small
  // fraction of the full frame, not a constant-factor shave.
  EXPECT_LT(delta.size() * 10, full.size());
}

TEST(FederationTelemetry, SenderShipsWholeThenDeltaAndCountsBytes) {
  const auto bytes_shipped = [] {
    const Snapshot snapshot = Registry::global().snapshot();
    const CounterSample* sample =
        find_counter(snapshot, names::kWorkerTelemetryBytes);
    return sample != nullptr ? sample->value : 0u;
  };

  // A worker registry is never empty in practice; make the whole-snapshot
  // frame carry a realistic series count so the delta saving is visible.
  for (int i = 0; i < 40; ++i) {
    Registry::global()
        .counter("sender_size_test_" + std::to_string(i) + "_total")
        .add(1);
  }

  dist::TelemetrySender sender;
  const std::uint64_t bytes_before = bytes_shipped();
  const std::string first = sender.heartbeat_payload();
  const std::string second = sender.heartbeat_payload();
  EXPECT_GT(bytes_shipped(), bytes_before);

  auto first_parsed = dist::parse_heartbeat_telemetry(first);
  ASSERT_TRUE(first_parsed.has_value()) << first_parsed.error().to_string();
  ASSERT_TRUE(first_parsed->has_value());
  EXPECT_FALSE((*first_parsed)->delta);  // session starts with the registry
  EXPECT_FALSE((*first_parsed)->health.empty());

  auto second_parsed = dist::parse_heartbeat_telemetry(second);
  ASSERT_TRUE(second_parsed.has_value());
  ASSERT_TRUE(second_parsed->has_value());
  EXPECT_TRUE((*second_parsed)->delta);
  // The frame-size win the delta path exists for: the process registry is
  // large, the delta carries only what moved between the two calls.
  EXPECT_LT(second.size(), first.size());

  // reset() is the reconnect resync rule: next frame re-baselines.
  sender.reset();
  auto resynced = dist::parse_heartbeat_telemetry(sender.heartbeat_payload());
  ASSERT_TRUE(resynced.has_value());
  ASSERT_TRUE(resynced->has_value());
  EXPECT_FALSE((*resynced)->delta);
}

TEST(FederationTelemetry, SenderDeltaChainRebuildsTheRegistryView) {
  // End-to-end over the real wire payloads: a hub fed the sender's
  // whole-then-delta frames must equal a hub fed one final whole snapshot.
  dist::TelemetrySender sender;
  FleetRegistry via_deltas;

  const auto ingest = [&](const std::string& payload) {
    auto parsed = dist::parse_heartbeat_telemetry(payload);
    ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
    ASSERT_TRUE(parsed->has_value());
    if ((*parsed)->delta) {
      via_deltas.apply_snapshot_delta("w", (*parsed)->snapshot);
    } else {
      via_deltas.update_snapshot("w", (*parsed)->snapshot);
    }
  };

  ingest(sender.heartbeat_payload());
  Registry::global().counter("federation_delta_chain_test_total").add(3);
  ingest(sender.heartbeat_payload());
  Registry::global().counter("federation_delta_chain_test_total").add(2);
  // The final frame both advances the chain and captures the state the
  // whole-snapshot control below must match.
  auto last = dist::parse_heartbeat_telemetry(sender.heartbeat_payload());
  ASSERT_TRUE(last.has_value());
  ASSERT_TRUE(last->has_value());
  via_deltas.apply_snapshot_delta("w", (*last)->snapshot);

  Snapshot rebuilt = via_deltas.merged();
  const CounterSample* chained = find_counter(
      rebuilt, with_worker_label("federation_delta_chain_test_total", "w"));
  ASSERT_NE(chained, nullptr);
  EXPECT_EQ(chained->value, 5u);
}

/// A minimal worker heartbeat payload: one counter plus an explicit
/// verdict. Hub tests use this instead of heartbeat_telemetry_payload()
/// because in-process the "worker" shares the manager's registry, and a
/// real payload would echo manager-side fleet gauges back as worker series.
std::string synthetic_heartbeat(const std::string& health,
                                std::uint64_t tasks = 1) {
  Snapshot small;
  small.counters.push_back(counter("w_tasks_total", tasks));
  json::Object telemetry;
  telemetry.set("snapshot", snapshot_to_wire_json(small));
  telemetry.set("delta", false);
  telemetry.set("health", health);
  json::Object payload;
  payload.set("telemetry", std::move(telemetry));
  return json::serialize(json::Value(std::move(payload)));
}

TEST(FederationHub, LostWorkerTagsItsSeriesStale) {
  dist::TelemetryHub hub;
  hub.note_worker_state("w", "connected");
  hub.ingest_heartbeat("w", synthetic_heartbeat("ok"));

  Snapshot live = hub.fleet_snapshot();
  const GaugeSample* stale_gauge =
      find_gauge(
      live, with_worker_label(names::kFleetWorkersStale, "manager"));
  ASSERT_NE(stale_gauge, nullptr);
  EXPECT_EQ(stale_gauge->value, 0);

  hub.note_worker_state("w", "lost");
  Snapshot after = hub.fleet_snapshot();
  stale_gauge = find_gauge(
      after, with_worker_label(names::kFleetWorkersStale, "manager"));
  ASSERT_NE(stale_gauge, nullptr);
  EXPECT_EQ(stale_gauge->value, 1);
  bool tagged = false;
  for (const CounterSample& sample : after.counters) {
    if (sample.name.find("worker=\"w\",stale=\"true\"") !=
        std::string::npos) {
      tagged = true;
    }
  }
  EXPECT_TRUE(tagged);
  // The manager's own lane is live, never stale-tagged.
  for (const CounterSample& sample : after.counters) {
    EXPECT_EQ(sample.name.find("worker=\"manager\",stale"),
              std::string::npos)
        << sample.name;
  }
}

TEST(FederationHub, HeartbeatGraceExpiryMarksSilentWorkersStale) {
  dist::TelemetryHub hub;
  hub.set_heartbeat_grace(0.2);
  hub.ingest_heartbeat("gone", synthetic_heartbeat("ok"));
  hub.note_worker_state("gone", "disconnected");
  hub.ingest_heartbeat("idle", synthetic_heartbeat("ok"));
  hub.note_worker_state("idle", "connected");

  // Within the grace window nothing is stale yet.
  const GaugeSample* stale_gauge = find_gauge(
      hub.fleet_snapshot(),
      with_worker_label(names::kFleetWorkersStale, "manager"));
  ASSERT_NE(stale_gauge, nullptr);
  EXPECT_EQ(stale_gauge->value, 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  // Silent past the grace: the disconnected worker goes stale, the
  // connected-but-idle worker never does.
  stale_gauge =
      find_gauge(hub.fleet_snapshot(),
                 with_worker_label(names::kFleetWorkersStale, "manager"));
  ASSERT_NE(stale_gauge, nullptr);
  EXPECT_EQ(stale_gauge->value, 1);
  bool idle_tagged = false;
  for (const CounterSample& sample : hub.fleet_snapshot().counters) {
    if (sample.name.find("worker=\"idle\",stale") != std::string::npos) {
      idle_tagged = true;
    }
  }
  EXPECT_FALSE(idle_tagged);
}

TEST(FederationHub, HealthzFailsWithinGraceOfAWorkerLoss) {
  dist::TelemetryHub hub;
  hub.set_heartbeat_grace(0.05);
  hub.note_worker_state("w", "connected");
  hub.ingest_heartbeat("w", synthetic_heartbeat("ok"));
  EXPECT_NE(hub.fleet_health().level, HealthLevel::kFail);

  hub.note_worker_state("w", "lost");
  const HealthReport report = hub.fleet_health();
  EXPECT_EQ(report.level, HealthLevel::kFail);
  EXPECT_NE(health_summary(report).find("worker-staleness"),
            std::string::npos);
  const std::string body = hub.healthz_json_text();
  EXPECT_NE(body.find("\"status\": \"fail\""), std::string::npos);
  EXPECT_NE(body.find("worker-staleness"), std::string::npos);
  // The per-worker rollup names the lost worker too.
  EXPECT_NE(body.find("\"worker\": \"w\""), std::string::npos);
}

TEST(FederationHub, WorkerVerdictFoldsIntoFleetHealth) {
  dist::TelemetryHub hub;
  // Fleet rules that cannot fire on their own, so any non-ok rollup can
  // only come from the worker's piggybacked verdict.
  hub.set_health_rules({{"never", "no_such_metric_total", "", -1.0, -1.0}});
  hub.note_worker_state("w", "connected");

  Snapshot small;
  small.counters.push_back(counter("w_total", 1));
  json::Object telemetry;
  telemetry.set("snapshot", snapshot_to_wire_json(small));
  telemetry.set("delta", false);
  telemetry.set("health", "fail(boom)");
  json::Object payload;
  payload.set("telemetry", std::move(telemetry));
  hub.ingest_heartbeat("w", json::serialize(json::Value(std::move(payload))));

  const HealthReport report = hub.fleet_health();
  EXPECT_EQ(report.level, HealthLevel::kFail);
  EXPECT_NE(health_summary(report).find("worker:w"), std::string::npos);
}

/// One raw HTTP exchange against the hub's embedded endpoint.
std::string http_get(std::uint16_t port, const std::string& path,
                     const std::string& extra_headers = "") {
  auto conn = dist::connect_to({"127.0.0.1", port}, 2.0);
  if (!conn.has_value()) return "connect failed";
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: t\r\n" +
                              extra_headers + "Connection: close\r\n\r\n";
  if (!conn->send_all(request.data(), request.size()).ok()) {
    return "send failed";
  }
  std::string response;
  char byte = 0;
  while (conn->recv_exact(&byte, 1, 2.0).ok()) response.push_back(byte);
  return response;
}

TEST(FederationHub, EndpointRequiresBearerTokenWhenConfigured) {
  dist::TelemetryHub hub;
  hub.set_auth_token("sekrit");
  auto status = hub.start_endpoint({"127.0.0.1", 0});
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  const std::uint16_t port = hub.endpoint_port();

  const std::string anonymous = http_get(port, "/metrics");
  EXPECT_NE(anonymous.find("401"), std::string::npos) << anonymous;
  EXPECT_NE(anonymous.find("WWW-Authenticate: Bearer"), std::string::npos);

  const std::string wrong =
      http_get(port, "/metrics", "Authorization: Bearer nope\r\n");
  EXPECT_NE(wrong.find("401"), std::string::npos);

  const std::string authed =
      http_get(port, "/metrics", "Authorization: Bearer sekrit\r\n");
  EXPECT_NE(authed.find("200"), std::string::npos) << authed;
  EXPECT_NE(authed.find("mosaic_"), std::string::npos);

  // Rejections are observable: the unauthorized counter counted both.
  const CounterSample* rejected = find_counter(
      hub.fleet_snapshot(), std::string(names::kFleetEndpointUnauthorized));
  ASSERT_NE(rejected, nullptr);
  EXPECT_GE(rejected->value, 2u);
  hub.stop();
}

TEST(FederationHub, HealthzEndpointTurns503WhenAWorkerGoesStale) {
  dist::TelemetryHub hub;
  hub.set_heartbeat_grace(0.05);
  auto status = hub.start_endpoint({"127.0.0.1", 0});
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  const std::uint16_t port = hub.endpoint_port();

  hub.note_worker_state("w", "connected");
  hub.ingest_heartbeat("w", synthetic_heartbeat("ok"));
  const std::string healthy = http_get(port, "/healthz");
  EXPECT_NE(healthy.find("HTTP/1.1 200"), std::string::npos) << healthy;

  hub.note_worker_state("w", "lost");
  const std::string failing = http_get(port, "/healthz");
  EXPECT_NE(failing.find("HTTP/1.1 503"), std::string::npos) << failing;
  EXPECT_NE(failing.find("worker-staleness"), std::string::npos);

  // /profile serves the profiler summary on the same endpoint.
  const std::string profile = http_get(port, "/profile");
  EXPECT_NE(profile.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(profile.find("\"samples\""), std::string::npos);
  hub.stop();
}

}  // namespace
}  // namespace mosaic::obs
