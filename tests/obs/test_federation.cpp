// Tests for telemetry federation: the snapshot/span wire codecs, the fleet
// merge semantics (counters sum, gauges stay per-worker, histograms add
// bucket-wise with bound-mismatch rejection), merge determinism, the merged
// Chrome trace lanes, and the manager-side payload classification that
// degrades malformed telemetry instead of failing the task.
#include "obs/federation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/telemetry.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"

namespace mosaic::obs {
namespace {

CounterSample counter(std::string name, std::uint64_t value) {
  return {std::move(name), "", value};
}

GaugeSample gauge(std::string name, std::int64_t value) {
  return {std::move(name), "", value};
}

HistogramSample histogram(std::string name, std::vector<double> bounds,
                          std::vector<std::uint64_t> buckets, double sum) {
  HistogramSample sample;
  sample.name = std::move(name);
  sample.bounds = std::move(bounds);
  sample.buckets = std::move(buckets);
  for (const std::uint64_t bucket : sample.buckets) sample.count += bucket;
  sample.sum = sum;
  return sample;
}

const CounterSample* find_counter(const Snapshot& snapshot,
                                  std::string_view name) {
  for (const CounterSample& sample : snapshot.counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* find_histogram(const Snapshot& snapshot,
                                      std::string_view name) {
  for (const HistogramSample& sample : snapshot.histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

TEST(FederationWire, SnapshotRoundTripsThroughWireJson) {
  Snapshot snapshot;
  snapshot.counters.push_back(counter("a_total", 7));
  snapshot.gauges.push_back(gauge("depth", -3));
  snapshot.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 44.5));

  auto decoded = snapshot_from_wire_json(snapshot_to_wire_json(snapshot));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->counters.size(), 1u);
  EXPECT_EQ(decoded->counters[0].name, "a_total");
  EXPECT_EQ(decoded->counters[0].value, 7u);
  ASSERT_EQ(decoded->gauges.size(), 1u);
  EXPECT_EQ(decoded->gauges[0].value, -3);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  EXPECT_EQ(decoded->histograms[0].bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(decoded->histograms[0].buckets,
            (std::vector<std::uint64_t>{2, 3, 1}));
  EXPECT_EQ(decoded->histograms[0].count, 6u);
  EXPECT_DOUBLE_EQ(decoded->histograms[0].sum, 44.5);
}

TEST(FederationWire, RejectsBucketCountMismatch) {
  Snapshot snapshot;
  snapshot.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {2, 3, 1}, 44.5));
  json::Value wire = snapshot_to_wire_json(snapshot);
  // Drop one bucket: 2 bounds now claim 2 buckets instead of bounds+1.
  wire.as_object()
      .find("histograms")
      ->as_array()[0]
      .as_object()
      .find("buckets")
      ->as_array()
      .pop_back();
  auto decoded = snapshot_from_wire_json(wire);
  ASSERT_FALSE(decoded.has_value());
}

TEST(FederationWire, SpansRoundTripThroughWireJson) {
  std::vector<SpanEvent> events;
  events.push_back({"parse", 100, 250, 1});
  events.push_back({"merge", 300, 900, 2});
  auto decoded = spans_from_wire_json(spans_to_wire_json(events));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].name, "parse");
  EXPECT_EQ((*decoded)[0].start_ns, 100u);
  EXPECT_EQ((*decoded)[0].end_ns, 250u);
  EXPECT_EQ((*decoded)[1].tid, 2u);
}

TEST(FederationLabel, WorkerLabelGoesFirstAndEscapes) {
  EXPECT_EQ(with_worker_label("a_total", "h:1"), "a_total{worker=\"h:1\"}");
  // Already-labeled series get worker prepended so stripping
  // `worker="...",` recovers the bare name.
  EXPECT_EQ(with_worker_label("a_total{code=\"x\"}", "h:1"),
            "a_total{worker=\"h:1\",code=\"x\"}");
  EXPECT_EQ(with_worker_label("a_total", "q\"\\"),
            "a_total{worker=\"q\\\"\\\\\"}");
}

TEST(FederationMerge, CountersSumIntoBareTotals) {
  Snapshot one;
  one.counters.push_back(counter("tasks_total", 2));
  Snapshot two;
  two.counters.push_back(counter("tasks_total", 5));

  const Snapshot merged =
      merge_snapshots({{"w1", std::move(one)}, {"w2", std::move(two)}});
  const CounterSample* total = find_counter(merged, "tasks_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 7u);
  const CounterSample* w1 =
      find_counter(merged, "tasks_total{worker=\"w1\"}");
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->value, 2u);
  const CounterSample* w2 =
      find_counter(merged, "tasks_total{worker=\"w2\"}");
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->value, 5u);
}

TEST(FederationMerge, GaugesStayPerWorkerWithNoTotal) {
  Snapshot one;
  one.gauges.push_back(gauge("queue_depth", 4));
  Snapshot two;
  two.gauges.push_back(gauge("queue_depth", 9));

  const Snapshot merged =
      merge_snapshots({{"w1", std::move(one)}, {"w2", std::move(two)}});
  ASSERT_EQ(merged.gauges.size(), 2u);
  EXPECT_EQ(merged.gauges[0].name, "queue_depth{worker=\"w1\"}");
  EXPECT_EQ(merged.gauges[0].value, 4);
  EXPECT_EQ(merged.gauges[1].name, "queue_depth{worker=\"w2\"}");
  EXPECT_EQ(merged.gauges[1].value, 9);
  // No bare "queue_depth": summing point-in-time values is meaningless.
  for (const GaugeSample& sample : merged.gauges) {
    EXPECT_NE(sample.name, "queue_depth");
  }
}

TEST(FederationMerge, HistogramsAddBucketWise) {
  Snapshot one;
  one.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {1, 2, 0}, 12.0));
  Snapshot two;
  two.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {0, 1, 4}, 80.0));

  const Snapshot merged =
      merge_snapshots({{"w1", std::move(one)}, {"w2", std::move(two)}});
  const HistogramSample* total = find_histogram(merged, "lat_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->buckets, (std::vector<std::uint64_t>{1, 3, 4}));
  EXPECT_EQ(total->count, 8u);
  EXPECT_DOUBLE_EQ(total->sum, 92.0);
  EXPECT_NE(find_histogram(merged, "lat_ms{worker=\"w1\"}"), nullptr);
  EXPECT_NE(find_histogram(merged, "lat_ms{worker=\"w2\"}"), nullptr);
}

TEST(FederationMerge, MismatchedHistogramBoundsAreRejectedFromTotals) {
  Snapshot one;
  one.histograms.push_back(
      histogram("lat_ms", {1.0, 10.0}, {1, 2, 0}, 12.0));
  Snapshot two;
  two.histograms.push_back(
      histogram("lat_ms", {5.0, 50.0}, {0, 1, 4}, 80.0));

  MergeStats stats;
  const Snapshot merged = merge_snapshots(
      {{"w1", std::move(one)}, {"w2", std::move(two)}}, &stats);
  EXPECT_EQ(stats.histogram_bound_mismatches, 1u);
  // First-seen bounds win the total; the mismatched source still shows up
  // as its own labeled series.
  const HistogramSample* total = find_histogram(merged, "lat_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(total->count, 3u);
  const HistogramSample* w2 =
      find_histogram(merged, "lat_ms{worker=\"w2\"}");
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->bounds, (std::vector<double>{5.0, 50.0}));
}

TEST(FederationMerge, DeterministicRegardlessOfArrivalOrder) {
  const auto build = [](bool flip) {
    Snapshot one;
    one.counters.push_back(counter("tasks_total", 2));
    one.gauges.push_back(gauge("depth", 1));
    one.histograms.push_back(
        histogram("lat_ms", {1.0}, {1, 0}, 0.5));
    Snapshot two;
    two.counters.push_back(counter("tasks_total", 5));
    two.gauges.push_back(gauge("depth", 2));
    two.histograms.push_back(
        histogram("lat_ms", {1.0}, {0, 2}, 9.0));
    std::vector<std::pair<std::string, Snapshot>> sources;
    if (flip) {
      sources.emplace_back("w2", std::move(two));
      sources.emplace_back("w1", std::move(one));
    } else {
      sources.emplace_back("w1", std::move(one));
      sources.emplace_back("w2", std::move(two));
    }
    return merge_snapshots(std::move(sources));
  };

  const Snapshot forward = build(false);
  const Snapshot reversed = build(true);
  EXPECT_EQ(metrics_to_prometheus(forward), metrics_to_prometheus(reversed));
}

TEST(FederationTrace, MergedTraceHasOneNamedLanePerSource) {
  TraceLane manager;
  manager.process_name = "manager";
  manager.spans.push_back({"dispatch-run", 1'000'000, 9'000'000, 1});
  TraceLane worker;
  worker.process_name = "worker w1";
  worker.clock_shift_ns = -500'000;  // worker clock ran ahead by 500us
  worker.spans.push_back({"worker-task", 2'500'000, 4'500'000, 7});

  const std::string trace = chrome_trace_from_lanes({manager, worker});
  auto parsed = json::parse(trace);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  const auto& events =
      parsed->as_object().find("traceEvents")->as_array();

  std::vector<std::string> process_names;
  double worker_ts = -1.0;
  for (const json::Value& event : events) {
    const auto& obj = event.as_object();
    if (obj.find("name")->as_string() == "process_name") {
      process_names.push_back(obj.find("args")
                                  ->as_object()
                                  .find("name")
                                  ->as_string());
    }
    if (obj.find("ph")->as_string() == "X" &&
        obj.find("name")->as_string() == "worker-task") {
      worker_ts = obj.find("ts")->as_number();
    }
  }
  ASSERT_EQ(process_names.size(), 2u);
  EXPECT_EQ(process_names[0], "manager");
  EXPECT_EQ(process_names[1], "worker w1");
  // Timeline re-based to the earliest shifted span (manager's 1ms); the
  // worker span lands at (2.5ms - 0.5ms) - 1ms = 1ms on the shared axis.
  EXPECT_DOUBLE_EQ(worker_ts, 1000.0);
}

TEST(FederationRegistry, FleetRegistryMergesAndLabels) {
  FleetRegistry registry;
  Snapshot one;
  one.counters.push_back(counter("tasks_total", 2));
  registry.update_snapshot("w1", std::move(one));
  Snapshot two;
  two.counters.push_back(counter("tasks_total", 3));
  registry.update_snapshot("w2", std::move(two));
  // Last write wins per source: refresh w1 with a newer snapshot.
  Snapshot newer;
  newer.counters.push_back(counter("tasks_total", 4));
  registry.update_snapshot("w1", std::move(newer));

  EXPECT_EQ(registry.source_count(), 2u);
  const Snapshot merged = registry.merged();
  const CounterSample* total = find_counter(merged, "tasks_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 7u);
}

TEST(FederationTelemetry, HeartbeatPayloadClassification) {
  using dist::parse_heartbeat_telemetry;
  // Empty payload: a pre-federation heartbeat, no telemetry, no error.
  auto empty = parse_heartbeat_telemetry("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->has_value());
  // Valid JSON without a telemetry member: also plain liveness.
  auto plain = parse_heartbeat_telemetry("{\"other\":1}");
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->has_value());
  // Telemetry present but missing the required snapshot: an Error the
  // manager degrades on (count it, keep the task running).
  auto malformed = parse_heartbeat_telemetry("{\"telemetry\":{}}");
  EXPECT_FALSE(malformed.has_value());
  // Unparseable bytes: same degradation path.
  auto garbage = parse_heartbeat_telemetry("{nope");
  EXPECT_FALSE(garbage.has_value());
}

TEST(FederationTelemetry, TaskRequestTelemetryFlagsRoundTripAndDefaultOff) {
  dist::TaskRequest task;
  task.shard = {0, 2};
  task.paths = {"a.mbt"};
  const std::string off_payload = dist::task_request_to_payload(task);
  // Off = absent: pre-federation payload bytes, old workers parse it.
  EXPECT_EQ(off_payload.find("telemetry"), std::string::npos);
  EXPECT_EQ(off_payload.find("collect_spans"), std::string::npos);

  task.telemetry = true;
  task.collect_spans = true;
  auto decoded =
      dist::task_request_from_payload(dist::task_request_to_payload(task));
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_TRUE(decoded->telemetry);
  EXPECT_TRUE(decoded->collect_spans);

  auto decoded_off = dist::task_request_from_payload(off_payload);
  ASSERT_TRUE(decoded_off.has_value());
  EXPECT_FALSE(decoded_off->telemetry);
  EXPECT_FALSE(decoded_off->collect_spans);
}

}  // namespace
}  // namespace mosaic::obs
