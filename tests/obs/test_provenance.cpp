// Decision-provenance journal: sampling gate, JSONL round-trip, explain
// rendering, and the pipeline integration that makes `mosaic explain`
// reproduce the exact decision path.
#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/population.hpp"

namespace fs = std::filesystem;
using namespace mosaic;

namespace {

/// A fully populated record so round-trips cover every field.
obs::TraceProvenance sample_record() {
  obs::TraceProvenance record;
  record.app_key = "u1/app_v1";
  record.job_id = 42;
  record.runtime = 3600.0;
  record.nprocs = 128;

  record.read.merge = {100, 60, 40, 12.5, 11.0};
  record.read.segments = 39;
  record.read.periodicity.backend = "mean-shift";
  record.read.periodicity.periodic = true;
  record.read.periodicity.confidence = 0.42;
  record.read.periodicity.mean_shift.ran = true;
  record.read.periodicity.mean_shift.bandwidth = 0.12;
  record.read.periodicity.mean_shift.duration_cv_limit = 0.35;
  record.read.periodicity.mean_shift.volume_cv_limit = 0.5;
  record.read.periodicity.mean_shift.points = 39;
  record.read.periodicity.mean_shift.iterations = 87;
  record.read.periodicity.mean_shift.candidates.push_back(
      {20, 300.0, 0.1, 0.2, 0.4, 0.6, true, ""});
  record.read.periodicity.mean_shift.candidates.push_back(
      {5, 10.0, 0.9, 0.2, 0.1, 0.2, false, "duration-cv"});
  record.read.periodicity.groups.push_back({300.0, 1.5e9, 0.25, 20, "minute"});
  record.read.temporality.chunk_bytes = {1e9, 0.0, 0.0, 1e8};
  record.read.temporality.total_bytes = 1.1e9;
  record.read.temporality.min_bytes_threshold = 1e8;
  record.read.temporality.chunk_cv = 1.2;
  record.read.temporality.steady_cv_threshold = 0.25;
  record.read.temporality.dominance_factor = 2.0;
  record.read.temporality.dominant_chunk = 0;
  record.read.temporality.rule = "chunk-dominance";
  record.read.temporality.label = "on_start";
  record.read.temporality.confidence = 0.8;

  record.write.periodicity.backend = "frequency";
  record.write.periodicity.frequency.ran = true;
  record.write.periodicity.frequency.bin_seconds = 2.0;
  record.write.periodicity.frequency.min_score = 0.4;
  record.write.periodicity.frequency.peaks.push_back({60.0, 0.7, 12, true});
  record.write.temporality.rule = "insignificant";
  record.write.temporality.label = "insignificant";
  record.write.temporality.confidence = 1.0;

  record.metadata = {5000, 128,  80.0, 3.5, 7,    250.0, 50.0,
                     5,    50.0, false, true, true, false, 0.3};
  record.rules = {"[read] temporality on_start -> read_on_start",
                  "[metadata] 7 spike second(s) >= 5 -> "
                  "metadata_multiple_spikes"};
  record.categories = {"read_on_start", "metadata_multiple_spikes"};
  return record;
}

TEST(ProvenanceJson, RoundTripPreservesEveryField) {
  const obs::TraceProvenance record = sample_record();
  const auto parsed = obs::provenance_from_json(obs::provenance_to_json(record));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();

  EXPECT_EQ(parsed->app_key, record.app_key);
  EXPECT_EQ(parsed->job_id, record.job_id);
  EXPECT_DOUBLE_EQ(parsed->runtime, record.runtime);
  EXPECT_EQ(parsed->nprocs, record.nprocs);

  EXPECT_EQ(parsed->read.merge.raw_ops, 100u);
  EXPECT_EQ(parsed->read.merge.after_concurrent, 60u);
  EXPECT_EQ(parsed->read.merge.merged_ops, 40u);
  EXPECT_DOUBLE_EQ(parsed->read.merge.covered_seconds_before, 12.5);
  EXPECT_EQ(parsed->read.segments, 39u);

  const auto& ms = parsed->read.periodicity.mean_shift;
  EXPECT_TRUE(ms.ran);
  EXPECT_EQ(ms.points, 39u);
  EXPECT_EQ(ms.iterations, 87u);
  ASSERT_EQ(ms.candidates.size(), 2u);
  EXPECT_TRUE(ms.candidates[0].accepted);
  EXPECT_EQ(ms.candidates[1].rejected_by, "duration-cv");
  ASSERT_EQ(parsed->read.periodicity.groups.size(), 1u);
  EXPECT_EQ(parsed->read.periodicity.groups[0].magnitude, "minute");
  EXPECT_DOUBLE_EQ(parsed->read.periodicity.confidence, 0.42);

  EXPECT_EQ(parsed->read.temporality.chunk_bytes,
            record.read.temporality.chunk_bytes);
  EXPECT_EQ(parsed->read.temporality.rule, "chunk-dominance");
  EXPECT_EQ(parsed->read.temporality.dominant_chunk, 0);

  const auto& freq = parsed->write.periodicity.frequency;
  EXPECT_TRUE(freq.ran);
  ASSERT_EQ(freq.peaks.size(), 1u);
  EXPECT_TRUE(freq.peaks[0].accepted);

  EXPECT_EQ(parsed->metadata.total_requests, 5000u);
  EXPECT_EQ(parsed->metadata.spike_seconds, 7u);
  EXPECT_TRUE(parsed->metadata.multiple_spikes);
  EXPECT_FALSE(parsed->metadata.insignificant);
  EXPECT_EQ(parsed->rules, record.rules);
  EXPECT_EQ(parsed->categories, record.categories);
}

TEST(ProvenanceJson, RejectsNonObject) {
  EXPECT_FALSE(obs::provenance_from_json(json::Value(3.0)).has_value());
}

TEST(ProvenanceExplain, RendersTheDecisionPath) {
  const std::string text = obs::explain_text(sample_record());
  EXPECT_NE(text.find("u1/app_v1"), std::string::npos);
  EXPECT_NE(text.find("job 42"), std::string::npos);
  EXPECT_NE(text.find("[read] merge"), std::string::npos);
  EXPECT_NE(text.find("mean-shift"), std::string::npos);
  EXPECT_NE(text.find("duration-cv"), std::string::npos);
  EXPECT_NE(text.find("chunk-dominance"), std::string::npos);
  EXPECT_NE(text.find("metadata_multiple_spikes"), std::string::npos);
  EXPECT_NE(text.find("read_on_start"), std::string::npos);
}

TEST(ProvenanceJournal, SamplesOneInEvery) {
  auto& journal = obs::ProvenanceJournal::global();
  journal.disable();
  journal.reset();
  EXPECT_FALSE(journal.should_sample());

  journal.enable(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (journal.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);
  journal.disable();
  EXPECT_FALSE(journal.should_sample());
  journal.reset();
}

TEST(ProvenanceJournal, CollectSortsAndCounterTracksRecords) {
  auto& journal = obs::ProvenanceJournal::global();
  journal.disable();
  journal.reset();
  const std::uint64_t before =
      obs::Registry::global()
          .counter(obs::names::kProvenanceRecords)
          .value();

  obs::TraceProvenance b = sample_record();
  b.app_key = "b/app";
  b.job_id = 2;
  obs::TraceProvenance a1 = sample_record();
  a1.app_key = "a/app";
  a1.job_id = 9;
  obs::TraceProvenance a0 = sample_record();
  a0.app_key = "a/app";
  a0.job_id = 3;
  journal.record(std::move(b));
  journal.record(std::move(a1));
  journal.record(std::move(a0));

  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(obs::Registry::global()
                .counter(obs::names::kProvenanceRecords)
                .value(),
            before + 3);
  const std::vector<obs::TraceProvenance> sorted = journal.collect();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].app_key, "a/app");
  EXPECT_EQ(sorted[0].job_id, 3u);
  EXPECT_EQ(sorted[1].job_id, 9u);
  EXPECT_EQ(sorted[2].app_key, "b/app");
  journal.reset();
  EXPECT_EQ(journal.size(), 0u);
}

TEST(ProvenanceJournal, JsonlRoundTripThroughDisk) {
  auto& journal = obs::ProvenanceJournal::global();
  journal.disable();
  journal.reset();
  journal.record(sample_record());
  const std::string path =
      (fs::temp_directory_path() / "mosaic_provenance_test.jsonl").string();
  ASSERT_TRUE(journal.write_jsonl(path).ok());
  journal.reset();

  const auto loaded = obs::read_provenance_jsonl(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].app_key, "u1/app_v1");
  EXPECT_EQ((*loaded)[0].categories, sample_record().categories);
  fs::remove(path);
}

TEST(ProvenanceJournal, ReadReportsMalformedLine) {
  const std::string path =
      (fs::temp_directory_path() / "mosaic_provenance_bad.jsonl").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"app_key\":\"ok\"}\nnot json\n", f);
    std::fclose(f);
  }
  const auto loaded = obs::read_provenance_jsonl(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().message.find(":2:"), std::string::npos)
      << loaded.error().message;
  fs::remove(path);
}

/// The integration contract behind `mosaic explain`: the captured evidence
/// agrees with the pipeline's returned result, so rendering the record IS
/// rendering the decision path.
TEST(ProvenancePipeline, EvidenceAgreesWithAnalysisResult) {
  sim::PopulationConfig config;
  config.target_traces = 40;
  config.seed = 77;
  config.corruption_fraction = 0.0;
  const sim::Population population = sim::generate_population(config);

  const core::Analyzer analyzer;
  std::size_t checked = 0;
  for (const sim::LabeledTrace& labeled : population.traces) {
    obs::TraceProvenance evidence;
    const core::TraceResult result =
        analyzer.analyze(labeled.trace, &evidence);
    EXPECT_EQ(evidence.app_key, result.app_key);
    EXPECT_EQ(evidence.job_id, result.job_id);
    EXPECT_EQ(evidence.categories, result.categories.names());
    EXPECT_EQ(evidence.read.periodicity.periodic,
              result.read.periodicity.periodic);
    EXPECT_EQ(evidence.write.periodicity.periodic,
              result.write.periodicity.periodic);
    EXPECT_FALSE(evidence.read.temporality.rule.empty());
    EXPECT_FALSE(evidence.write.temporality.label.empty());
    EXPECT_FALSE(evidence.rules.empty());
    EXPECT_GE(evidence.read.temporality.confidence, 0.0);
    EXPECT_LE(evidence.read.temporality.confidence, 1.0);
    EXPECT_GE(evidence.metadata.confidence, 0.0);
    EXPECT_LE(evidence.metadata.confidence, 1.0);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

/// The journal gate inside analyze(): enabled with sampling 1, every trace
/// lands in the journal and matches a JSON round-trip of itself.
TEST(ProvenancePipeline, JournalGateCapturesSampledTraces) {
  auto& journal = obs::ProvenanceJournal::global();
  journal.disable();
  journal.reset();

  sim::PopulationConfig config;
  config.target_traces = 12;
  config.seed = 5;
  config.corruption_fraction = 0.0;
  const sim::Population population = sim::generate_population(config);

  const core::Analyzer analyzer;
  journal.enable(1);
  for (const sim::LabeledTrace& labeled : population.traces) {
    (void)analyzer.analyze(labeled.trace);
  }
  journal.disable();
  EXPECT_EQ(journal.size(), population.traces.size());
  journal.reset();
}

TEST(ProvenanceJournal, RingOverwritesOldestOnceCapacityIsReached) {
  auto& journal = obs::ProvenanceJournal::global();
  journal.reset();
  journal.enable(/*sample_every=*/1, /*capacity=*/4);

  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::TraceProvenance record;
    record.app_key = "u/ring";
    record.job_id = i;
    journal.record(std::move(record));
  }
  journal.disable();

  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped(), 6u);
  // The ring keeps the newest records; the first six were overwritten.
  const std::vector<obs::TraceProvenance> records = journal.collect();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].job_id, 6 + i);
  }

  journal.reset();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(ProvenanceJournal, ZeroCapacityClampsToOne) {
  auto& journal = obs::ProvenanceJournal::global();
  journal.reset();
  journal.enable(/*sample_every=*/1, /*capacity=*/0);

  for (std::uint64_t i = 0; i < 3; ++i) {
    obs::TraceProvenance record;
    record.job_id = i;
    journal.record(std::move(record));
  }
  journal.disable();

  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.dropped(), 2u);
  EXPECT_EQ(journal.collect().at(0).job_id, 2u);
  journal.reset();
}

}  // namespace
