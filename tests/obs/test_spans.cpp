// Span tracer tests: recording semantics, ring overflow, and the Chrome
// trace_event JSON schema (the golden contract chrome://tracing / Perfetto
// load). Spans are validated through json::parse rather than string
// comparison so formatting changes cannot silently break loadability.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"

namespace mosaic::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanTracer::global().disable();
    SpanTracer::global().reset();
  }
  void TearDown() override {
    SpanTracer::global().disable();
    SpanTracer::global().reset();
  }
};

TEST_F(SpanTest, DisabledTracerRecordsNothing) {
  { MOSAIC_SPAN("ignored"); }
  EXPECT_TRUE(SpanTracer::global().collect().empty());
}

TEST_F(SpanTest, RecordsNestedScopesInOrder) {
  SpanTracer::global().enable();
  {
    MOSAIC_SPAN("outer");
    { MOSAIC_SPAN("inner"); }
  }
  const auto spans = SpanTracer::global().collect();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by (tid, start): outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[1].end_ns);
}

TEST_F(SpanTest, PerThreadBuffersGetDistinctTids) {
  SpanTracer::global().enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) { MOSAIC_SPAN("work"); }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto spans = SpanTracer::global().collect();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * 10u);
  std::set<std::uint32_t> tids;
  for (const SpanEvent& span : spans) tids.insert(span.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(SpanTest, RingOverflowDropsOldestAndCounts) {
  // Capacity requests are clamped to a floor of 16.
  SpanTracer::global().enable(/*per_thread_capacity=*/16);
  for (int i = 0; i < 20; ++i) { MOSAIC_SPAN("span"); }
  const auto spans = SpanTracer::global().collect();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(SpanTracer::global().dropped(), 4u);
}

TEST_F(SpanTest, ChromeTraceJsonMatchesSchema) {
  SpanTracer::global().enable();
  { MOSAIC_SPAN("stage-a"); }
  { MOSAIC_SPAN("stage-b"); }
  const auto parsed = json::parse(SpanTracer::global().chrome_trace_json());
  ASSERT_TRUE(parsed.has_value()) << "trace JSON must parse";
  const json::Object& root = parsed->as_object();
  ASSERT_TRUE(root.contains("traceEvents"));
  EXPECT_EQ(root.find("displayTimeUnit")->as_string(), "ms");

  const json::Array& events = root.find("traceEvents")->as_array();
  bool saw_process_name = false;
  bool saw_thread_name = false;
  std::size_t complete_events = 0;
  for (const json::Value& event : events) {
    const json::Object& obj = event.as_object();
    const std::string& ph = obj.find("ph")->as_string();
    if (ph == "M") {
      const std::string& name = obj.find("name")->as_string();
      saw_process_name |= name == "process_name";
      saw_thread_name |= name == "thread_name";
      continue;
    }
    // Complete events: the schema chrome://tracing requires.
    ASSERT_EQ(ph, "X");
    ++complete_events;
    EXPECT_TRUE(obj.contains("name"));
    EXPECT_TRUE(obj.contains("cat"));
    EXPECT_TRUE(obj.contains("pid"));
    EXPECT_TRUE(obj.contains("tid"));
    ASSERT_TRUE(obj.contains("ts"));
    ASSERT_TRUE(obj.contains("dur"));
    EXPECT_GE(obj.find("dur")->as_number(), 0.0);
  }
  EXPECT_EQ(complete_events, 2u);
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
}

TEST_F(SpanTest, WriteChromeTraceProducesLoadableFile) {
  namespace fs = std::filesystem;
  SpanTracer::global().enable();
  { MOSAIC_SPAN("persisted"); }
  const fs::path path = fs::temp_directory_path() / "mosaic_span_test.json";
  fs::remove(path);
  ASSERT_TRUE(SpanTracer::global().write_chrome_trace(path.string()).ok());
  std::ifstream in(path);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  fs::remove(path);
  const auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->as_object().contains("traceEvents"));
}

TEST_F(SpanTest, ResetClearsBuffersAndSurvivesReRecording) {
  SpanTracer::global().enable();
  { MOSAIC_SPAN("before"); }
  SpanTracer::global().reset();
  EXPECT_TRUE(SpanTracer::global().collect().empty());
  { MOSAIC_SPAN("after"); }
  const auto spans = SpanTracer::global().collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "after");
}

TEST_F(SpanTest, CollectIsDeterministicallySorted) {
  SpanTracer::global().enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) { MOSAIC_SPAN("s"); }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto spans = SpanTracer::global().collect();
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const bool ordered =
        spans[i - 1].tid < spans[i].tid ||
        (spans[i - 1].tid == spans[i].tid &&
         spans[i - 1].start_ns <= spans[i].start_ns);
    EXPECT_TRUE(ordered) << "span " << i << " out of order";
  }
}

}  // namespace
}  // namespace mosaic::obs
