// Documentation drift guard: every metric name declared in obs/names.hpp
// must appear in the README's exported-metrics table, and every
// `mosaic_...` name the table documents must still exist in names.hpp.
// MOSAIC_SOURCE_DIR is injected by the test's CMake target.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// All `mosaic_...` identifiers declared as string literals in names.hpp.
std::set<std::string> names_in_header(const std::string& text) {
  std::set<std::string> names;
  const std::regex literal("\"(mosaic_[a-z0-9_]+)\"");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), literal);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

/// All `mosaic_...` names documented in README table rows. Label suffixes
/// like `{code=...}` are part of the rendered series, not the base name.
std::set<std::string> names_in_readme(const std::string& text) {
  std::set<std::string> names;
  const std::regex row("\\|\\s*`(mosaic_[a-z0-9_]+)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), row);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

TEST(MetricDocs, ReadmeTableMatchesNamesHeaderExactly) {
  const std::string source_dir = MOSAIC_SOURCE_DIR;
  const std::set<std::string> declared =
      names_in_header(read_file(source_dir + "/src/obs/names.hpp"));
  const std::set<std::string> documented =
      names_in_readme(read_file(source_dir + "/README.md"));
  ASSERT_FALSE(declared.empty());
  ASSERT_FALSE(documented.empty());

  for (const std::string& name : declared) {
    EXPECT_TRUE(documented.count(name))
        << name << " is declared in obs/names.hpp but missing from the "
        << "README metric table";
  }
  for (const std::string& name : documented) {
    EXPECT_TRUE(declared.count(name))
        << name << " is documented in the README metric table but not "
        << "declared in obs/names.hpp";
  }
}

}  // namespace
