// Documentation drift guard for the HTTP surface: every route registered
// on the shared server (http_.handle / http_.handle_prefix anywhere under
// src/) must appear in the docs/API.md endpoint table, and every endpoint
// the table documents must still be registered somewhere. Prefix routes
// are documented with a placeholder suffix (`/explain/<trace-id>`), which
// normalizes back to the registered prefix by truncating at '<'.
// MOSAIC_SOURCE_DIR is injected by the test's CMake target.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Route strings registered in one source file.
void routes_in_source(const std::string& text, std::set<std::string>* out) {
  const std::regex registration(
      "\\.handle(?:_prefix)?\\(\\s*\"(/[^\"]*)\"");
  for (auto it =
           std::sregex_iterator(text.begin(), text.end(), registration);
       it != std::sregex_iterator(); ++it) {
    out->insert((*it)[1].str());
  }
}

std::set<std::string> routes_in_tree(const std::string& src_dir) {
  std::set<std::string> routes;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(src_dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".cpp") continue;
    routes_in_source(read_file(entry.path().string()), &routes);
  }
  return routes;
}

/// Endpoint paths documented in API.md table rows, placeholder suffixes
/// stripped: `/explain/<trace-id>` -> `/explain/`.
std::set<std::string> routes_in_docs(const std::string& text) {
  std::set<std::string> routes;
  const std::regex row("\\|\\s*`(/[^`]*)`");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), row);
       it != std::sregex_iterator(); ++it) {
    std::string path = (*it)[1].str();
    if (const auto placeholder = path.find('<');
        placeholder != std::string::npos) {
      path.resize(placeholder);
    }
    routes.insert(path);
  }
  return routes;
}

TEST(ApiDocs, EndpointTableMatchesRegisteredRoutesExactly) {
  const std::string source_dir = MOSAIC_SOURCE_DIR;
  const std::set<std::string> registered =
      routes_in_tree(source_dir + "/src");
  const std::set<std::string> documented =
      routes_in_docs(read_file(source_dir + "/docs/API.md"));
  ASSERT_FALSE(registered.empty());
  ASSERT_FALSE(documented.empty());

  for (const std::string& route : registered) {
    EXPECT_TRUE(documented.count(route))
        << route << " is registered on the HTTP server but missing from "
        << "the docs/API.md endpoint table";
  }
  for (const std::string& route : documented) {
    EXPECT_TRUE(registered.count(route))
        << route << " is documented in docs/API.md but no source file "
        << "registers it";
  }
}

}  // namespace
