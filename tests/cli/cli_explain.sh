#!/usr/bin/env bash
# Golden-file test for `mosaic explain`: a fixed-seed synthetic trace must
# render a byte-identical decision path (text and JSON), and the recorded
# path (journal lookup via --provenance) must agree with live analysis.
set -euo pipefail
MOSAIC="$1"
GOLDEN="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Job 9000022 (u4/sim_rcw_v4) exercises the widest decision path in this
# population: merge-funnel reduction, chunk-dominance temporality on both
# axes, and two metadata rule firings.
"$MOSAIC" generate "$WORK/pop" --traces 24 --seed 1234 --format mbt \
    --corruption 0
JOB=9000022
FIRST="job_$JOB.mbt"

# Live analysis against the committed goldens.
"$MOSAIC" explain "$WORK/pop/$FIRST" > "$WORK/explain.txt"
diff "$GOLDEN/explain_job.txt" "$WORK/explain.txt"
"$MOSAIC" explain "$WORK/pop/$FIRST" --json > "$WORK/explain.json"
diff "$GOLDEN/explain_job.json" "$WORK/explain.json"

# Recorded path: journal the same trace, then look it up by job id and by
# app key — both must reproduce the live decision path exactly.
"$MOSAIC" analyze "$WORK/pop/$FIRST" --provenance "$WORK/prov" > /dev/null
"$MOSAIC" explain "$JOB" --provenance "$WORK/prov" > "$WORK/recorded.txt"
diff "$WORK/explain.txt" "$WORK/recorded.txt"
APP_KEY="$(python3 -c 'import json,sys; print(json.loads(open(sys.argv[1]).readline())["app_key"])' \
    "$WORK/prov/provenance.jsonl")"
"$MOSAIC" explain "$APP_KEY" --provenance "$WORK/prov" > "$WORK/by_key.txt"
diff "$WORK/explain.txt" "$WORK/by_key.txt"

# An unknown id is a lookup error, not a crash.
if "$MOSAIC" explain no_such_trace --provenance "$WORK/prov" > /dev/null 2>&1
then
  echo "unknown trace id should fail" >&2
  exit 1
fi
# A trace id without --provenance is a usage error.
if "$MOSAIC" explain 12345 > /dev/null 2>&1; then
  echo "trace id without --provenance should fail" >&2
  exit 1
fi

echo "cli explain ok"
