#!/usr/bin/env bash
# End-to-end smoke test of the `mosaic` CLI: generate -> analyze -> batch ->
# thresholds round trip. Any non-zero exit or missing output fails the test.
set -euo pipefail
MOSAIC="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$MOSAIC" thresholds > "$WORK/thresholds.json"
grep -q '"min_bytes"' "$WORK/thresholds.json"

"$MOSAIC" thresholds --write "$WORK/t2.json"
diff "$WORK/thresholds.json" "$WORK/t2.json"

"$MOSAIC" generate "$WORK/pop" --traces 60 --seed 7 --format mixed \
    --corruption 0.2
count=$(ls "$WORK/pop" | wc -l)
[ "$count" -eq 60 ]

# analyze returns 1 when some traces are corrupted (expected here), but must
# still categorize the rest.
"$MOSAIC" analyze "$WORK/pop" > "$WORK/analyze.txt" || true
grep -q 'insignificant' "$WORK/analyze.txt"

"$MOSAIC" batch "$WORK/pop" --json "$WORK/summary.json" > "$WORK/batch.txt"
grep -q 'funnel:' "$WORK/batch.txt"
grep -q '"preprocessing"' "$WORK/summary.json"

# Custom thresholds change behavior: an absurd min_bytes makes everything
# insignificant.
python3 - "$WORK/thresholds.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    config = json.load(f)
config["min_bytes"] = 10**15
with open(sys.argv[1], "w") as f:
    json.dump(config, f)
PY
"$MOSAIC" batch "$WORK/pop" --thresholds "$WORK/thresholds.json" \
    > "$WORK/strict.txt"
if grep -qE 'read_on_start|write_on_end' "$WORK/strict.txt"; then
  echo "expected everything insignificant under the strict config" >&2
  exit 1
fi

"$MOSAIC" report "$WORK/pop" --out "$WORK/report.md" > /dev/null
grep -q '# MOSAIC analysis report' "$WORK/report.md"
grep -q 'Pre-processing funnel' "$WORK/report.md"

echo "cli smoke ok"
