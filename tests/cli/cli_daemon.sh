#!/usr/bin/env bash
# Exercises the always-on service surface: `mosaic daemon` + `mosaic submit`
# over real loopback sockets. Core acceptance: submitting a trace runs the
# pipeline once, resubmitting the same trace is a result-cache hit (the
# cache-hit counter increments and no extra analysis runs), and the cached
# /explain/<trace-id> artifact is byte-identical to `mosaic explain --json`
# on the same file. Also covers bearer auth (401 + challenge header), the
# /results, /report, /metrics and /healthz routes, rejection of garbage
# submissions, watch-directory mode (including content-dedup of a copied
# file), graceful SIGTERM drain that flushes the provenance journal and
# metrics sinks, and flag-validation error cases.
set -euo pipefail
MOSAIC="$1"
WORK="$(mktemp -d)"
DAEMON_PIDS=()
cleanup() {
  for pid in "${DAEMON_PIDS[@]:-}"; do
    kill "$pid" 2> /dev/null || true
  done
  wait 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Raw-bash HTTP GET (no curl dependency in the test image). An optional
# third argument sends `Authorization: Bearer <token>`.
http_get() {
  local port="$1" path="$2" token="${3:-}"
  local auth=""
  [ -n "$token" ] && auth="Authorization: Bearer $token"$'\r\n'
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\n%s\r\n' "$path" "$auth" >&3
  cat <&3
  exec 3>&- 2> /dev/null || true
}

# Prints the body of a saved HTTP response (everything past the blank line).
strip_headers() {
  awk 'body { print } /^\r?$/ && !body { body = 1 }' "$1"
}

# Scrapes "<what> on <host>:<port>" lines from a daemon log.
scrape_port() {
  local log="$1" pattern="$2" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n "s/.*$pattern on 127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p" \
        "$log")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "daemon never announced '$pattern'; log:" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "$port"
}

"$MOSAIC" generate "$WORK/pop" --traces 6 --seed 9 --format mbt \
    --corruption 0
TRACE_A="$(ls "$WORK/pop"/*.mbt | head -1)"
TRACE_B="$(ls "$WORK/pop"/*.mbt | sed -n 2p)"

# ---- Submission mode: --listen + ephemeral HTTP port, bearer token. ----
TOKEN="daemon-bearer-sekrit"
"$MOSAIC" daemon --listen 127.0.0.1:0 --metrics-port 0 \
    --metrics-token "$TOKEN" --metrics "$WORK/daemon_metrics.json" \
    --provenance "$WORK/prov" > "$WORK/daemon.log" 2>&1 &
DAEMON_PIDS+=("$!")
DPID=$!
MPORT="$(scrape_port "$WORK/daemon.log" 'metrics endpoint listening')"
SPORT="$(scrape_port "$WORK/daemon.log" 'accepting submissions')"

# Bearer auth: anonymous and wrong-token requests bounce with 401 and a
# challenge header; the configured token gets through.
http_get "$MPORT" /results > "$WORK/anon.txt" 2> /dev/null || true
grep -q '401 Unauthorized' "$WORK/anon.txt"
grep -q 'WWW-Authenticate: Bearer' "$WORK/anon.txt"
http_get "$MPORT" /results "wrong-token" > "$WORK/badtok.txt" \
    2> /dev/null || true
grep -q '401 Unauthorized' "$WORK/badtok.txt"

# First submissions: two distinct traces, both analyzed, no cache hits.
"$MOSAIC" submit "$TRACE_A" "$TRACE_B" --daemon "127.0.0.1:$SPORT" \
    > "$WORK/submit1.txt"
[ "$(grep -c ': trace ' "$WORK/submit1.txt")" -eq 2 ]
if grep -q 'cache hit' "$WORK/submit1.txt"; then
  echo "first submissions must not be cache hits" >&2
  exit 1
fi

# Resubmission: the same trace must come back as a cache hit.
"$MOSAIC" submit "$TRACE_A" --daemon "127.0.0.1:$SPORT" \
    > "$WORK/submit2.txt"
grep -q 'cache hit' "$WORK/submit2.txt"

# The counters agree: 3 submissions, 2 analyses, 1 cache hit — and the
# pipeline ran exactly twice (a hit never re-enters the analyzer).
http_get "$MPORT" /metrics "$TOKEN" > "$WORK/metrics.txt" 2> /dev/null || true
grep -q '200 OK' "$WORK/metrics.txt"
grep -q '^mosaic_daemon_submissions_total 3$' "$WORK/metrics.txt"
grep -q '^mosaic_daemon_analyzed_total 2$' "$WORK/metrics.txt"
grep -q '^mosaic_cache_hits_total 1$' "$WORK/metrics.txt"
grep -q '^mosaic_cache_misses_total 2$' "$WORK/metrics.txt"
grep -q '^mosaic_traces_analyzed_total 2$' "$WORK/metrics.txt"
grep -q '^mosaic_cache_entries 2$' "$WORK/metrics.txt"

# /results carries the same story plus the per-trace board.
http_get "$MPORT" /results "$TOKEN" > "$WORK/results.txt" 2> /dev/null || true
grep -q '200 OK' "$WORK/results.txt"
grep -q '"submissions": 3' "$WORK/results.txt"
grep -q '"cache_hits": 1' "$WORK/results.txt"
grep -q '"trace_id"' "$WORK/results.txt"
grep -q '"categories"' "$WORK/results.txt"

# Byte-identity: the cached /explain artifact must match a fresh
# `mosaic explain --json` run over the same file, byte for byte.
TRACE_ID="$(basename "$TRACE_A" .mbt | sed 's/^job_//')"
http_get "$MPORT" "/explain/$TRACE_ID" "$TOKEN" > "$WORK/explain_http.txt" \
    2> /dev/null || true
grep -q '200 OK' "$WORK/explain_http.txt"
strip_headers "$WORK/explain_http.txt" > "$WORK/explain_http.json"
"$MOSAIC" explain "$TRACE_A" --json > "$WORK/explain_cli.json"
diff "$WORK/explain_cli.json" "$WORK/explain_http.json"

# Unknown ids (and evicted artifacts) answer 404 with a hint.
http_get "$MPORT" /explain/999999999 "$TOKEN" > "$WORK/explain404.txt" \
    2> /dev/null || true
grep -q '404 Not Found' "$WORK/explain404.txt"
grep -q 'no cached analysis' "$WORK/explain404.txt"

# /report and /healthz serve over the same endpoint.
http_get "$MPORT" /report "$TOKEN" > "$WORK/report.txt" 2> /dev/null || true
grep -q '200 OK' "$WORK/report.txt"
grep -q '# mosaic daemon report' "$WORK/report.txt"
grep -q 'cache hits: 1' "$WORK/report.txt"
http_get "$MPORT" /healthz "$TOKEN" > "$WORK/healthz.txt" 2> /dev/null || true
grep -Eq 'HTTP/1.1 (200 OK|503 Service Unavailable)' "$WORK/healthz.txt"
grep -Eq '"status": "(ok|warn|fail)"' "$WORK/healthz.txt"

# A garbage submission is rejected per-file (daemon stays up, exit 1).
printf 'not a trace\n' > "$WORK/garbage.mbt"
rc=0
"$MOSAIC" submit "$WORK/garbage.mbt" --daemon "127.0.0.1:$SPORT" \
    > /dev/null 2> "$WORK/reject.txt" || rc=$?
[ "$rc" -eq 1 ]
grep -q 'rejected' "$WORK/reject.txt"

# Graceful drain: SIGTERM finishes in-flight work, prints the lifetime
# summary, and flushes the provenance journal and metrics sinks.
kill -TERM "$DPID"
wait "$DPID"
grep -q 'daemon drained: 4 submission(s) (2 analyzed, 1 cache hit(s), 1 ' \
    "$WORK/daemon.log"
grep -q 'metrics written to' "$WORK/daemon.log"
grep -q 'provenance (2 record(s)) written to' "$WORK/daemon.log"
[ -s "$WORK/daemon_metrics.json" ]
[ -s "$WORK/daemon_metrics.json.prom" ]
[ -s "$WORK/prov/provenance.jsonl" ]
grep -q '^mosaic_cache_hits_total 1$' "$WORK/daemon_metrics.json.prom"

# Export the serving artifacts for CI upload when the harness asks.
if [ -n "${MOSAIC_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$MOSAIC_ARTIFACT_DIR"
  strip_headers "$WORK/results.txt" > "$MOSAIC_ARTIFACT_DIR/daemon_results.json"
  cp "$WORK/daemon_metrics.json.prom" \
      "$MOSAIC_ARTIFACT_DIR/daemon_cache_metrics.prom"
fi

# ---- Watch mode: new files are picked up by the poll sweep; a copied ----
# ---- file (same content, new path) dedups through the result cache. ----
mkdir -p "$WORK/incoming"
"$MOSAIC" daemon --watch "$WORK/incoming" --poll-interval 0.2 \
    --metrics-port 0 > "$WORK/watch.log" 2>&1 &
DAEMON_PIDS+=("$!")
WPID=$!
WPORT="$(scrape_port "$WORK/watch.log" 'metrics endpoint listening')"

cp "$TRACE_A" "$WORK/incoming/"
watched=""
for _ in $(seq 1 100); do
  http_get "$WPORT" /results > "$WORK/watch_results.txt" 2> /dev/null || true
  if grep -q '"analyzed": 1' "$WORK/watch_results.txt"; then
    watched=1
    break
  fi
  sleep 0.1
done
if [ -z "$watched" ]; then
  echo "watch sweep never analyzed the dropped trace" >&2
  cat "$WORK/watch_results.txt" "$WORK/watch.log" >&2
  exit 1
fi

# Same bytes under a new name: the sweep ingests it, the cache answers it.
cp "$TRACE_A" "$WORK/incoming/rerun_copy.mbt"
deduped=""
for _ in $(seq 1 100); do
  http_get "$WPORT" /results > "$WORK/watch_results.txt" 2> /dev/null || true
  if grep -q '"cache_hits": 1' "$WORK/watch_results.txt"; then
    deduped=1
    break
  fi
  sleep 0.1
done
if [ -z "$deduped" ]; then
  echo "copied trace never hit the result cache" >&2
  cat "$WORK/watch_results.txt" "$WORK/watch.log" >&2
  exit 1
fi
grep -q '"analyzed": 1' "$WORK/watch_results.txt"

kill -INT "$WPID"
wait "$WPID"
grep -q 'daemon drained:' "$WORK/watch.log"

# ---- Slow copy: a trace trickling into the watch dir across several ----
# ---- sweeps must not be ingested mid-copy. The sweep submits only   ----
# ---- after the file's size+mtime held still for two consecutive     ----
# ---- sweeps, so the funnel sees zero corrupt-prefix rejections and  ----
# ---- exactly one analysis once the copy settles.                    ----
mkdir -p "$WORK/slow_incoming"
"$MOSAIC" daemon --watch "$WORK/slow_incoming" --poll-interval 0.5 \
    --metrics-port 0 > "$WORK/slow.log" 2>&1 &
DAEMON_PIDS+=("$!")
SPID=$!
SLOWPORT="$(scrape_port "$WORK/slow.log" 'metrics endpoint listening')"

# Trickle the trace in ten chunks, appending faster than the sweep period
# so consecutive sweeps always see a moving signature until the copy ends.
SIZE="$(stat -c %s "$TRACE_B")"
CHUNK=$(( SIZE / 10 + 1 ))
SLOW="$WORK/slow_incoming/slow_copy.mbt"
: > "$SLOW"
for i in $(seq 0 9); do
  dd if="$TRACE_B" bs="$CHUNK" skip="$i" count=1 >> "$SLOW" 2> /dev/null \
      || true
  sleep 0.2
done
cmp "$TRACE_B" "$SLOW"

settled=""
for _ in $(seq 1 100); do
  http_get "$SLOWPORT" /results > "$WORK/slow_results.txt" 2> /dev/null || true
  if grep -q '"analyzed": 1' "$WORK/slow_results.txt"; then
    settled=1
    break
  fi
  sleep 0.1
done
if [ -z "$settled" ]; then
  echo "slow-copied trace was never analyzed after settling" >&2
  cat "$WORK/slow_results.txt" "$WORK/slow.log" >&2
  exit 1
fi
# The whole point: no sweep ever fed a half-copied prefix to the funnel.
grep -q '"rejected": 0' "$WORK/slow_results.txt"
grep -q '"submissions": 1' "$WORK/slow_results.txt"

kill -INT "$SPID"
wait "$SPID"
grep -q 'daemon drained:' "$WORK/slow.log"

# ---- Flag validation: actionable errors, not hangs. ----
if "$MOSAIC" daemon > /dev/null 2> "$WORK/err_none.txt"; then
  echo "daemon with no ingress should fail" >&2
  exit 1
fi
grep -q -- '--watch' "$WORK/err_none.txt"
grep -q -- '--listen' "$WORK/err_none.txt"
if "$MOSAIC" daemon --watch "$WORK/incoming" --listen 127.0.0.1:0 \
    > /dev/null 2> "$WORK/err_both.txt"; then
  echo "daemon with both ingresses should fail" >&2
  exit 1
fi
grep -q 'mutually exclusive' "$WORK/err_both.txt"
if "$MOSAIC" daemon --watch "$WORK/does-not-exist" > /dev/null 2>&1; then
  echo "daemon --watch on a missing directory should fail" >&2
  exit 1
fi
if "$MOSAIC" daemon --listen not-an-address > /dev/null 2>&1; then
  echo "daemon --listen not-an-address should fail" >&2
  exit 1
fi
if "$MOSAIC" daemon --watch "$WORK/incoming" --poll-interval 0 \
    > /dev/null 2>&1; then
  echo "daemon --poll-interval 0 should fail" >&2
  exit 1
fi
if "$MOSAIC" daemon --watch "$WORK/incoming" --cache-bytes -1 \
    > /dev/null 2>&1; then
  echo "daemon --cache-bytes -1 should fail" >&2
  exit 1
fi
if "$MOSAIC" submit "$TRACE_A" > /dev/null 2> "$WORK/err_nodaemon.txt"; then
  echo "submit without --daemon should fail" >&2
  exit 1
fi
grep -q -- '--daemon' "$WORK/err_nodaemon.txt"
if "$MOSAIC" submit --daemon 127.0.0.1:1 > /dev/null 2>&1; then
  echo "submit without files should fail" >&2
  exit 1
fi
if "$MOSAIC" submit "$WORK/does-not-exist.mbt" --daemon "127.0.0.1:1" \
    > /dev/null 2>&1; then
  echo "submit of a missing file should fail" >&2
  exit 1
fi

echo "cli daemon ok"
