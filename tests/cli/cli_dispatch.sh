#!/usr/bin/env bash
# Exercises the fault-tolerant distributed CLI surface: `mosaic worker` +
# `mosaic dispatch` over real loopback sockets. A worker killed mid-run by a
# seeded network fault must be detected, its shards reassigned, and the merged
# JSON must stay byte-identical to the single-shot run; same for full
# degradation (every worker lost) and for a manager crash resumed from the
# dispatch journal. Ends with flag-validation error cases.
set -euo pipefail
MOSAIC="$1"
WORK="$(mktemp -d)"
WORKER_PIDS=()
cleanup() {
  for pid in "${WORKER_PIDS[@]:-}"; do
    kill "$pid" 2> /dev/null || true
  done
  wait 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Starts a worker on an ephemeral port and echoes the scraped port number.
# Usage: start_worker <logfile> [extra worker flags...]
start_worker() {
  local log="$1"
  shift
  "$MOSAIC" worker --listen 127.0.0.1:0 "$@" > "$log" 2>&1 &
  WORKER_PIDS+=("$!")
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "worker failed to start; log:" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "$port"
}

"$MOSAIC" generate "$WORK/pop" --traces 50 --seed 9 --format mixed \
    --corruption 0.25
"$MOSAIC" batch "$WORK/pop" --json "$WORK/single.json" > /dev/null

# Happy path: two healthy workers, four shards, byte-identical merge.
P1="$(start_worker "$WORK/w1.log")"
P2="$(start_worker "$WORK/w2.log")"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P1,127.0.0.1:$P2" \
    --shards 4 --partials "$WORK/parts" --json "$WORK/dist.json" \
    > "$WORK/dispatch.txt"
diff "$WORK/single.json" "$WORK/dist.json"
grep -q 'shard 0: done' "$WORK/dispatch.txt"
grep -q 'funnel:' "$WORK/dispatch.txt"

# Kill one worker mid-run via a seeded fault (dies for good after one task):
# its remaining shards must be reassigned to the survivor, byte-identically.
P3="$(start_worker "$WORK/w3.log" --net-fault-inject 'seed=7,kill_after=1')"
P4="$(start_worker "$WORK/w4.log")"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P3,127.0.0.1:$P4" \
    --shards 4 --partials "$WORK/parts_kill" --json "$WORK/kill.json" \
    --connect-timeout 1 --reconnect-attempts 1 > "$WORK/kill.txt"
diff "$WORK/single.json" "$WORK/kill.json"
grep -q '1 worker(s) lost' "$WORK/kill.txt"
grep -Eq '[1-9][0-9]* reassigned' "$WORK/kill.txt"

# Graceful degradation: the only worker dies after one task, so the manager
# must finish the remaining shards in-process — still byte-identical.
P5="$(start_worker "$WORK/w5.log" --net-fault-inject 'seed=7,kill_after=1')"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P5" \
    --shards 3 --partials "$WORK/parts_deg" --json "$WORK/degraded.json" \
    --connect-timeout 1 --reconnect-attempts 1 > "$WORK/degraded.txt"
diff "$WORK/single.json" "$WORK/degraded.json"
grep -Eq '[1-9][0-9]* run degraded' "$WORK/degraded.txt"

# Manager crash + resume: abort after one journaled partial (exit 3, no
# merge), then --resume must replay the journal and only run the remainder,
# producing a byte-identical merge.
P6="$(start_worker "$WORK/w6.log")"
rc=0
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P6" \
    --shards 3 --partials "$WORK/parts_resume" --json "$WORK/resumed.json" \
    --journal "$WORK/dispatch.jsonl" --abort-after-partials 1 \
    > "$WORK/abort.txt" || rc=$?
[ "$rc" -eq 3 ]
[ -s "$WORK/dispatch.jsonl" ]
[ ! -e "$WORK/resumed.json" ]
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P6" \
    --shards 3 --partials "$WORK/parts_resume" --json "$WORK/resumed.json" \
    --journal "$WORK/dispatch.jsonl" --resume > "$WORK/resume.txt"
diff "$WORK/single.json" "$WORK/resumed.json"
grep -Eq '[1-9][0-9]* resumed from journal' "$WORK/resume.txt"

# Flag validation: malformed addresses and non-numeric/absurd durations must
# fail up front with usage errors, not hang or connect.
for bad_workers in "127.0.0.1" "host:" ":9100" "host:99999" ""; do
  if "$MOSAIC" dispatch "$WORK/pop" --workers "$bad_workers" \
      --partials "$WORK/p" > /dev/null 2>&1; then
    echo "--workers '$bad_workers' should fail" >&2
    exit 1
  fi
done
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --task-deadline banana > /dev/null 2>&1; then
  echo "--task-deadline banana should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --heartbeat-grace -1 > /dev/null 2>&1; then
  echo "--heartbeat-grace -1 should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --resume > /dev/null 2>&1; then
  echo "--resume without --journal should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --max-attempts 0 > /dev/null 2>&1; then
  echo "--max-attempts 0 should fail" >&2
  exit 1
fi
if "$MOSAIC" worker --listen not-an-address > /dev/null 2>&1; then
  echo "worker --listen not-an-address should fail" >&2
  exit 1
fi
if "$MOSAIC" worker --listen 127.0.0.1:0 --heartbeat-interval 0 \
    > /dev/null 2>&1; then
  echo "worker --heartbeat-interval 0 should fail" >&2
  exit 1
fi

echo "cli dispatch ok"
