#!/usr/bin/env bash
# Exercises the fault-tolerant distributed CLI surface: `mosaic worker` +
# `mosaic dispatch` over real loopback sockets. A worker killed mid-run by a
# seeded network fault must be detected, its shards reassigned, and the merged
# JSON must stay byte-identical to the single-shot run; same for full
# degradation (every worker lost) and for a manager crash resumed from the
# dispatch journal. A fleet-observability pass scrapes the manager's live
# /metrics + /status endpoint mid-run, then checks the merged fleet metrics
# (bare counter totals == sum of worker-labeled series) and the multi-lane
# Chrome trace. The observability pass also runs with --metrics-token (401
# without the bearer token, 200 with) and --profile (collapsed-stack
# artifact). A second endpoint pass kills a worker mid-run and polls
# /healthz until it reports fail(worker-staleness) with a 503. Ends with
# flag-validation error cases.
set -euo pipefail
MOSAIC="$1"
WORK="$(mktemp -d)"
WORKER_PIDS=()
cleanup() {
  for pid in "${WORKER_PIDS[@]:-}"; do
    kill "$pid" 2> /dev/null || true
  done
  wait 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Starts a worker on an ephemeral port and echoes the scraped port number.
# Usage: start_worker <logfile> [extra worker flags...]
start_worker() {
  local log="$1"
  shift
  "$MOSAIC" worker --listen 127.0.0.1:0 "$@" > "$log" 2>&1 &
  WORKER_PIDS+=("$!")
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "worker failed to start; log:" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "$port"
}

"$MOSAIC" generate "$WORK/pop" --traces 50 --seed 9 --format mixed \
    --corruption 0.25
"$MOSAIC" batch "$WORK/pop" --json "$WORK/single.json" > /dev/null

# Happy path: two healthy workers, four shards, byte-identical merge.
P1="$(start_worker "$WORK/w1.log")"
P2="$(start_worker "$WORK/w2.log")"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P1,127.0.0.1:$P2" \
    --shards 4 --partials "$WORK/parts" --json "$WORK/dist.json" \
    > "$WORK/dispatch.txt"
diff "$WORK/single.json" "$WORK/dist.json"
grep -q 'shard 0: done' "$WORK/dispatch.txt"
grep -q 'funnel:' "$WORK/dispatch.txt"

# Fleet observability: one worker stalls 2.5s per task so the run stays in
# flight long enough to scrape the live endpoint. Telemetry federation must
# not perturb the merged output: still byte-identical to single-shot.
WS1="$(start_worker "$WORK/ws1.log" \
    --net-fault-inject 'seed=7,stall=1.0,stall_ms=2500')"
WS2="$(start_worker "$WORK/ws2.log")"
TOKEN="test-bearer-sekrit"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$WS1,127.0.0.1:$WS2" \
    --shards 4 --partials "$WORK/parts_obs" --json "$WORK/obs.json" \
    --metrics "$WORK/fleet.json" --trace-events "$WORK/fleet_trace.json" \
    --metrics-port 0 --progress 0.2 --heartbeat-grace 10 \
    --metrics-token "$TOKEN" --profile "$WORK/fleet.collapsed" \
    > "$WORK/obs.txt" 2> "$WORK/obs.err" &
DISPATCH_PID=$!

mport=""
for _ in $(seq 1 100); do
  mport="$(sed -n \
      's/.*metrics endpoint listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$WORK/obs.txt")"
  [ -n "$mport" ] && break
  sleep 0.05
done
if [ -z "$mport" ]; then
  echo "dispatch never announced its metrics endpoint" >&2
  cat "$WORK/obs.txt" "$WORK/obs.err" >&2
  exit 1
fi

# Raw-bash HTTP GET (no curl dependency in the test image). An optional
# third argument sends `Authorization: Bearer <token>`.
http_get() {
  local port="$1" path="$2" token="${3:-}"
  local auth=""
  [ -n "$token" ] && auth="Authorization: Bearer $token"$'\r\n'
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\n%s\r\n' "$path" "$auth" >&3
  cat <&3
  exec 3>&- 2> /dev/null || true
}

# Bearer auth: anonymous and wrong-token requests bounce with 401 and a
# challenge header; the configured token gets through.
http_get "$mport" /metrics > "$WORK/anon.txt" 2> /dev/null || true
grep -q '401 Unauthorized' "$WORK/anon.txt"
grep -q 'WWW-Authenticate: Bearer' "$WORK/anon.txt"
http_get "$mport" /metrics "wrong-token" > "$WORK/badtok.txt" \
    2> /dev/null || true
grep -q '401 Unauthorized' "$WORK/badtok.txt"

# Poll the live endpoint until worker-labeled series show up (the healthy
# worker ships telemetry within its first heartbeat/partial, well inside the
# 2.5s the stalled worker is holding the run open).
live_ok=""
for _ in $(seq 1 120); do
  http_get "$mport" /metrics "$TOKEN" > "$WORK/live_metrics.txt" \
      2> /dev/null || true
  if grep -q '200 OK' "$WORK/live_metrics.txt" \
      && grep -q '^mosaic_dispatch_tasks_done_total ' \
          "$WORK/live_metrics.txt" \
      && grep -q 'worker="127.0.0.1:' "$WORK/live_metrics.txt"; then
    live_ok=1
    break
  fi
  sleep 0.05
done
if [ -z "$live_ok" ]; then
  echo "live /metrics never served worker-labeled fleet series" >&2
  cat "$WORK/live_metrics.txt" >&2
  exit 1
fi
http_get "$mport" /status "$TOKEN" > "$WORK/live_status.txt" \
    2> /dev/null || true
grep -q '200 OK' "$WORK/live_status.txt"
grep -q '"shards_total": 4' "$WORK/live_status.txt"
grep -q '"worker":' "$WORK/live_status.txt"

# /healthz serves a structured verdict over the authed endpoint. The level
# itself is corpus-dependent mid-run (the seeded corrupt files can push a
# worker's own eviction-ratio to warn or even fail on a small shard), so
# assert the contract — a 200-or-503 with a verdict body — and leave the
# deterministic fail transition to the worker-kill pass below.
http_get "$mport" /healthz "$TOKEN" > "$WORK/live_healthz.txt" \
    2> /dev/null || true
grep -Eq 'HTTP/1.1 (200 OK|503 Service Unavailable)' "$WORK/live_healthz.txt"
grep -Eq '"status": "(ok|warn|fail)"' "$WORK/live_healthz.txt"
grep -q '"summary"' "$WORK/live_healthz.txt"
grep -q '"workers"' "$WORK/live_healthz.txt"
http_get "$mport" /profile "$TOKEN" > "$WORK/live_profile.txt" \
    2> /dev/null || true
grep -q '200 OK' "$WORK/live_profile.txt"
grep -q '"samples"' "$WORK/live_profile.txt"
grep -q '"enabled": true' "$WORK/live_profile.txt"

wait "$DISPATCH_PID"
diff "$WORK/single.json" "$WORK/obs.json"
grep -q 'dispatch progress: shards' "$WORK/obs.err"
grep -q 'fleet metrics written to' "$WORK/obs.txt"
grep -q 'fleet trace events written to' "$WORK/obs.txt"
# --profile wrote the collapsed-stack artifact and announced it.
grep -q 'profile (' "$WORK/obs.txt"
[ -e "$WORK/fleet.collapsed" ]
# Any recorded stack must be flamegraph-collapsed: "frame;frame count".
if [ -s "$WORK/fleet.collapsed" ]; then
  grep -Eq '^[^ ]+ [0-9]+$' "$WORK/fleet.collapsed"
fi

# Merged-fleet invariant: every bare counter total must equal the sum of its
# worker-labeled series (the manager's own lane included). Histogram and
# gauge lines are excluded by the _total suffix / integer-value filters.
awk '
  $2 ~ /^[0-9]+$/ && $1 ~ /^[a-z0-9_]+_total$/ {
    bare[$1] = $2 + 0
    order[n++] = $1
  }
  $2 ~ /^[0-9]+$/ && $1 ~ /^[a-z0-9_]+_total\{worker="[^"]+"\}$/ {
    split($1, parts, "{")
    sum[parts[1]] += $2 + 0
  }
  END {
    if (n < 3) { print "too few bare counter totals (" n ")"; exit 1 }
    for (i = 0; i < n; i++) {
      name = order[i]
      if (bare[name] != sum[name] + 0) {
        print "fleet total mismatch for " name ": bare " bare[name] \
              " != worker sum " sum[name]
        exit 1
      }
    }
    print "fleet totals verified for " n " counter(s)"
  }
' "$WORK/fleet.json.prom"

# The merged Chrome trace must carry one named process lane per fleet member
# (manager + both workers) and real span events.
python3 - "$WORK/fleet_trace.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
lanes = {e["pid"]: e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
assert len(lanes) >= 3, f"expected >=3 process lanes, got {lanes}"
names = sorted(lanes.values())
assert "manager" in names, names
workers = [n for n in names if n.startswith("worker 127.0.0.1:")]
assert len(workers) >= 2, f"expected 2 worker lanes, got {names}"
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "merged trace has no span events"
worker_pids = {pid for pid, name in lanes.items() if name != "manager"}
assert any(e["pid"] in worker_pids for e in spans), \
    "no spans landed in any worker lane"
assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in spans)
print(f"fleet trace ok: {len(lanes)} lanes, {len(spans)} spans")
PY

# Export the fleet artifacts for CI upload when the harness asks for them.
if [ -n "${MOSAIC_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$MOSAIC_ARTIFACT_DIR"
  cp "$WORK/fleet.json" "$MOSAIC_ARTIFACT_DIR/fleet_metrics.json"
  cp "$WORK/fleet.json.prom" "$MOSAIC_ARTIFACT_DIR/fleet_metrics.prom"
  cp "$WORK/fleet_trace.json" "$MOSAIC_ARTIFACT_DIR/fleet_trace.json"
  cp "$WORK/fleet.collapsed" "$MOSAIC_ARTIFACT_DIR/fleet_profile.collapsed"
  cp "$WORK/live_healthz.txt" "$MOSAIC_ARTIFACT_DIR/healthz_ok.txt"
fi

# /healthz failure detection: one worker dies after its first task while a
# stalled survivor keeps the run alive; the endpoint must flip to 503
# fail(worker-staleness) within a heartbeat-grace of the kill, and the
# progress board must name the stale worker. The survivor's stall (1.5s,
# silent — no heartbeats while stalled) must stay under the grace (3s) or
# the manager would orphan it on every attempt and the run would never
# converge. No --metrics file here: stale runs tag worker series with
# stale="true", which is exactly what the bare-total-vs-worker-sum
# invariant above must never see.
WK="$(start_worker "$WORK/wk.log" --net-fault-inject 'seed=7,kill_after=1')"
WSURV="$(start_worker "$WORK/wsurv.log" \
    --net-fault-inject 'seed=11,stall=1.0,stall_ms=1500')"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$WK,127.0.0.1:$WSURV" \
    --shards 4 --partials "$WORK/parts_hz" --json "$WORK/hz.json" \
    --metrics-port 0 --progress 0.2 --heartbeat-grace 3 \
    --connect-timeout 1 --reconnect-attempts 1 \
    > "$WORK/hz.txt" 2> "$WORK/hz.err" &
HZ_PID=$!

hzport=""
for _ in $(seq 1 100); do
  hzport="$(sed -n \
      's/.*metrics endpoint listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$WORK/hz.txt")"
  [ -n "$hzport" ] && break
  sleep 0.05
done
[ -n "$hzport" ]

hz_failed=""
for _ in $(seq 1 400); do
  http_get "$hzport" /healthz > "$WORK/healthz_fail.txt" 2> /dev/null || true
  if grep -q '503 Service Unavailable' "$WORK/healthz_fail.txt" \
      && grep -q '"status": "fail"' "$WORK/healthz_fail.txt" \
      && grep -q 'worker-staleness' "$WORK/healthz_fail.txt"; then
    hz_failed=1
    break
  fi
  sleep 0.05
done
if [ -z "$hz_failed" ]; then
  echo "/healthz never reported the killed worker" >&2
  cat "$WORK/healthz_fail.txt" "$WORK/hz.txt" "$WORK/hz.err" >&2
  exit 1
fi

wait "$HZ_PID"
diff "$WORK/single.json" "$WORK/hz.json"
grep -q 'health: fail(worker-staleness' "$WORK/hz.err"
grep -q 'STALE' "$WORK/hz.err"

if [ -n "${MOSAIC_ARTIFACT_DIR:-}" ]; then
  cp "$WORK/healthz_fail.txt" "$MOSAIC_ARTIFACT_DIR/healthz_fail.txt"
fi

# Kill one worker mid-run via a seeded fault (dies for good after one task):
# its remaining shards must be reassigned to the survivor, byte-identically.
P3="$(start_worker "$WORK/w3.log" --net-fault-inject 'seed=7,kill_after=1')"
P4="$(start_worker "$WORK/w4.log")"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P3,127.0.0.1:$P4" \
    --shards 4 --partials "$WORK/parts_kill" --json "$WORK/kill.json" \
    --connect-timeout 1 --reconnect-attempts 1 > "$WORK/kill.txt"
diff "$WORK/single.json" "$WORK/kill.json"
grep -q '1 worker(s) lost' "$WORK/kill.txt"
grep -Eq '[1-9][0-9]* reassigned' "$WORK/kill.txt"

# Graceful degradation: the only worker dies after one task, so the manager
# must finish the remaining shards in-process — still byte-identical.
P5="$(start_worker "$WORK/w5.log" --net-fault-inject 'seed=7,kill_after=1')"
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P5" \
    --shards 3 --partials "$WORK/parts_deg" --json "$WORK/degraded.json" \
    --connect-timeout 1 --reconnect-attempts 1 > "$WORK/degraded.txt"
diff "$WORK/single.json" "$WORK/degraded.json"
grep -Eq '[1-9][0-9]* run degraded' "$WORK/degraded.txt"

# Manager crash + resume: abort after one journaled partial (exit 3, no
# merge), then --resume must replay the journal and only run the remainder,
# producing a byte-identical merge.
P6="$(start_worker "$WORK/w6.log")"
rc=0
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P6" \
    --shards 3 --partials "$WORK/parts_resume" --json "$WORK/resumed.json" \
    --journal "$WORK/dispatch.jsonl" --abort-after-partials 1 \
    > "$WORK/abort.txt" || rc=$?
[ "$rc" -eq 3 ]
[ -s "$WORK/dispatch.jsonl" ]
[ ! -e "$WORK/resumed.json" ]
"$MOSAIC" dispatch "$WORK/pop" --workers "127.0.0.1:$P6" \
    --shards 3 --partials "$WORK/parts_resume" --json "$WORK/resumed.json" \
    --journal "$WORK/dispatch.jsonl" --resume > "$WORK/resume.txt"
diff "$WORK/single.json" "$WORK/resumed.json"
grep -Eq '[1-9][0-9]* resumed from journal' "$WORK/resume.txt"

# Flag validation: malformed addresses and non-numeric/absurd durations must
# fail up front with usage errors, not hang or connect.
for bad_workers in "127.0.0.1" "host:" ":9100" "host:99999" ""; do
  if "$MOSAIC" dispatch "$WORK/pop" --workers "$bad_workers" \
      --partials "$WORK/p" > /dev/null 2>&1; then
    echo "--workers '$bad_workers' should fail" >&2
    exit 1
  fi
done
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --task-deadline banana > /dev/null 2>&1; then
  echo "--task-deadline banana should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --heartbeat-grace -1 > /dev/null 2>&1; then
  echo "--heartbeat-grace -1 should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --resume > /dev/null 2>&1; then
  echo "--resume without --journal should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --max-attempts 0 > /dev/null 2>&1; then
  echo "--max-attempts 0 should fail" >&2
  exit 1
fi
if "$MOSAIC" dispatch "$WORK/pop" --workers 127.0.0.1:9 \
    --partials "$WORK/p" --profile "$WORK/p.collapsed" --profile-hz 0 \
    > /dev/null 2>&1; then
  echo "--profile-hz 0 should fail" >&2
  exit 1
fi
if "$MOSAIC" worker --listen not-an-address > /dev/null 2>&1; then
  echo "worker --listen not-an-address should fail" >&2
  exit 1
fi
if "$MOSAIC" worker --listen 127.0.0.1:0 --heartbeat-interval 0 \
    > /dev/null 2>&1; then
  echo "worker --heartbeat-interval 0 should fail" >&2
  exit 1
fi

# Post-mortem health: `mosaic health` re-evaluates the fleet rules against
# the saved metrics artifact from the observability pass.
"$MOSAIC" health --fleet "$WORK/fleet.json" > "$WORK/health.txt"
grep -q 'health: ok' "$WORK/health.txt"
grep -q 'worker-staleness' "$WORK/health.txt"
"$MOSAIC" health --fleet --print-rules > "$WORK/rules.json"
grep -q '"rules"' "$WORK/rules.json"
if "$MOSAIC" health "$WORK/does-not-exist.json" > /dev/null 2>&1; then
  echo "health on a missing metrics file should fail" >&2
  exit 1
fi

echo "cli dispatch ok"
