#!/usr/bin/env bash
# Exercises the fault-tolerant ingest CLI surface: --fault-inject retry
# recovery, --quarantine, --journal + --abort-after + --resume (the resumed
# run must produce a byte-identical JSON summary), and --threads validation.
set -euo pipefail
MOSAIC="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$MOSAIC" generate "$WORK/pop" --traces 40 --seed 11 --format mixed \
    --corruption 0.25

# Transient EIO on every file: with retries available everything recovers and
# the funnel matches a fault-free run.
"$MOSAIC" batch "$WORK/pop" --json "$WORK/clean.json" > "$WORK/clean.txt"
"$MOSAIC" batch "$WORK/pop" --json "$WORK/faulty.json" \
    --fault-inject 'seed=3,eio=1.0,eio_failures=1' --retries 3 \
    > "$WORK/faulty.txt"
diff "$WORK/clean.json" "$WORK/faulty.json"
grep -q 'funnel:' "$WORK/faulty.txt"

# Retries exhausted: everything is evicted as io-error and the eviction table
# says so.
"$MOSAIC" batch "$WORK/pop" \
    --fault-inject 'seed=3,eio=1.0,eio_failures=99' --retries 1 \
    > "$WORK/exhausted.txt" || true
grep -q 'io-error' "$WORK/exhausted.txt"

# Quarantine: corrupt traces are moved aside; a rerun over the directory sees
# only healthy files.
cp -r "$WORK/pop" "$WORK/pop_q"
"$MOSAIC" batch "$WORK/pop_q" --quarantine "$WORK/bad" > "$WORK/quarantine.txt"
grep -q 'corrupt-trace' "$WORK/quarantine.txt"
[ "$(ls "$WORK/bad" | wc -l)" -gt 0 ]
"$MOSAIC" batch "$WORK/pop_q" > "$WORK/requarantine.txt"
if grep -q 'corrupt-trace' "$WORK/requarantine.txt"; then
  echo "quarantined files should not be rescanned" >&2
  exit 1
fi

# Crash-and-resume: abort after 10 files, resume from the journal, and demand
# a byte-identical summary versus the uninterrupted run.
"$MOSAIC" batch "$WORK/pop" --json "$WORK/reference.json" > /dev/null
rc=0
"$MOSAIC" batch "$WORK/pop" --json "$WORK/resumed.json" \
    --journal "$WORK/journal.jsonl" --abort-after 10 > /dev/null || rc=$?
[ "$rc" -eq 3 ]
[ -s "$WORK/journal.jsonl" ]
[ ! -e "$WORK/resumed.json" ]
"$MOSAIC" batch "$WORK/pop" --json "$WORK/resumed.json" \
    --journal "$WORK/journal.jsonl" --resume > "$WORK/resume.txt"
diff "$WORK/reference.json" "$WORK/resumed.json"

# Observability surface: a faulty run with --metrics/--trace-events/--progress
# must dump metrics (JSON + Prometheus) whose per-ErrorCode eviction counters
# exactly match the run's funnel summary, a Perfetto-loadable trace with
# per-thread stage spans, at least one heartbeat line plus the completion
# summary, and a provenance journal with one record per analyzed trace.
"$MOSAIC" batch "$WORK/pop" --json "$WORK/obs.json" \
    --fault-inject 'seed=5,eio=0.5,eio_failures=99' --retries 0 \
    --metrics "$WORK/metrics.json" --trace-events "$WORK/trace.json" \
    --provenance "$WORK/prov" \
    --progress 1 --log-json > "$WORK/obs.txt" 2> "$WORK/obs.err" || true
[ -s "$WORK/metrics.json" ]
[ -s "$WORK/metrics.json.prom" ]
[ -s "$WORK/trace.json" ]
[ -s "$WORK/prov/provenance.jsonl" ]
grep -q '# TYPE mosaic_funnel_evictions_total counter' "$WORK/metrics.json.prom"
grep -q '"msg":"progress:' "$WORK/obs.err"
grep -q '"msg":"progress: run complete:' "$WORK/obs.err"
python3 - "$WORK/metrics.json" "$WORK/obs.json" "$WORK/trace.json" <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
batch = json.load(open(sys.argv[2]))
trace = json.load(open(sys.argv[3]))

# Funnel counters must agree exactly with the batch summary's breakdown.
counters = metrics["counters"]
breakdown = batch["preprocessing"]["eviction_breakdown"]
assert breakdown, "expected evictions in this faulty run"
metric_evictions = {
    name.split('code="')[1].rstrip('"}'): value
    for name, value in counters.items()
    if name.startswith("mosaic_funnel_evictions_total{")
}
assert metric_evictions == breakdown, (metric_evictions, breakdown)
corruption = batch["preprocessing"]["corruption_breakdown"]
metric_corruption = {
    name.split('kind="')[1].rstrip('"}'): value
    for name, value in counters.items()
    if name.startswith("mosaic_funnel_corruption_total{")
}
assert metric_corruption == corruption, (metric_corruption, corruption)
assert counters["mosaic_funnel_valid_total"] == batch["preprocessing"]["valid"]

# Trace: per-thread metadata plus complete events for every pipeline stage.
events = trace["traceEvents"]
phases = {e["ph"] for e in events}
assert phases <= {"M", "X"}, phases
names = {e["name"] for e in events if e["ph"] == "X"}
for stage in ("load", "merge", "segment", "periodicity", "temporality",
              "metadata", "categorize", "analyze", "ingest-window"):
    assert stage in names, f"missing span {stage}: {sorted(names)}"
tids = {e.get("tid") for e in events if e["ph"] == "X"}
thread_names = {e["args"]["name"] for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"}
assert len(thread_names) == len(tids) > 0, (thread_names, tids)
for e in events:
    if e["ph"] == "X":
        assert e["dur"] >= 0 and e["ts"] >= 0
print("obs acceptance ok")
PY

# Provenance journal: one well-formed record per analyzed trace, in exact
# agreement with the journal's own counter in the metrics dump.
python3 - "$WORK/prov/provenance.jsonl" "$WORK/metrics.json" <<'PY'
import json, sys
records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
metrics = json.load(open(sys.argv[2]))
assert records, "expected provenance records from the sampled batch run"
assert metrics["counters"]["mosaic_provenance_records_total"] == len(records)
for r in records:
    for key in ("app_key", "job_id", "read", "write", "metadata", "rules",
                "categories"):
        assert key in r, (key, sorted(r))
    assert r["rules"], f"no rule firings recorded for {r['app_key']}"
    assert r["categories"], f"no categories recorded for {r['app_key']}"
print("provenance acceptance ok")
PY

# When MOSAIC_ARTIFACT_DIR is set (CI sets it), keep the telemetry files so
# the workflow can upload them before the trap removes the workdir.
if [ -n "${MOSAIC_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$MOSAIC_ARTIFACT_DIR"
  cp "$WORK/metrics.json" "$WORK/metrics.json.prom" "$WORK/trace.json" \
     "$WORK/prov/provenance.jsonl" "$MOSAIC_ARTIFACT_DIR/"
fi

# Sharded execution golden: independent --shard K/N runs merged with
# `mosaic merge` — and the in-process --shards N driver — must both
# reproduce the single-shot JSON summary byte for byte, including under
# fault injection (the shard filter runs before retry/eviction counting).
for k in 0 1; do
  "$MOSAIC" batch "$WORK/pop" --shard "$k/2" --partials "$WORK/parts2" \
      --fault-inject 'seed=3,eio=1.0,eio_failures=1' --retries 3 \
      --journal "$WORK/shard.jsonl" > "$WORK/shard$k.txt"
  grep -q "shard $k/2: ingested" "$WORK/shard$k.txt"
done
[ -s "$WORK/parts2/results.shard-0.json" ]
[ -s "$WORK/parts2/results.shard-1.json" ]
[ -s "$WORK/shard.shard-0.jsonl" ]  # per-shard journal, not a shared one
"$MOSAIC" merge "$WORK/parts2" --json "$WORK/sharded.json" \
    > "$WORK/merge.txt"
diff "$WORK/clean.json" "$WORK/sharded.json"
grep -q 'merged 2 partial' "$WORK/merge.txt"
"$MOSAIC" batch "$WORK/pop" --shards 4 --partials "$WORK/parts4" \
    --json "$WORK/inprocess.json" > /dev/null
diff "$WORK/clean.json" "$WORK/inprocess.json"

# The markdown report reduced from partials must match the ingest-path
# report (the drill-down sections differ only when --confusion is used).
"$MOSAIC" report "$WORK/pop" --out "$WORK/single.md" > /dev/null
"$MOSAIC" report --from-partials "$WORK/parts2" --out "$WORK/merged.md" \
    > /dev/null
diff "$WORK/single.md" "$WORK/merged.md"

# Partition validation: merging an incomplete partition must fail loudly.
mkdir -p "$WORK/partial_only"
cp "$WORK/parts2/results.shard-0.json" "$WORK/partial_only/"
if "$MOSAIC" merge "$WORK/partial_only" > /dev/null 2>&1; then
  echo "merging an incomplete partition should fail" >&2
  exit 1
fi

# Shard CLI validation: malformed specs and missing --partials are usage
# errors.
if "$MOSAIC" batch "$WORK/pop" --shard 2/2 --partials "$WORK/p" \
    > /dev/null 2>&1; then
  echo "--shard K/N with K >= N should fail" >&2
  exit 1
fi
if "$MOSAIC" batch "$WORK/pop" --shard 0/2 > /dev/null 2>&1; then
  echo "--shard without --partials should fail" >&2
  exit 1
fi

# --resume without --journal is a usage error, as is a negative --threads.
if "$MOSAIC" batch "$WORK/pop" --resume > /dev/null 2>&1; then
  echo "--resume without --journal should fail" >&2
  exit 1
fi
if "$MOSAIC" batch "$WORK/pop" --threads -2 > /dev/null 2>&1; then
  echo "negative --threads should fail" >&2
  exit 1
fi

echo "cli fault injection ok"
