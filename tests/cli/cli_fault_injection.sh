#!/usr/bin/env bash
# Exercises the fault-tolerant ingest CLI surface: --fault-inject retry
# recovery, --quarantine, --journal + --abort-after + --resume (the resumed
# run must produce a byte-identical JSON summary), and --threads validation.
set -euo pipefail
MOSAIC="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$MOSAIC" generate "$WORK/pop" --traces 40 --seed 11 --format mixed \
    --corruption 0.25

# Transient EIO on every file: with retries available everything recovers and
# the funnel matches a fault-free run.
"$MOSAIC" batch "$WORK/pop" --json "$WORK/clean.json" > "$WORK/clean.txt"
"$MOSAIC" batch "$WORK/pop" --json "$WORK/faulty.json" \
    --fault-inject 'seed=3,eio=1.0,eio_failures=1' --retries 3 \
    > "$WORK/faulty.txt"
diff "$WORK/clean.json" "$WORK/faulty.json"
grep -q 'funnel:' "$WORK/faulty.txt"

# Retries exhausted: everything is evicted as io-error and the eviction table
# says so.
"$MOSAIC" batch "$WORK/pop" \
    --fault-inject 'seed=3,eio=1.0,eio_failures=99' --retries 1 \
    > "$WORK/exhausted.txt" || true
grep -q 'io-error' "$WORK/exhausted.txt"

# Quarantine: corrupt traces are moved aside; a rerun over the directory sees
# only healthy files.
cp -r "$WORK/pop" "$WORK/pop_q"
"$MOSAIC" batch "$WORK/pop_q" --quarantine "$WORK/bad" > "$WORK/quarantine.txt"
grep -q 'corrupt-trace' "$WORK/quarantine.txt"
[ "$(ls "$WORK/bad" | wc -l)" -gt 0 ]
"$MOSAIC" batch "$WORK/pop_q" > "$WORK/requarantine.txt"
if grep -q 'corrupt-trace' "$WORK/requarantine.txt"; then
  echo "quarantined files should not be rescanned" >&2
  exit 1
fi

# Crash-and-resume: abort after 10 files, resume from the journal, and demand
# a byte-identical summary versus the uninterrupted run.
"$MOSAIC" batch "$WORK/pop" --json "$WORK/reference.json" > /dev/null
rc=0
"$MOSAIC" batch "$WORK/pop" --json "$WORK/resumed.json" \
    --journal "$WORK/journal.jsonl" --abort-after 10 > /dev/null || rc=$?
[ "$rc" -eq 3 ]
[ -s "$WORK/journal.jsonl" ]
[ ! -e "$WORK/resumed.json" ]
"$MOSAIC" batch "$WORK/pop" --json "$WORK/resumed.json" \
    --journal "$WORK/journal.jsonl" --resume > "$WORK/resume.txt"
diff "$WORK/reference.json" "$WORK/resumed.json"

# --resume without --journal is a usage error, as is a negative --threads.
if "$MOSAIC" batch "$WORK/pop" --resume > /dev/null 2>&1; then
  echo "--resume without --journal should fail" >&2
  exit 1
fi
if "$MOSAIC" batch "$WORK/pop" --threads -2 > /dev/null 2>&1; then
  echo "negative --threads should fail" >&2
  exit 1
fi

echo "cli fault injection ok"
