#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mosaic::trace {
namespace {

/// A minimal valid trace: one file read early, one file written late.
Trace make_valid_trace() {
  Trace t;
  t.meta.job_id = 1;
  t.meta.app_name = "app";
  t.meta.user = "u1";
  t.meta.nprocs = 8;
  t.meta.start_time = 1.5e9;
  t.meta.run_time = 1000.0;

  FileRecord input;
  input.file_id = 10;
  input.rank = kSharedRank;
  input.bytes_read = 1 << 20;
  input.reads = 4;
  input.opens = 8;
  input.closes = 8;
  input.seeks = 2;
  input.open_ts = 1.0;
  input.close_ts = 20.0;
  input.first_read_ts = 2.0;
  input.last_read_ts = 18.0;
  t.files.push_back(input);

  FileRecord output;
  output.file_id = 11;
  output.rank = 0;
  output.bytes_written = 2 << 20;
  output.writes = 8;
  output.opens = 1;
  output.closes = 1;
  output.open_ts = 900.0;
  output.close_ts = 990.0;
  output.first_write_ts = 905.0;
  output.last_write_ts = 985.0;
  t.files.push_back(output);
  return t;
}

TEST(TraceTotals, SumsAcrossFiles) {
  const Trace t = make_valid_trace();
  EXPECT_EQ(t.total_bytes_read(), 1u << 20);
  EXPECT_EQ(t.total_bytes_written(), 2u << 20);
  EXPECT_EQ(t.total_bytes(), 3u << 20);
  EXPECT_EQ(t.total_metadata_ops(), 8u + 8u + 2u + 1u + 1u);
}

TEST(TraceAppKey, CombinesUserAndApp) {
  const Trace t = make_valid_trace();
  EXPECT_EQ(t.app_key(), "u1/app");
}

TEST(IoOp, DurationAndOverlap) {
  const IoOp a{.start = 1.0, .end = 5.0, .bytes = 10};
  const IoOp b{.start = 4.0, .end = 8.0, .bytes = 10};
  const IoOp c{.start = 6.0, .end = 9.0, .bytes = 10};
  EXPECT_DOUBLE_EQ(a.duration(), 4.0);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(Validate, AcceptsValidTrace) {
  const ValidityReport report = validate(make_valid_trace());
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.kind, CorruptionKind::kNone);
}

TEST(Validate, RejectsNonPositiveRuntime) {
  Trace t = make_valid_trace();
  t.meta.run_time = 0.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kNonPositiveRuntime);
  t.meta.run_time = -5.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kNonPositiveRuntime);
}

TEST(Validate, RejectsNanRuntime) {
  Trace t = make_valid_trace();
  t.meta.run_time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(validate(t).kind, CorruptionKind::kNonFiniteValue);
}

TEST(Validate, RejectsZeroRanks) {
  Trace t = make_valid_trace();
  t.meta.nprocs = 0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kZeroRanks);
}

TEST(Validate, RejectsNegativeTimestamp) {
  Trace t = make_valid_trace();
  t.files[0].open_ts = -3.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kNegativeTimestamp);
}

TEST(Validate, RejectsInvertedOpenClose) {
  Trace t = make_valid_trace();
  t.files[0].open_ts = 50.0;
  t.files[0].close_ts = 10.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kInvertedWindow);
}

TEST(Validate, RejectsInvertedAccessWindow) {
  Trace t = make_valid_trace();
  t.files[0].first_read_ts = 18.0;
  t.files[0].last_read_ts = 2.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kInvertedWindow);
}

TEST(Validate, RejectsCloseAfterJobEnd) {
  // The paper's corruption example: deallocation recorded past execution end.
  Trace t = make_valid_trace();
  t.files[1].close_ts = 5000.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kAccessOutsideJob);
}

TEST(Validate, RejectsAccessOutsideOpenWindow) {
  Trace t = make_valid_trace();
  t.files[0].first_read_ts = 500.0;  // way past close_ts=20
  t.files[0].last_read_ts = 600.0;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kAccessOutsideOpen);
}

TEST(Validate, RejectsBytesWithoutCalls) {
  Trace t = make_valid_trace();
  t.files[0].reads = 0;  // bytes_read stays > 0
  EXPECT_EQ(validate(t).kind, CorruptionKind::kCounterMismatch);
}

TEST(Validate, RejectsBytesWithoutWindow) {
  Trace t = make_valid_trace();
  t.files[0].first_read_ts = kNoTimestamp;
  t.files[0].last_read_ts = kNoTimestamp;
  EXPECT_EQ(validate(t).kind, CorruptionKind::kCounterMismatch);
}

TEST(Validate, SlackAbsorbsSmallSkew) {
  Trace t = make_valid_trace();
  t.files[1].close_ts = t.meta.run_time + 0.5;  // within 1s slack
  EXPECT_TRUE(validate(t).valid());
  t.files[1].close_ts = t.meta.run_time + 5.0;
  EXPECT_FALSE(validate(t, 1.0).valid());
  EXPECT_TRUE(validate(t, 10.0).valid());
}

TEST(Validate, EmptyTraceIsValid) {
  Trace t;
  t.meta.run_time = 100.0;
  t.meta.nprocs = 1;
  EXPECT_TRUE(validate(t).valid());
}

TEST(ExtractOps, ReadAndWriteSeparated) {
  const Trace t = make_valid_trace();
  const auto reads = extract_ops(t, OpKind::kRead);
  const auto writes = extract_ops(t, OpKind::kWrite);
  ASSERT_EQ(reads.size(), 1u);
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_DOUBLE_EQ(reads[0].start, 2.0);
  EXPECT_DOUBLE_EQ(reads[0].end, 18.0);
  EXPECT_EQ(reads[0].bytes, 1u << 20);
  EXPECT_EQ(reads[0].kind, OpKind::kRead);
  EXPECT_DOUBLE_EQ(writes[0].start, 905.0);
  EXPECT_EQ(writes[0].rank, 0);
}

TEST(ExtractOps, SkipsEmptyWindows) {
  Trace t = make_valid_trace();
  t.files[0].bytes_read = 0;
  t.files[0].reads = 0;
  t.files[0].first_read_ts = kNoTimestamp;
  t.files[0].last_read_ts = kNoTimestamp;
  EXPECT_TRUE(extract_ops(t, OpKind::kRead).empty());
}

TEST(ExtractOps, WidensZeroLengthWindows) {
  Trace t = make_valid_trace();
  t.files[0].first_read_ts = 5.0;
  t.files[0].last_read_ts = 5.0;
  const auto ops = extract_ops(t, OpKind::kRead, 0.01);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_GT(ops[0].duration(), 0.0);
  EXPECT_DOUBLE_EQ(ops[0].end, 5.01);
}

TEST(ExtractOps, SortedByStart) {
  Trace t = make_valid_trace();
  // Add an earlier read on a second file.
  FileRecord early = t.files[0];
  early.file_id = 99;
  early.first_read_ts = 0.5;
  early.last_read_ts = 0.8;
  early.open_ts = 0.4;
  early.close_ts = 1.0;
  t.files.push_back(early);
  const auto ops = extract_ops(t, OpKind::kRead);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_LT(ops[0].start, ops[1].start);
}

TEST(MetadataTimeline, OpensSeeksAtOpenClosesAtClose) {
  const Trace t = make_valid_trace();
  const auto events = metadata_timeline(t);
  ASSERT_EQ(events.size(), 4u);
  // Sorted by time: file0 open (1.0), file0 close (20.0), file1 open (900),
  // file1 close (990).
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[0].requests, 8u + 2u);  // opens + seeks co-located
  EXPECT_DOUBLE_EQ(events[1].time, 20.0);
  EXPECT_EQ(events[1].requests, 8u);
  EXPECT_DOUBLE_EQ(events[3].time, 990.0);
  EXPECT_EQ(events[3].requests, 1u);
}

TEST(MetadataTimeline, SkipsZeroCountRecords) {
  Trace t;
  t.meta.run_time = 10.0;
  FileRecord quiet;
  quiet.opens = 0;
  quiet.closes = 0;
  quiet.seeks = 0;
  t.files.push_back(quiet);
  EXPECT_TRUE(metadata_timeline(t).empty());
}

TEST(OpKindName, Names) {
  EXPECT_STREQ(op_kind_name(OpKind::kRead), "read");
  EXPECT_STREQ(op_kind_name(OpKind::kWrite), "write");
}

TEST(CorruptionKindName, AllDistinct) {
  EXPECT_STREQ(corruption_kind_name(CorruptionKind::kNone), "none");
  EXPECT_STREQ(corruption_kind_name(CorruptionKind::kAccessOutsideJob),
               "access-outside-job");
  EXPECT_STREQ(corruption_kind_name(CorruptionKind::kCounterMismatch),
               "counter-mismatch");
}

}  // namespace
}  // namespace mosaic::trace
