#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mosaic::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto fields = split(",a,,b,", ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[4], "");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto fields = split_whitespace("  a \t b\n\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t ").empty());
}

TEST(StartsWith, Matches) {
  EXPECT_TRUE(starts_with("POSIX_OPENS", "POSIX"));
  EXPECT_FALSE(starts_with("POSIX", "POSIX_OPENS"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int(" 7 "), 7);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("12.5").has_value());
}

TEST(ParseUint, RejectsNegative) {
  EXPECT_EQ(parse_uint("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(parse_uint("-1").has_value());
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*parse_double("42"), 42.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(FormatBytes, UnitsScale) {
  EXPECT_EQ(format_bytes(512.0), "512 B");
  EXPECT_EQ(format_bytes(1536.0), "1.50 KiB");
  EXPECT_EQ(format_bytes(1073741824.0), "1.00 GiB");
}

TEST(FormatDuration, Ranges) {
  EXPECT_EQ(format_duration(0.5), "500 ms");
  EXPECT_EQ(format_duration(12.34), "12.3 s");
  EXPECT_EQ(format_duration(125.0), "2m 05s");
  EXPECT_EQ(format_duration(7380.0), "2h 03m");
}

TEST(FormatPercent, OneDecimal) {
  EXPECT_EQ(format_percent(0.375), "37.5%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 42!"), "mixed 42!");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace mosaic::util
