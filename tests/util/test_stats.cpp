#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace mosaic::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.coefficient_of_variation(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // textbook population variance
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.coefficient_of_variation(), 0.4);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStats empty;
  a.merge(empty);  // non-empty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
}

TEST(Summarize, MatchesRunningStats) {
  const std::array<double, 5> values{1.0, 2.0, 3.0, 4.0, 10.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 20.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::array<double, 5> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::array<double, 4> values{0.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 15.0);
}

TEST(CoefficientOfVariation, UniformChunksAreSteady) {
  const std::array<double, 4> even{100.0, 100.0, 100.0, 100.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(even), 0.0);
  const std::array<double, 4> skewed{400.0, 1.0, 1.0, 1.0};
  EXPECT_GT(coefficient_of_variation(skewed), 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into bin 0
  h.add(100.0);  // clamps into bin 9
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10.0);
  h.add(1.7, 5.0);
  EXPECT_DOUBLE_EQ(h.count(1), 15.0);
  EXPECT_EQ(h.peak_bin(), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
  h.add(12.0);  // [12,14) is bin 1
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(Histogram, PeakBinBreaksTiesLow) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(2.5);
  EXPECT_EQ(h.peak_bin(), 0u);
}

// Regression coverage for the edge-clamp rewrite: the clamp now happens in
// double space before any integer conversion, so the adversarial inputs
// below have defined, deterministic bins instead of a double->integer cast
// with undefined behavior — while every in-range value keeps its old bin.
TEST(Histogram, ValueAtHiLandsInLastBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);  // == hi exactly
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, NonFiniteAndHugeValuesClampDeterministically) {
  Histogram h(0.0, 4.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN(), 1.0);
  h.add(std::numeric_limits<double>::infinity(), 2.0);
  h.add(1e300, 4.0);
  h.add(-std::numeric_limits<double>::infinity(), 8.0);
  h.add(-1e300, 16.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0 + 2.0 + 4.0);  // NaN and +huge: last bin
  EXPECT_DOUBLE_EQ(h.count(0), 8.0 + 16.0);       // -huge: first bin
  EXPECT_DOUBLE_EQ(h.total(), 31.0);
}

TEST(Histogram, InRangeBinsMatchTheOriginalFormulation) {
  // Metric-byte stability of the funnel histograms: for every in-range
  // value the rewritten clamp must pick the same bin as the original
  // floor-then-clamp-in-integer-space code, weight for weight.
  constexpr std::size_t kBins = 50;
  Histogram h(0.0, 100.0, kBins);
  std::array<double, kBins> reference{};
  for (int i = 0; i < 1000; ++i) {
    const double value = static_cast<double>(i) * 0.1;
    const double weight = 1.0 + static_cast<double>(i % 7);
    h.add(value, weight);
    // The pre-rewrite formulation: floor in double, then clamp the integer.
    const auto bin = std::min<std::size_t>(
        static_cast<std::size_t>(std::floor(value / h.bin_width())),
        kBins - 1);
    reference[bin] += weight;
  }
  for (std::size_t b = 0; b < kBins; ++b) {
    EXPECT_DOUBLE_EQ(h.count(b), reference[b]) << "bin=" << b;
  }
}

}  // namespace
}  // namespace mosaic::util
