#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace mosaic::util {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("count", "number of things", "10");
  cli.add_option("name", "a name", "default");
  cli.add_option("ratio", "a ratio", "0.5");
  cli.add_flag("verbose", "talk more");
  return cli;
}

TEST(Cli, DefaultsWhenNoArgs) {
  CliParser cli = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()).ok());
  EXPECT_EQ(cli.get("count"), "10");
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  const std::array<const char*, 5> argv{"prog", "--count", "42", "--name",
                                        "mosaic"};
  ASSERT_TRUE(cli.parse(5, argv.data()).ok());
  EXPECT_EQ(*cli.get_int("count"), 42);
  EXPECT_EQ(cli.get("name"), "mosaic");
}

TEST(Cli, EqualsSyntax) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--ratio=0.75"};
  ASSERT_TRUE(cli.parse(2, argv.data()).ok());
  EXPECT_DOUBLE_EQ(*cli.get_double("ratio"), 0.75);
}

TEST(Cli, FlagPresence) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv.data()).ok());
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagRejectsValue) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--verbose=yes"};
  const Status status = cli.parse(2, argv.data());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--bogus"};
  const Status status = cli.parse(2, argv.data());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--count"};
  EXPECT_FALSE(cli.parse(2, argv.data()).ok());
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  const std::array<const char*, 4> argv{"prog", "file1", "--verbose", "file2"};
  ASSERT_TRUE(cli.parse(4, argv.data()).ok());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, BadIntegerReportsError) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--count=banana"};
  ASSERT_TRUE(cli.parse(2, argv.data()).ok());
  const auto value = cli.get_int("count");
  ASSERT_FALSE(value.has_value());
  EXPECT_EQ(value.error().code, ErrorCode::kInvalidArgument);
}

TEST(Cli, HelpReturnsNotFound) {
  CliParser cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--help"};
  const Status status = cli.parse(2, argv.data());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNotFound);
}

TEST(Cli, UsageMentionsAllOptions) {
  const CliParser cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("number of things"), std::string::npos);
}

}  // namespace
}  // namespace mosaic::util
