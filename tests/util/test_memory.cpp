#include "util/memory.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mosaic::util {
namespace {

TEST(Memory, ReportsPlausibleValues) {
  const std::uint64_t current = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  // On Linux both must be nonzero and ordered; elsewhere both are zero.
  if (peak == 0) {
    EXPECT_EQ(current, 0u);
    return;
  }
  EXPECT_GT(current, 1u << 20);  // a gtest binary occupies > 1 MiB
  EXPECT_GE(peak, current / 2);  // same order of magnitude
}

TEST(Memory, PeakGrowsWithAllocation) {
  const std::uint64_t before = peak_rss_bytes();
  if (before == 0) GTEST_SKIP() << "no /proc/self/status";
  // Touch 64 MiB so it becomes resident.
  std::vector<char> block(64u << 20);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
  const std::uint64_t after = peak_rss_bytes();
  EXPECT_GE(after, before + (32u << 20));
}

}  // namespace
}  // namespace mosaic::util
