#include "util/error.hpp"

#include <gtest/gtest.h>

namespace mosaic::util {
namespace {

TEST(ErrorCodeName, CoversAllCodes) {
  EXPECT_EQ(error_code_name(ErrorCode::kInvalidArgument), "invalid-argument");
  EXPECT_EQ(error_code_name(ErrorCode::kParseError), "parse-error");
  EXPECT_EQ(error_code_name(ErrorCode::kCorruptTrace), "corrupt-trace");
  EXPECT_EQ(error_code_name(ErrorCode::kIoError), "io-error");
  EXPECT_EQ(error_code_name(ErrorCode::kNotFound), "not-found");
  EXPECT_EQ(error_code_name(ErrorCode::kOverflow), "overflow");
  EXPECT_EQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(Error, ToStringCombinesCodeAndMessage) {
  const Error error{ErrorCode::kParseError, "line 3: bad token"};
  EXPECT_EQ(error.to_string(), "parse-error: line 3: bad token");
}

TEST(Expected, HoldsValue) {
  const Expected<int> value{42};
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(static_cast<bool>(value));
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(value.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  const Expected<int> error{Error{ErrorCode::kNotFound, "missing"}};
  ASSERT_FALSE(error.has_value());
  EXPECT_EQ(error.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(error.value_or(7), 7);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> value{std::string(100, 'x')};
  const std::string moved = std::move(value).value();
  EXPECT_EQ(moved.size(), 100u);
}

TEST(Expected, ArrowOperatorReachesMembers) {
  Expected<std::string> value{std::string("abc")};
  EXPECT_EQ(value->size(), 3u);
}

TEST(Status, DefaultIsSuccess) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(Status::success().ok());
}

TEST(Status, CarriesError) {
  const Status status{Error{ErrorCode::kIoError, "disk on fire"}};
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kIoError);
  EXPECT_EQ(status.error().message, "disk on fire");
}

}  // namespace
}  // namespace mosaic::util
