#include "util/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/stopwatch.hpp"

namespace mosaic::util {
namespace {

TEST(Log, LevelThresholdStored) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  MOSAIC_LOG_DEBUG("dropped %d", 1);
  MOSAIC_LOG_INFO("dropped %s", "two");
  MOSAIC_LOG_WARN("dropped");
  MOSAIC_LOG_ERROR("dropped %f", 3.0);
  set_log_level(original);
}

TEST(Log, ConcurrentEmissionIsSafe) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);  // keep test output clean; path still runs
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        MOSAIC_LOG_ERROR("thread %d message %d", t, i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_level(original);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a hair so elapsed is strictly positive and monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double first = watch.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double second = watch.elapsed_seconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.elapsed_ms(), watch.elapsed_seconds() * 1000.0,
              watch.elapsed_ms() * 0.5 + 1.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += static_cast<double>(i);
  const double before = watch.elapsed_seconds();
  watch.reset();
  EXPECT_LE(watch.elapsed_seconds(), before + 1e-3);
}

}  // namespace
}  // namespace mosaic::util
