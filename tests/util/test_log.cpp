#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "util/stopwatch.hpp"

namespace mosaic::util {
namespace {

/// Captures everything log_message emits while in scope.
class CapturedLog {
 public:
  CapturedLog() : file_(std::tmpfile()) { set_log_stream(file_); }
  ~CapturedLog() {
    set_log_stream(nullptr);
    if (file_ != nullptr) std::fclose(file_);
  }

  std::string text() {
    std::fflush(file_);
    std::rewind(file_);
    std::string out;
    char buffer[256];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, file_)) > 0) {
      out.append(buffer, n);
    }
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(Log, LevelThresholdStored) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  MOSAIC_LOG_DEBUG("dropped %d", 1);
  MOSAIC_LOG_INFO("dropped %s", "two");
  MOSAIC_LOG_WARN("dropped");
  MOSAIC_LOG_ERROR("dropped %f", 3.0);
  set_log_level(original);
}

TEST(Log, ConcurrentEmissionIsSafe) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);  // keep test output clean; path still runs
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        MOSAIC_LOG_ERROR("thread %d message %d", t, i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_level(original);
}

TEST(Log, PreservesCallerErrno) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  CapturedLog captured;
  errno = EINVAL;
  MOSAIC_LOG_ERROR("reporting failure for %s", "somefile");
  EXPECT_EQ(errno, EINVAL);
  errno = 0;
  set_log_level(original);
}

TEST(Log, TextFormatIsTagged) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kText);
  CapturedLog captured;
  MOSAIC_LOG_WARN("watch out %d", 7);
  EXPECT_EQ(captured.text(), "[mosaic WARN ] watch out 7\n");
  set_log_level(original);
}

TEST(Log, JsonLinesParseWithExpectedFields) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);
  CapturedLog captured;
  MOSAIC_LOG_WARN("quoted \"path\" and\nnewline");
  const std::string text = captured.text();
  set_log_format(LogFormat::kText);
  set_log_level(original);

  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  const auto parsed = json::parse(text.substr(0, text.size() - 1));
  ASSERT_TRUE(parsed.has_value()) << text;
  const json::Object& line = parsed->as_object();
  EXPECT_GT(line.find("ts")->as_number(), 0.0);
  EXPECT_EQ(line.find("level")->as_string(), "warn");
  EXPECT_EQ(line.find("msg")->as_string(), "quoted \"path\" and\nnewline");
}

TEST(Log, LevelNamesRoundTripThroughParser) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError,
                               LogLevel::kOff}) {
    const auto parsed = parse_log_level(log_level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a hair so elapsed is strictly positive and monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double first = watch.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double second = watch.elapsed_seconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.elapsed_ms(), watch.elapsed_seconds() * 1000.0,
              watch.elapsed_ms() * 0.5 + 1.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += static_cast<double>(i);
  const double before = watch.elapsed_seconds();
  watch.reset();
  EXPECT_LE(watch.elapsed_seconds(), before + 1e-3);
}

}  // namespace
}  // namespace mosaic::util
