#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/deadline.hpp"
#include "util/fs.hpp"

namespace mosaic::util {
namespace {

namespace fs = std::filesystem;

TEST(ExponentialBackoff, DeterministicDoublingSchedule) {
  ExponentialBackoff backoff(10.0, 2.0, 2000.0);
  EXPECT_DOUBLE_EQ(backoff.peek_delay_ms(), 10.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 10.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 20.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 40.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 80.0);
  EXPECT_EQ(backoff.attempts(), 4u);
}

TEST(ExponentialBackoff, CapsAtMaxDelay) {
  ExponentialBackoff backoff(100.0, 10.0, 250.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 100.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 250.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 250.0);  // stays pinned at cap
}

TEST(ExponentialBackoff, ResetRestoresInitialDelay) {
  ExponentialBackoff backoff(5.0, 3.0, 1000.0);
  (void)backoff.next_delay_ms();
  (void)backoff.next_delay_ms();
  backoff.reset();
  EXPECT_DOUBLE_EQ(backoff.peek_delay_ms(), 5.0);
  EXPECT_EQ(backoff.attempts(), 0u);
}

TEST(ExponentialBackoff, PeekDoesNotAdvance) {
  ExponentialBackoff backoff(7.0, 2.0, 100.0);
  EXPECT_DOUBLE_EQ(backoff.peek_delay_ms(), 7.0);
  EXPECT_DOUBLE_EQ(backoff.peek_delay_ms(), 7.0);
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 7.0);
}

TEST(Deadline, DefaultIsInfinite) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.finite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 1e18);
}

TEST(Deadline, NonPositiveBudgetAlreadyExpired) {
  EXPECT_TRUE(Deadline::after_seconds(0.0).expired());
  EXPECT_TRUE(Deadline::after_seconds(-1.0).expired());
}

TEST(Deadline, GenerousBudgetNotYetExpired) {
  const Deadline deadline = Deadline::after_seconds(3600.0);
  EXPECT_TRUE(deadline.finite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 3500.0);
  EXPECT_LE(deadline.remaining_seconds(), 3600.0);
}

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mosaic_fs_test_" + std::to_string(::testing::UnitTest::GetInstance()
                                                   ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
};

TEST_F(AtomicWriteTest, WritesNewFile) {
  const std::string path = (dir_ / "out.txt").string();
  ASSERT_TRUE(write_file_atomic(path, "hello world").ok());
  EXPECT_EQ(slurp(path), "hello world");
}

TEST_F(AtomicWriteTest, ReplacesExistingFile) {
  const std::string path = (dir_ / "out.txt").string();
  ASSERT_TRUE(write_file_atomic(path, "old old old").ok());
  ASSERT_TRUE(write_file_atomic(path, "new").ok());
  EXPECT_EQ(slurp(path), "new");
}

TEST_F(AtomicWriteTest, LeavesNoTempFileBehind) {
  const std::string path = (dir_ / "out.txt").string();
  ASSERT_TRUE(write_file_atomic(path, "payload").ok());
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just out.txt — the staging file was renamed away
}

TEST_F(AtomicWriteTest, FailureOnMissingDirectoryReportsIoError) {
  const std::string path = (dir_ / "no_such_subdir" / "out.txt").string();
  const Status status = write_file_atomic(path, "x");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kIoError);
}

TEST_F(AtomicWriteTest, EmptyContentsProduceEmptyFile) {
  const std::string path = (dir_ / "empty.bin").string();
  ASSERT_TRUE(write_file_atomic(path, "").ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), 0u);
}

TEST_F(AtomicWriteTest, BinaryContentsPreservedExactly) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload += static_cast<char>(i);
  const std::string path = (dir_ / "bytes.bin").string();
  ASSERT_TRUE(write_file_atomic(path, payload).ok());
  EXPECT_EQ(slurp(path), payload);
}

TEST_F(AtomicWriteTest, MoveFileIntoDirCreatesAndMoves) {
  const std::string src = (dir_ / "bad.trace").string();
  ASSERT_TRUE(write_file_atomic(src, "corrupt bytes").ok());
  const std::string quarantine = (dir_ / "quarantine").string();
  const auto moved = move_file_into_dir(src, quarantine);
  ASSERT_TRUE(moved.has_value());
  EXPECT_FALSE(fs::exists(src));
  EXPECT_TRUE(fs::exists(*moved));
  EXPECT_EQ(slurp(*moved), "corrupt bytes");
}

TEST_F(AtomicWriteTest, MoveMissingFileFails) {
  const auto moved =
      move_file_into_dir((dir_ / "ghost").string(), (dir_ / "q").string());
  EXPECT_FALSE(moved.has_value());
}

}  // namespace
}  // namespace mosaic::util
