#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace mosaic::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::array<int, 6> counts{};
  for (int i = 0; i < 60000; ++i) {
    const std::int64_t value = rng.uniform_int(0, 5);
    ASSERT_GE(value, 0);
    ASSERT_LE(value, 5);
    ++counts[static_cast<std::size_t>(value)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, 10000, 600);  // ~5 sigma
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t value = rng.uniform_int(-10, -5);
    EXPECT_GE(value, -10);
    EXPECT_LE(value, -5);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum2 / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(31);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal(std::log(50.0), 0.5));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 50.0, 2.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(41);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(3.0));
  }
  EXPECT_NEAR(sum / kSamples, 3.0, 0.08);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(43);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(47);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(500.0));
  }
  EXPECT_NEAR(sum / kSamples, 500.0, 2.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbability) {
  Rng rng(59);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ZipfInRange) {
  Rng rng(61);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t rank = rng.zipf(100, 1.2);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 100u);
  }
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(67);
  std::array<int, 11> counts{};
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t rank = rng.zipf(10, 1.0);
    ++counts[rank];
  }
  for (std::size_t r = 2; r <= 10; ++r) {
    EXPECT_GT(counts[1], counts[r]);
  }
  // Zipf(s=1): P(1)/P(2) == 2; loose statistical bound.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.3);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(71);
  EXPECT_EQ(rng.zipf(1, 1.5), 1u);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(73);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), 0.7, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(79);
  const std::array<double, 4> weights{0.0, 1.0, 0.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.categorical(weights), 1u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(83);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  const Rng parent(97);
  Rng child_a = parent.fork(0);
  Rng child_b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a() == child_b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  const Rng parent(101);
  Rng a = parent.fork(5);
  Rng b = parent.fork(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Mix64, StatelessAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

}  // namespace
}  // namespace mosaic::util
