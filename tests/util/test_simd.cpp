#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

namespace mosaic::util::simd {
namespace {

constexpr double kDenormal = 4.9406564584124654e-324;  // smallest subnormal
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool avx2_available() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

::testing::AssertionResult bit_equal(double a, double b) {
  if (bits(a) == bits(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << bits(a) << ") != " << std::dec << b
         << " (0x" << std::hex << bits(b) << ")";
}

/// Deterministic xorshift values in roughly [-8, 8), salted with denormals
/// and exact zeros — adversarial but NaN-free (reduction kernels only
/// promise identity for NaN-free input).
std::vector<double> adversarial_column(std::size_t n, std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(n);
  std::uint64_t s = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    switch (s % 8) {
      case 0: out.push_back(0.0); break;
      case 1: out.push_back(-0.0); break;
      case 2: out.push_back(kDenormal * static_cast<double>(1 + s % 100)); break;
      case 3: out.push_back(-kDenormal * static_cast<double>(1 + s % 100)); break;
      default:
        out.push_back(static_cast<double>(static_cast<std::int64_t>(s % 16000) -
                                          8000) /
                      1000.0);
        break;
    }
  }
  return out;
}

/// Every A/B test runs both levels explicitly and restores dispatch after.
class SimdAb : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2_available()) {
      GTEST_SKIP() << "no AVX2+FMA on this machine; scalar is the only path";
    }
  }
  void TearDown() override { clear_level_for_testing(); }
};

// --- dispatch policy --------------------------------------------------------

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, TestOverridePinsAndClears) {
  set_level_for_testing(Level::kScalar);
  EXPECT_EQ(active_level(), Level::kScalar);
  clear_level_for_testing();
  const Level detected = active_level();
  if (avx2_available() && std::getenv("MOSAIC_FORCE_SCALAR") == nullptr) {
    EXPECT_EQ(detected, Level::kAvx2);
  } else if (!avx2_available()) {
    EXPECT_EQ(detected, Level::kScalar);
  }
}

// --- sum --------------------------------------------------------------------

TEST_F(SimdAb, SumBitIdenticalAcrossLevels) {
  // Every length 0..67 covers the empty column, sub-lane tails, and
  // non-power-of-two vector bodies.
  for (std::size_t n = 0; n <= 67; ++n) {
    const auto values = adversarial_column(n, n + 1);
    EXPECT_TRUE(bit_equal(sum(values, Level::kScalar),
                          sum(values, Level::kAvx2)))
        << "n=" << n;
  }
}

TEST_F(SimdAb, SumExactForIntegerValuedDoubles) {
  // Byte/request counters are integer-valued doubles < 2^53: any
  // association sums them exactly, so the lane-structured sum must equal
  // the plain sequential sum bit for bit — the argument that keeps the
  // meanshift golden byte-identical.
  std::vector<double> counts;
  double sequential = 0.0;
  for (std::size_t i = 0; i < 1001; ++i) {
    const double v = static_cast<double>((i * 7919) % 100000);
    counts.push_back(v);
    sequential += v;
  }
  EXPECT_TRUE(bit_equal(sum(counts, Level::kScalar), sequential));
  EXPECT_TRUE(bit_equal(sum(counts, Level::kAvx2), sequential));
}

TEST(SimdSum, EmptyIsZero) {
  EXPECT_TRUE(bit_equal(sum(std::span<const double>{}, Level::kScalar), 0.0));
}

// --- max_and_count_ge -------------------------------------------------------

TEST_F(SimdAb, MaxAndCountBitIdenticalAcrossLevels) {
  for (std::size_t n = 0; n <= 67; ++n) {
    const auto values = adversarial_column(n, 1000 + n);
    for (const double threshold : {-1.0, 0.0, kDenormal, 2.5}) {
      std::size_t count_scalar = 9999, count_avx2 = 7777;
      const double max_scalar =
          max_and_count_ge(values, threshold, count_scalar, Level::kScalar);
      const double max_avx2 =
          max_and_count_ge(values, threshold, count_avx2, Level::kAvx2);
      EXPECT_TRUE(bit_equal(max_scalar, max_avx2)) << "n=" << n;
      EXPECT_EQ(count_scalar, count_avx2) << "n=" << n;
    }
  }
}

TEST(SimdMaxCount, EmptyIsMinusInfinityZero) {
  std::size_t count = 42;
  const double max =
      max_and_count_ge(std::span<const double>{}, 1.0, count, Level::kScalar);
  EXPECT_EQ(max, -kInf);
  EXPECT_EQ(count, 0u);
}

TEST(SimdMaxCount, ThresholdIsInclusive) {
  const std::vector<double> values{1.0, 2.0, 2.0, 3.0};
  std::size_t count = 0;
  const double max = max_and_count_ge(values, 2.0, count, Level::kScalar);
  EXPECT_EQ(max, 3.0);
  EXPECT_EQ(count, 3u);  // the two 2.0s and the 3.0
}

// --- bin_add ----------------------------------------------------------------

TEST_F(SimdAb, BinAddBitIdenticalAcrossLevels) {
  const double bin_seconds = 0.75;
  constexpr std::size_t kBins = 16;
  for (std::size_t n = 0; n <= 37; ++n) {
    auto times = adversarial_column(n, 31 + n);
    const auto weights = adversarial_column(n, 500 + n);
    // Salt with the clamp-sensitive cases: far out of range both ways,
    // infinities, and NaN (the old double->integer cast made these UB).
    if (n >= 5) {
      times[0] = -1e300;
      times[1] = 1e300;
      times[2] = kInf;
      times[3] = -kInf;
      times[4] = kNaN;
    }
    std::vector<double> bins_scalar(kBins, 0.0);
    std::vector<double> bins_avx2(kBins, 0.0);
    bin_add(times.data(), weights.data(), n, bin_seconds, bins_scalar.data(),
            kBins, Level::kScalar);
    bin_add(times.data(), weights.data(), n, bin_seconds, bins_avx2.data(),
            kBins, Level::kAvx2);
    for (std::size_t b = 0; b < kBins; ++b) {
      EXPECT_TRUE(bit_equal(bins_scalar[b], bins_avx2[b]))
          << "n=" << n << " bin=" << b;
    }
  }
}

TEST(SimdBinAdd, ClampsEdgesDeterministically) {
  const double times[] = {-5.0, 0.0, 3.999, 4.0, 100.0, kNaN};
  const double weights[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  double bins[4] = {0, 0, 0, 0};
  bin_add(times, weights, 6, 1.0, bins, 4, Level::kScalar);
  EXPECT_EQ(bins[0], 3.0);                  // -5.0 clamps low; 0.0 is bin 0
  EXPECT_EQ(bins[3], 4.0 + 8.0 + 16.0 + 32.0);  // 3.999, >=hi, huge, NaN
}

TEST(SimdBinAdd, EmptyInputsAreNoOps) {
  double bins[2] = {1.0, 2.0};
  bin_add(nullptr, nullptr, 0, 1.0, bins, 2, Level::kScalar);
  EXPECT_EQ(bins[0], 1.0);
  EXPECT_EQ(bins[1], 2.0);
  bin_add(bins, bins, 2, 1.0, nullptr, 0, Level::kScalar);  // nbins == 0
}

// --- FFT kernels ------------------------------------------------------------

std::vector<std::complex<double>> adversarial_complex(std::size_t n,
                                                      std::uint64_t seed) {
  const auto re = adversarial_column(n, seed);
  const auto im = adversarial_column(n, seed + 77);
  std::vector<std::complex<double>> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = {re[i], im[i]};
  return out;
}

::testing::AssertionResult complex_bit_equal(std::complex<double> a,
                                             std::complex<double> b) {
  if (bits(a.real()) == bits(b.real()) && bits(a.imag()) == bits(b.imag())) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "(" << a.real() << "," << a.imag() << ") != (" << b.real() << ","
         << b.imag() << ")";
}

TEST_F(SimdAb, ButterflyBitIdenticalAcrossLevels) {
  // Odd counts exercise the scalar tail after the two-complex AVX2 body.
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                            std::size_t{3}, std::size_t{7}, std::size_t{16},
                            std::size_t{33}}) {
    auto even_s = adversarial_complex(count, count + 3);
    auto odd_s = adversarial_complex(count, count + 11);
    const auto twiddles = adversarial_complex(count, count + 19);
    auto even_v = even_s;
    auto odd_v = odd_s;
    fft_butterfly(even_s.data(), odd_s.data(), twiddles.data(), count,
                  Level::kScalar);
    fft_butterfly(even_v.data(), odd_v.data(), twiddles.data(), count,
                  Level::kAvx2);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(complex_bit_equal(even_s[i], even_v[i])) << "count=" << count;
      EXPECT_TRUE(complex_bit_equal(odd_s[i], odd_v[i])) << "count=" << count;
    }
  }
}

TEST_F(SimdAb, ComplexNormBitIdenticalAcrossLevels) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{64}, std::size_t{129}}) {
    auto data_s = adversarial_complex(n, n + 23);
    auto data_v = data_s;
    complex_norm(data_s.data(), n, Level::kScalar);
    complex_norm(data_v.data(), n, Level::kAvx2);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(complex_bit_equal(data_s[i], data_v[i])) << "n=" << n;
      EXPECT_EQ(data_s[i].imag(), 0.0);  // power spectrum is real
    }
  }
}

TEST_F(SimdAb, ComplexScaleDivBitIdenticalAcrossLevels) {
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{17}}) {
    auto data_s = adversarial_complex(n, n + 41);
    auto data_v = data_s;
    complex_scale_div(data_s.data(), n, 1024.0, Level::kScalar);
    complex_scale_div(data_v.data(), n, 1024.0, Level::kAvx2);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(complex_bit_equal(data_s[i], data_v[i])) << "n=" << n;
    }
  }
}

TEST(SimdComplexMul, MatchesFmaRoundingStructure) {
  const std::complex<double> a{1.0 / 3.0, -2.0 / 7.0};
  const std::complex<double> b{5.0 / 11.0, 3.0 / 13.0};
  const auto got = complex_mul_fma(a, b);
  const double re =
      std::fma(a.real(), b.real(), -(a.imag() * b.imag()));
  const double im = std::fma(a.imag(), b.real(), a.real() * b.imag());
  EXPECT_TRUE(bit_equal(got.real(), re));
  EXPECT_TRUE(bit_equal(got.imag(), im));
}

TEST(SimdComplexMul, UnitTwiddleIsExactIdentityOnDenormals) {
  const std::complex<double> a{kDenormal, -kDenormal};
  const auto got = complex_mul_fma(a, {1.0, 0.0});
  EXPECT_TRUE(bit_equal(got.real(), a.real()));
  EXPECT_TRUE(bit_equal(got.imag(), a.imag()));
}

}  // namespace
}  // namespace mosaic::util::simd
