#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mosaic::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.wait_idle();  // no pending work: returns immediately
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool is usable again afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SecondExceptionCountedNotLost) {
  ThreadPool pool(4);
  // Saturate the pool with failing tasks: exactly one becomes the rethrown
  // first error; every other failure must be accounted for, not dropped.
  constexpr int kFailures = 16;
  for (int i = 0; i < kFailures; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.suppressed_error_count(),
            static_cast<std::size_t>(kFailures - 1));
}

TEST(ThreadPool, NonStdExceptionRethrownAsIs) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.submit([] { throw 42; });  // non-std::exception path
  EXPECT_THROW(pool.wait_idle(), int);
}

TEST(ParallelFor, ThrowMidBodyRethrowsWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> chunks_started{0};
  EXPECT_THROW(
      parallel_for(pool, 1000,
                   [&](std::size_t begin, std::size_t) {
                     chunks_started.fetch_add(1);
                     if (begin == 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
  // wait_idle inside parallel_for returned (no deadlock) and the pool
  // remains usable for follow-up work.
  std::atomic<int> after{0};
  parallel_for(pool, 10, [&](std::size_t begin, std::size_t end) {
    after.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelFor, AllChunksThrowStillTerminates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 64,
                            [](std::size_t, std::size_t) {
                              throw std::runtime_error("every chunk fails");
                            },
                            /*grain=*/1),
               std::runtime_error);
  EXPECT_GT(pool.suppressed_error_count(), 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, GrainLimitsChunkCount) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  parallel_for(
      pool, 100,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_GE(end - begin, 50u);
        chunks.fetch_add(1);
      },
      /*grain=*/50);
  EXPECT_EQ(chunks.load(), 2);
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(2);
  int value = 0;
  parallel_for(pool, 1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  const std::vector<int> outputs =
      parallel_map(pool, inputs, [](int x) { return x * x; });
  ASSERT_EQ(outputs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(outputs[i], static_cast<int>(i * i));
  }
}

TEST(ParallelFor, ReductionMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 100000;
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, kCount, [&](std::size_t begin, std::size_t end) {
    std::int64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      local += static_cast<std::int64_t>(i);
    }
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace mosaic::parallel
