#include "json/json.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace mosaic::json {
namespace {

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value{}.is_null());
  EXPECT_TRUE(Value{nullptr}.is_null());
  EXPECT_TRUE(Value{true}.is_bool());
  EXPECT_TRUE(Value{1.5}.is_number());
  EXPECT_TRUE(Value{42}.is_number());
  EXPECT_TRUE(Value{"text"}.is_string());
  EXPECT_TRUE(Value{Array{}}.is_array());
  EXPECT_TRUE(Value{Object{}}.is_object());
}

TEST(Object, InsertionOrderPreserved) {
  Object object;
  object.set("zebra", 1);
  object.set("apple", 2);
  object.set("mango", 3);
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object.entries()[0].first, "zebra");
  EXPECT_EQ(object.entries()[1].first, "apple");
  EXPECT_EQ(object.entries()[2].first, "mango");
}

TEST(Object, OverwriteKeepsPosition) {
  Object object;
  object.set("a", 1);
  object.set("b", 2);
  object.set("a", 99);
  ASSERT_EQ(object.size(), 2u);
  EXPECT_EQ(object.entries()[0].first, "a");
  EXPECT_DOUBLE_EQ(object.entries()[0].second.as_number(), 99.0);
}

TEST(Object, FindAndContains) {
  Object object;
  object.set("key", "value");
  EXPECT_TRUE(object.contains("key"));
  EXPECT_FALSE(object.contains("other"));
  ASSERT_NE(object.find("key"), nullptr);
  EXPECT_EQ(object.find("key")->as_string(), "value");
  EXPECT_EQ(object.find("other"), nullptr);
}

TEST(Serialize, Scalars) {
  EXPECT_EQ(serialize(Value{nullptr}, false), "null");
  EXPECT_EQ(serialize(Value{true}, false), "true");
  EXPECT_EQ(serialize(Value{false}, false), "false");
  EXPECT_EQ(serialize(Value{42}, false), "42");
  EXPECT_EQ(serialize(Value{-1.5}, false), "-1.5");
  EXPECT_EQ(serialize(Value{"hi"}, false), "\"hi\"");
}

TEST(Serialize, LargeIntegersExact) {
  const std::uint64_t big = (1ull << 53) - 1;
  EXPECT_EQ(serialize(Value{big}, false), "9007199254740991");
}

TEST(Serialize, StringEscapes) {
  EXPECT_EQ(serialize(Value{"a\"b\\c\nd"}, false), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(serialize(Value{std::string("\x01", 1)}, false), "\"\\u0001\"");
}

TEST(Serialize, NonFiniteBecomesNull) {
  EXPECT_EQ(serialize(Value{std::numeric_limits<double>::infinity()}, false),
            "null");
}

TEST(Serialize, CompactContainers) {
  Object object;
  object.set("list", Array{Value{1}, Value{2}});
  object.set("empty", Array{});
  EXPECT_EQ(serialize(Value{std::move(object)}, false),
            R"({"list":[1,2],"empty":[]})");
}

TEST(Serialize, PrettyIndentation) {
  Object inner;
  inner.set("x", 1);
  Object outer;
  outer.set("inner", std::move(inner));
  EXPECT_EQ(serialize(Value{std::move(outer)}, true),
            "{\n  \"inner\": {\n    \"x\": 1\n  }\n}\n");
}

TEST(Parse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_TRUE(parse("true")->as_bool());
  EXPECT_FALSE(parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-2e3")->as_number(), -2000.0);
  EXPECT_EQ(parse("\"abc\"")->as_string(), "abc");
}

TEST(Parse, NestedDocument) {
  const auto doc = parse(R"({"a": [1, {"b": "c"}], "d": null})");
  ASSERT_TRUE(doc.has_value());
  const Object& root = doc->as_object();
  const Array& a = root.find("a")->as_array();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_EQ(a[1].as_object().find("b")->as_string(), "c");
  EXPECT_TRUE(root.find("d")->is_null());
}

TEST(Parse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"q\"")")->as_string(), "a\nb\t\"q\"");
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xC3\xA9");  // é in UTF-8
}

TEST(Parse, WhitespaceTolerant) {
  const auto doc = parse("  { \"a\" :\n[ 1 , 2 ]\t}  ");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_object().find("a")->as_array().size(), 2u);
}

TEST(Parse, Failures) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("{").has_value());
  EXPECT_FALSE(parse("[1,]").has_value());
  EXPECT_FALSE(parse("{\"a\"}").has_value());
  EXPECT_FALSE(parse("tru").has_value());
  EXPECT_FALSE(parse("\"unterminated").has_value());
  EXPECT_FALSE(parse("1 2").has_value());
  EXPECT_FALSE(parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse("\"bad\\q\"").has_value());
}

TEST(Parse, ErrorsCarryOffset) {
  const auto result = parse("[1, x]");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, util::ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("offset"), std::string::npos);
}

TEST(Parse, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 1000; ++i) deep += '[';
  for (int i = 0; i < 1000; ++i) deep += ']';
  EXPECT_FALSE(parse(deep, 100).has_value());
  EXPECT_TRUE(parse("[[[[1]]]]", 100).has_value());
}

TEST(RoundTrip, ComplexDocumentSurvives) {
  Object root;
  root.set("name", "mosaic");
  root.set("count", 24606);
  root.set("accuracy", 0.92);
  root.set("flags", Array{Value{true}, Value{false}, Value{nullptr}});
  Object nested;
  nested.set("period_seconds", 599.886);
  root.set("periodicity", std::move(nested));

  const std::string text = serialize(Value{std::move(root)});
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.has_value());
  const std::string again = serialize(*parsed);
  EXPECT_EQ(text, again);
}

TEST(RoundTrip, DoublesSurviveExactly) {
  // 17 significant digits uniquely identify every double, so
  // serialize -> parse must reproduce the exact bit pattern — the property
  // the shard partial artifacts rely on for byte-identical merges.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           599.886,
                           6.02214076e23,
                           5e-324,  // smallest denormal
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::min(),
                           -0.0};
  for (const double value : values) {
    const std::string text = serialize(Value{value}, false);
    const auto parsed = parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->as_number(), value) << text;
  }
}

TEST(Parse, OutOfRangeSaturatesInsteadOfFailing) {
  // Overflowing literals historically parsed through strtod, which
  // saturates to +-inf / +-0 rather than erroring; documents written by
  // other producers keep loading (the infinities serialize back as null).
  EXPECT_TRUE(std::isinf(parse("1e999")->as_number()));
  EXPECT_TRUE(std::isinf(parse("-1e999")->as_number()));
  EXPECT_GT(parse("1e999")->as_number(), 0.0);
  EXPECT_LT(parse("-1e999")->as_number(), 0.0);
  EXPECT_EQ(parse("1e-999")->as_number(), 0.0);
  EXPECT_EQ(parse("-1e-999")->as_number(), 0.0);
  EXPECT_TRUE(std::isinf(
      parse("123456789123456789123456789123456789123456789e999")
          ->as_number()));
}

TEST(Locale, NumbersAreLocaleIndependent) {
  // A host application (or plugin) may set a locale whose decimal
  // separator is ','. JSON bytes must not change: the goldens, the resume
  // journal and the shard partials all assume C-locale numerals.
  const char* set = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (set == nullptr) set = std::setlocale(LC_NUMERIC, "de_DE.utf8");
  if (set == nullptr) {
    GTEST_SKIP() << "no de_DE locale installed; install locales and run "
                    "locale-gen de_DE.UTF-8 to enable this regression test";
  }
  // Sanity: the locale really uses ',' — otherwise this test proves nothing.
  char formatted[32];
  std::snprintf(formatted, sizeof formatted, "%.1f", 1.5);
  EXPECT_STREQ(formatted, "1,5");

  EXPECT_EQ(serialize(Value{-1.5}, false), "-1.5");
  EXPECT_EQ(serialize(Value{0.1}, false), "0.10000000000000001");
  EXPECT_EQ(serialize(Value{42}, false), "42");
  EXPECT_DOUBLE_EQ(parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-2e3")->as_number(), -2000.0);

  const std::string text = serialize(Value{599.886}, false);
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_number(), 599.886);

  std::setlocale(LC_NUMERIC, "C");
}

}  // namespace
}  // namespace mosaic::json
