// End-to-end integration: population generation -> darshan round trip ->
// full pipeline -> reports -> accuracy, at a reduced scale.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "report/accuracy.hpp"
#include "report/aggregate.hpp"
#include "report/jaccard.hpp"
#include "report/json_output.hpp"
#include "sim/population.hpp"

namespace mosaic {
namespace {

using core::Category;

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::PopulationConfig config;
    config.target_traces = 8000;
    config.seed = 20190410;
    population_ = new sim::Population(sim::generate_population(config));
    batch_ = new core::BatchResult(
        core::analyze_population(sim::to_traces(*population_)));
  }

  static void TearDownTestSuite() {
    delete population_;
    delete batch_;
    population_ = nullptr;
    batch_ = nullptr;
  }

  static sim::Population* population_;
  static core::BatchResult* batch_;
};

sim::Population* EndToEndTest::population_ = nullptr;
core::BatchResult* EndToEndTest::batch_ = nullptr;

TEST_F(EndToEndTest, FunnelShapeMatchesPaper) {
  const auto& stats = batch_->preprocess;
  EXPECT_EQ(stats.input_traces, 8000u);
  // ~32% corrupted.
  const double corrupted_frac = static_cast<double>(stats.corrupted) /
                                static_cast<double>(stats.input_traces);
  EXPECT_NEAR(corrupted_frac, 0.32, 0.04);
  // Unique applications are a small fraction of valid runs (paper: 8%).
  const double unique_frac = static_cast<double>(stats.unique_applications) /
                             static_cast<double>(stats.valid);
  EXPECT_GT(unique_frac, 0.02);
  EXPECT_LT(unique_frac, 0.25);
  EXPECT_EQ(stats.retained, stats.unique_applications);
  EXPECT_EQ(stats.valid + stats.corrupted, stats.input_traces);
}

TEST_F(EndToEndTest, InsignificantDominatesSingleRunView) {
  const report::CategoryDistribution distribution =
      report::aggregate_categories(*batch_);
  // Paper Table III: 85% read-insignificant, 87% write-insignificant in the
  // single-run view. Allow generous slack; the *shape* is the claim.
  EXPECT_GT(distribution.single_fraction(Category::kReadInsignificant), 0.7);
  EXPECT_GT(distribution.single_fraction(Category::kWriteInsignificant), 0.7);
  // All-runs view shifts sharply toward active categories.
  EXPECT_LT(distribution.weighted_fraction(Category::kReadInsignificant),
            distribution.single_fraction(Category::kReadInsignificant));
}

TEST_F(EndToEndTest, ReadOnStartLeadsActiveReads) {
  const report::CategoryDistribution distribution =
      report::aggregate_categories(*batch_);
  // Among active read behaviors, on_start dominates in the all-runs view
  // (paper: 38% vs 30% steady vs 5% others).
  const double on_start =
      distribution.weighted_fraction(Category::kReadOnStart);
  EXPECT_GT(on_start, 0.1);
  EXPECT_GT(on_start, distribution.weighted_fraction(Category::kReadOnEnd));
  EXPECT_GT(on_start,
            distribution.weighted_fraction(Category::kReadAfterStart));
}

TEST_F(EndToEndTest, PeriodicWritesSmallSingleLargerAllRuns) {
  const report::CategoryDistribution distribution =
      report::aggregate_categories(*batch_);
  const double single =
      distribution.single_fraction(Category::kWritePeriodic);
  const double weighted =
      distribution.weighted_fraction(Category::kWritePeriodic);
  // Paper Table II: 2% single-run, 8% all-runs.
  EXPECT_GT(single, 0.002);
  EXPECT_LT(single, 0.10);
  EXPECT_GT(weighted, single);
}

TEST_F(EndToEndTest, MetadataOrderingMatchesFigure4) {
  const report::CategoryDistribution distribution =
      report::aggregate_categories(*batch_);
  const double spike =
      distribution.weighted_fraction(Category::kMetadataHighSpike);
  const double multiple =
      distribution.weighted_fraction(Category::kMetadataMultipleSpikes);
  const double density =
      distribution.weighted_fraction(Category::kMetadataHighDensity);
  // Fig. 4 ordering: high_spike > multiple_spikes > high_density.
  EXPECT_GT(spike, multiple);
  EXPECT_GT(multiple, density);
  EXPECT_GT(density, 0.0);
}

TEST_F(EndToEndTest, AccuracyInPaperBallpark) {
  const auto index = report::truth_index(population_->traces);
  const report::AccuracyReport accuracy =
      report::score_accuracy(batch_->results, index);
  ASSERT_GT(accuracy.overall.total, 100u);
  // Paper: 92%. Demand at least 85% and not a suspicious 100%.
  EXPECT_GT(accuracy.overall.ratio(), 0.85);
  // Metadata rules are definitional, so that axis should be near-perfect.
  EXPECT_GT(accuracy.metadata.ratio(), 0.97);
}

TEST_F(EndToEndTest, SampledAccuracyMatchesProtocol) {
  const auto index = report::truth_index(population_->traces);
  const report::AccuracyReport sampled = report::score_sampled_accuracy(
      batch_->results, index, 512, /*seed=*/20190410);
  EXPECT_LE(sampled.overall.total, 512u);
  EXPECT_GT(sampled.overall.ratio(), 0.8);
}

TEST_F(EndToEndTest, ReadStartWriteEndCorrelationPresent) {
  const report::CategoryMatrix conditional =
      report::conditional_matrix(batch_->results);
  std::size_t rs = conditional.categories.size();
  std::size_t we = conditional.categories.size();
  for (std::size_t i = 0; i < conditional.categories.size(); ++i) {
    if (conditional.categories[i] == Category::kReadOnStart) rs = i;
    if (conditional.categories[i] == Category::kWriteOnEnd) we = i;
  }
  ASSERT_LT(rs, conditional.categories.size());
  ASSERT_LT(we, conditional.categories.size());
  // Paper §IV-D: 66% of applications reading on start write on end.
  EXPECT_GT(conditional.values[rs][we], 0.4);
}

TEST_F(EndToEndTest, InsignificantReadImpliesInsignificantWrite) {
  const report::CategoryMatrix conditional =
      report::conditional_matrix(batch_->results);
  std::size_t ri = conditional.categories.size();
  std::size_t wi = conditional.categories.size();
  for (std::size_t i = 0; i < conditional.categories.size(); ++i) {
    if (conditional.categories[i] == Category::kReadInsignificant) ri = i;
    if (conditional.categories[i] == Category::kWriteInsignificant) wi = i;
  }
  ASSERT_LT(ri, conditional.categories.size());
  // Paper §IV-D: 95%.
  EXPECT_GT(conditional.values[ri][wi], 0.85);
}

TEST_F(EndToEndTest, PeriodicWritesAreLowBusy) {
  const report::CategoryDistribution distribution =
      report::aggregate_categories(*batch_);
  const double low =
      distribution.single_fraction(Category::kWritePeriodicLowBusyTime);
  const double high =
      distribution.single_fraction(Category::kWritePeriodicHighBusyTime);
  // Paper §IV-D: 96% of periodic writers spend <25% of time writing.
  EXPECT_GT(low, high * 4.0);
}

TEST_F(EndToEndTest, DarshanTextRoundTripPreservesCategories) {
  const core::Analyzer analyzer;
  std::size_t checked = 0;
  for (const sim::LabeledTrace& labeled : population_->traces) {
    if (labeled.corrupted) continue;
    if (++checked > 25) break;
    const auto round =
        darshan::parse_text(darshan::to_text(labeled.trace));
    ASSERT_TRUE(round.has_value()) << round.error().to_string();
    const core::TraceResult direct = analyzer.analyze(labeled.trace);
    const core::TraceResult via_text = analyzer.analyze(*round);
    EXPECT_EQ(direct.categories, via_text.categories);
  }
}

TEST_F(EndToEndTest, MbtRoundTripPreservesCategories) {
  const core::Analyzer analyzer;
  std::size_t checked = 0;
  for (const sim::LabeledTrace& labeled : population_->traces) {
    if (labeled.corrupted) continue;
    if (++checked > 25) break;
    const auto round = darshan::parse_mbt(darshan::to_mbt(labeled.trace));
    ASSERT_TRUE(round.has_value());
    EXPECT_EQ(analyzer.analyze(labeled.trace).categories,
              analyzer.analyze(*round).categories);
  }
}

TEST_F(EndToEndTest, JsonSummarySerializes) {
  const json::Value value = report::batch_to_json(*batch_);
  const std::string text = json::serialize(value);
  const auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->as_object()
                       .find("preprocessing")
                       ->as_object()
                       .find("input_traces")
                       ->as_number(),
                   8000.0);
}

}  // namespace
}  // namespace mosaic
