// Property suite: invariants that must hold for EVERY categorized trace,
// checked across randomized populations (several seeds). These pin down the
// contracts between the classifier axes and the category flattening that
// individual unit tests cannot cover exhaustively.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "report/aggregate.hpp"
#include "report/jaccard.hpp"
#include "sim/population.hpp"

namespace mosaic {
namespace {

using core::Category;
using core::CategorySet;

class PopulationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static core::BatchResult analyze(std::uint64_t seed) {
    sim::PopulationConfig config;
    config.target_traces = 3000;
    config.seed = seed;
    return core::analyze_population(
        sim::to_traces(sim::generate_population(config)));
  }
};

/// Exactly one temporality label per kind, always.
TEST_P(PopulationPropertyTest, ExactlyOneTemporalityLabelPerKind) {
  const core::BatchResult batch = analyze(GetParam());
  ASSERT_FALSE(batch.results.empty());
  for (const core::TraceResult& result : batch.results) {
    int read_labels = 0;
    int write_labels = 0;
    for (const Category category : result.categories.to_vector()) {
      if (core::category_axis(category) != core::CategoryAxis::kTemporality) {
        continue;
      }
      (static_cast<unsigned>(category) < 8 ? read_labels : write_labels) += 1;
    }
    EXPECT_EQ(read_labels, 1) << result.app_key;
    EXPECT_EQ(write_labels, 1) << result.app_key;
  }
}

/// The insignificance labels agree exactly with the byte totals.
TEST_P(PopulationPropertyTest, InsignificanceMatchesVolumes) {
  const core::BatchResult batch = analyze(GetParam());
  const core::Thresholds thresholds;
  for (const core::TraceResult& result : batch.results) {
    EXPECT_EQ(result.categories.contains(Category::kReadInsignificant),
              result.bytes_read < thresholds.min_bytes)
        << result.app_key;
    EXPECT_EQ(result.categories.contains(Category::kWriteInsignificant),
              result.bytes_written < thresholds.min_bytes)
        << result.app_key;
  }
}

/// Periodic labels imply: significant volume, a detected group, exactly one
/// busy-time label, and at least one magnitude label consistent with a group.
TEST_P(PopulationPropertyTest, PeriodicLabelConsistency) {
  const core::BatchResult batch = analyze(GetParam());
  for (const core::TraceResult& result : batch.results) {
    const CategorySet& categories = result.categories;

    const bool write_periodic = categories.contains(Category::kWritePeriodic);
    if (write_periodic) {
      EXPECT_FALSE(categories.contains(Category::kWriteInsignificant));
      EXPECT_TRUE(result.write.periodicity.periodic);
      const bool low =
          categories.contains(Category::kWritePeriodicLowBusyTime);
      const bool high =
          categories.contains(Category::kWritePeriodicHighBusyTime);
      EXPECT_NE(low, high) << "exactly one busy-time label";
      const bool any_magnitude =
          categories.contains(Category::kWritePeriodicSecond) ||
          categories.contains(Category::kWritePeriodicMinute) ||
          categories.contains(Category::kWritePeriodicHour) ||
          categories.contains(Category::kWritePeriodicDayOrMore);
      EXPECT_TRUE(any_magnitude);
    } else {
      // No orphaned magnitude/busy labels.
      EXPECT_FALSE(categories.contains(Category::kWritePeriodicSecond));
      EXPECT_FALSE(categories.contains(Category::kWritePeriodicMinute));
      EXPECT_FALSE(categories.contains(Category::kWritePeriodicHour));
      EXPECT_FALSE(categories.contains(Category::kWritePeriodicDayOrMore));
      EXPECT_FALSE(categories.contains(Category::kWritePeriodicLowBusyTime));
      EXPECT_FALSE(categories.contains(Category::kWritePeriodicHighBusyTime));
    }
  }
}

/// Metadata: insignificant_load is mutually exclusive with the impact flags,
/// and the recorded measurements are internally consistent.
TEST_P(PopulationPropertyTest, MetadataLabelConsistency) {
  const core::BatchResult batch = analyze(GetParam());
  for (const core::TraceResult& result : batch.results) {
    const CategorySet& categories = result.categories;
    const bool insignificant =
        categories.contains(Category::kMetadataInsignificantLoad);
    const bool any_impact =
        categories.contains(Category::kMetadataHighSpike) ||
        categories.contains(Category::kMetadataMultipleSpikes) ||
        categories.contains(Category::kMetadataHighDensity);
    EXPECT_FALSE(insignificant && any_impact) << result.app_key;

    const core::MetadataResult& metadata = result.metadata;
    EXPECT_GE(metadata.max_requests_per_second, 0.0);
    if (metadata.total_requests > 0 && !metadata.insignificant) {
      EXPECT_GE(metadata.max_requests_per_second,
                metadata.mean_requests_per_second * 0.99);
    }
    // high_density implies multiple_spikes by rule construction.
    if (categories.contains(Category::kMetadataHighDensity)) {
      EXPECT_TRUE(categories.contains(Category::kMetadataMultipleSpikes));
    }
  }
}

/// Chunk volumes conserve byte totals (proportional attribution is lossless).
TEST_P(PopulationPropertyTest, ChunkVolumesConserveBytes) {
  const core::BatchResult batch = analyze(GetParam());
  for (const core::TraceResult& result : batch.results) {
    double read_chunks = 0.0;
    for (const double v : result.read.temporality.chunk_bytes) read_chunks += v;
    EXPECT_NEAR(read_chunks, static_cast<double>(result.bytes_read),
                1.0 + 1e-6 * static_cast<double>(result.bytes_read))
        << result.app_key;
    double write_chunks = 0.0;
    for (const double v : result.write.temporality.chunk_bytes) {
      write_chunks += v;
    }
    EXPECT_NEAR(write_chunks, static_cast<double>(result.bytes_written),
                1.0 + 1e-6 * static_cast<double>(result.bytes_written));
  }
}

/// Merging only reduces the op count.
TEST_P(PopulationPropertyTest, MergingMonotonicity) {
  const core::BatchResult batch = analyze(GetParam());
  for (const core::TraceResult& result : batch.results) {
    EXPECT_LE(result.read.merged_ops, result.read.raw_ops);
    EXPECT_LE(result.write.merged_ops, result.write.raw_ops);
  }
}

/// The Jaccard matrix is symmetric with a unit diagonal and values in [0,1].
TEST_P(PopulationPropertyTest, JaccardMatrixWellFormed) {
  const core::BatchResult batch = analyze(GetParam());
  const report::CategoryMatrix matrix =
      report::jaccard_matrix(batch.results);
  for (std::size_t i = 0; i < matrix.categories.size(); ++i) {
    EXPECT_DOUBLE_EQ(matrix.values[i][i], 1.0);
    for (std::size_t j = 0; j < matrix.categories.size(); ++j) {
      EXPECT_GE(matrix.values[i][j], 0.0);
      EXPECT_LE(matrix.values[i][j], 1.0);
      EXPECT_DOUBLE_EQ(matrix.values[i][j], matrix.values[j][i]);
    }
  }
}

/// Aggregation fractions are proper probabilities and single-run counts
/// never exceed the trace count.
TEST_P(PopulationPropertyTest, AggregationBounds) {
  const core::BatchResult batch = analyze(GetParam());
  const report::CategoryDistribution distribution =
      report::aggregate_categories(batch);
  EXPECT_EQ(distribution.trace_count, batch.results.size());
  EXPECT_GE(distribution.run_count,
            static_cast<double>(distribution.trace_count));
  for (const Category category : core::all_categories()) {
    const double single = distribution.single_fraction(category);
    const double weighted = distribution.weighted_fraction(category);
    EXPECT_GE(single, 0.0);
    EXPECT_LE(single, 1.0);
    EXPECT_GE(weighted, 0.0);
    EXPECT_LE(weighted, 1.0);
  }
}

/// Conditional probabilities are proper and P(a|a) == 1.
TEST_P(PopulationPropertyTest, ConditionalMatrixWellFormed) {
  const core::BatchResult batch = analyze(GetParam());
  const report::CategoryMatrix matrix =
      report::conditional_matrix(batch.results);
  for (std::size_t i = 0; i < matrix.categories.size(); ++i) {
    EXPECT_DOUBLE_EQ(matrix.values[i][i], 1.0);
    for (std::size_t j = 0; j < matrix.categories.size(); ++j) {
      EXPECT_GE(matrix.values[i][j], 0.0);
      EXPECT_LE(matrix.values[i][j], 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PopulationPropertyTest,
                         ::testing::Values(1u, 42u, 20190410u, 777u));

}  // namespace
}  // namespace mosaic
