// Byte-identity guard for the hot-path performance work (DESIGN.md §12).
//
// The zero-alloc analyzer workspaces, the flat Mean-Shift grid, and the FFT
// plan cache are all required to change *where bytes live*, never *what the
// pipeline computes*. These tests re-run the exact populations behind the
// committed goldens in tests/golden/ (captured from the pre-optimization
// pipeline via tools/dump_ab_golden) and compare the serialized batch output
// byte for byte — once per detector backend, and across worker counts, since
// each pool worker owns a separate workspace.
//
// If a test here fails after an *intentional* behavior change (new threshold
// default, new category), regenerate the goldens:
//
//   ./build/tools/dump_ab_golden tests/golden
#include <gtest/gtest.h>

#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "report/json_output.hpp"
#include "sim/population.hpp"
#include "util/simd.hpp"

using namespace mosaic;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Mirrors tools/dump_ab_golden.cpp exactly: same population, same seed,
/// same serialization. Any drift between the two invalidates the guard.
std::string serialize_population(const core::Thresholds& thresholds,
                                 std::size_t workers) {
  sim::PopulationConfig config;
  config.target_traces = 2000;
  config.seed = 20240711;
  sim::Population population = sim::generate_population(config);
  std::vector<trace::Trace> traces;
  traces.reserve(population.traces.size());
  for (sim::LabeledTrace& labeled : population.traces) {
    traces.push_back(std::move(labeled.trace));
  }
  parallel::ThreadPool pool(workers);
  const core::BatchResult batch =
      core::analyze_population(std::move(traces), thresholds, &pool);
  return json::serialize(
             report::batch_to_json(batch, /*include_traces=*/true)) +
         "\n";
}

TEST(GoldenAb, MeanShiftBackendMatchesCommittedGolden) {
  const std::string golden = read_file(
      std::string(MOSAIC_SOURCE_DIR) +
      "/tests/golden/ab_categorization_meanshift.json");
  ASSERT_FALSE(golden.empty());
  const core::Thresholds thresholds;  // defaults: Mean-Shift backend
  EXPECT_EQ(serialize_population(thresholds, 2), golden);
}

TEST(GoldenAb, FrequencyBackendMatchesCommittedGolden) {
  const std::string golden = read_file(
      std::string(MOSAIC_SOURCE_DIR) +
      "/tests/golden/ab_categorization_frequency.json");
  ASSERT_FALSE(golden.empty());
  core::Thresholds thresholds;
  thresholds.periodicity_backend = core::PeriodicityBackend::kFrequency;
  EXPECT_EQ(serialize_population(thresholds, 2), golden);
}

TEST(GoldenAb, ForcedScalarMatchesActiveSimdLevel) {
  // The AVX2 kernels (DESIGN.md §18) must be bit-identical to their scalar
  // references through the whole pipeline, not just in kernel unit tests:
  // the serialized batch output of a forced-scalar run has to match the
  // dispatched run byte for byte, on both detector backends. On a machine
  // without AVX2 both runs take the scalar path and the test degenerates to
  // determinism — still worth holding.
  for (const auto backend : {core::PeriodicityBackend::kMeanShift,
                             core::PeriodicityBackend::kFrequency}) {
    core::Thresholds thresholds;
    thresholds.periodicity_backend = backend;
    util::simd::set_level_for_testing(util::simd::Level::kScalar);
    const std::string scalar = serialize_population(thresholds, 2);
    util::simd::clear_level_for_testing();
    const std::string dispatched = serialize_population(thresholds, 2);
    ASSERT_FALSE(scalar.empty());
    EXPECT_EQ(scalar, dispatched)
        << "backend=" << static_cast<int>(backend) << " active simd level: "
        << util::simd::level_name(util::simd::active_level());
  }
}

TEST(GoldenAb, NonConsumingOverloadMatchesConsumingByteForByte) {
  // bench/perf_pipeline measures the non-consuming analyze_population
  // overload (no per-pass corpus copy), while the committed goldens pin the
  // consuming one — so the two must serialize identically or the perf
  // numbers describe a different pipeline than the one the goldens guard.
  sim::PopulationConfig config;
  config.target_traces = 2000;
  config.seed = 20240711;
  sim::Population population = sim::generate_population(config);
  std::vector<trace::Trace> traces;
  traces.reserve(population.traces.size());
  for (sim::LabeledTrace& labeled : population.traces) {
    traces.push_back(std::move(labeled.trace));
  }
  parallel::ThreadPool pool(2);
  const core::Thresholds thresholds;
  const std::string by_ref = json::serialize(report::batch_to_json(
      core::analyze_population(std::span<const trace::Trace>(traces),
                               thresholds, &pool),
      /*include_traces=*/true));
  const std::string consumed = json::serialize(report::batch_to_json(
      core::analyze_population(std::move(traces), thresholds, &pool),
      /*include_traces=*/true));
  ASSERT_FALSE(by_ref.empty());
  EXPECT_EQ(by_ref, consumed);
}

TEST(GoldenAb, OutputIdenticalAcrossWorkerCounts) {
  // One Mean-Shift workspace lives per pool worker; the partition of traces
  // across workers therefore changes which buffers each trace is analyzed
  // in, and must not change a single output byte.
  const core::Thresholds thresholds;
  const std::string one = serialize_population(thresholds, 1);
  const std::string two = serialize_population(thresholds, 2);
  const std::string eight = serialize_population(thresholds, 8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

}  // namespace
