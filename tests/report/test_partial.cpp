// Mergeable partial artifacts (report/partial.hpp): serialization round
// trips exactly, the merge validates its partition, and — the acceptance
// criterion for sharded execution — reducing 1, 2 or 8 shard partials
// reproduces the single-shot batch JSON byte for byte, including when one
// application's runs straddle shards and cross-shard dedup must re-choose
// the winner.
#include "report/partial.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "darshan/binary_format.hpp"
#include "ingest/ingest.hpp"
#include "ingest/shard.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "report/json_output.hpp"
#include "sim/population.hpp"
#include "util/fs.hpp"

namespace mosaic::report {
namespace {

namespace fs = std::filesystem;

class PartialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("mosaic_partial_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Writes a seeded synthetic population (valid + corrupted traces, many
  /// multi-run applications, so dedup straddles shards) and returns the
  /// trace paths.
  std::vector<std::string> seed_population(std::size_t traces,
                                           std::uint64_t seed) {
    sim::PopulationConfig config;
    config.target_traces = traces;
    config.seed = seed;
    const sim::Population population = sim::generate_population(config);
    std::vector<std::string> paths;
    paths.reserve(population.traces.size());
    for (const auto& entry : population.traces) {
      const std::string file =
          path("job_" + std::to_string(entry.trace.meta.job_id) + ".mbt");
      EXPECT_TRUE(darshan::write_mbt_file(entry.trace, file).ok());
      paths.push_back(file);
    }
    return paths;
  }

  /// Runs the ingest + analyze pipeline the CLI uses, for one shard (or the
  /// whole corpus with the default spec).
  PartialArtifact run_shard(const std::vector<std::string>& paths,
                            const ingest::ShardSpec& spec) {
    ingest::IngestOptions options;
    options.shard = spec;
    auto ingested = ingest::ingest_paths(paths, options, pool_);
    EXPECT_TRUE(ingested.has_value());
    std::vector<std::uint64_t> retained_bytes;
    for (const trace::Trace& t : ingested->pre.retained) {
      retained_bytes.push_back(t.total_bytes());
    }
    std::vector<std::string> retained_paths =
        std::move(ingested->pre.retained_paths);
    core::BatchResult batch =
        core::analyze_preprocessed(std::move(ingested->pre), {}, &pool_);
    EXPECT_EQ(batch.results.size(), retained_paths.size());

    PartialArtifact partial;
    partial.shard_index = spec.index;
    partial.shard_count = spec.count;
    partial.ingest = ingested->stats;
    partial.stats = batch.preprocess;
    partial.runs_per_app = std::move(batch.runs_per_app);
    for (std::size_t i = 0; i < batch.results.size(); ++i) {
      ShardTraceResult entry;
      entry.result = std::move(batch.results[i]);
      entry.source_path = std::move(retained_paths[i]);
      entry.total_bytes = retained_bytes[i];
      partial.traces.push_back(std::move(entry));
    }
    return partial;
  }

  /// The single-shot reference output the merge must reproduce.
  std::string single_shot_json(const std::vector<std::string>& paths) {
    ingest::IngestOptions options;
    auto ingested = ingest::ingest_paths(paths, options, pool_);
    EXPECT_TRUE(ingested.has_value());
    const core::BatchResult batch =
        core::analyze_preprocessed(std::move(ingested->pre), {}, &pool_);
    return json::serialize(batch_to_json(batch, /*include_traces=*/true));
  }

  /// Shards the corpus N ways, routes every partial through the on-disk
  /// write/read round trip, merges, and serializes like the single shot.
  std::string sharded_json(const std::vector<std::string>& paths,
                           std::size_t count) {
    std::vector<PartialArtifact> partials;
    for (std::size_t k = 0; k < count; ++k) {
      ingest::ShardSpec spec;
      spec.index = k;
      spec.count = count;
      const std::string artifact = path(ingest::partial_filename(k));
      EXPECT_TRUE(write_partial(run_shard(paths, spec), artifact).ok());
      auto reloaded = read_partial(artifact);
      EXPECT_TRUE(reloaded.has_value()) << reloaded.error().to_string();
      partials.push_back(std::move(*reloaded));
    }
    auto merged = merge_partials(std::move(partials));
    EXPECT_TRUE(merged.has_value()) << merged.error().to_string();
    return json::serialize(
        batch_to_json(merged->batch, /*include_traces=*/true));
  }

  fs::path dir_;
  parallel::ThreadPool pool_{2};
};

TEST_F(PartialTest, ArtifactRoundTripsThroughJson) {
  const auto paths = seed_population(40, 20190410);
  ingest::ShardSpec spec;
  spec.index = 1;
  spec.count = 2;
  const PartialArtifact partial = run_shard(paths, spec);
  ASSERT_FALSE(partial.traces.empty());

  const std::string serialized = json::serialize(partial_to_json(partial));
  auto parsed = json::parse(serialized);
  ASSERT_TRUE(parsed.has_value());
  auto restored = partial_from_json(*parsed);
  ASSERT_TRUE(restored.has_value()) << restored.error().to_string();

  // Byte-identical re-serialization is the strongest round-trip statement:
  // every double survived 17-significant-digit printing exactly.
  EXPECT_EQ(json::serialize(partial_to_json(*restored)), serialized);
  EXPECT_EQ(restored->shard_index, 1U);
  EXPECT_EQ(restored->shard_count, 2U);
  EXPECT_EQ(restored->traces.size(), partial.traces.size());
  EXPECT_EQ(restored->runs_per_app, partial.runs_per_app);
  EXPECT_EQ(restored->stats.eviction_breakdown,
            partial.stats.eviction_breakdown);
}

TEST_F(PartialTest, MergeOfOneTwoAndEightShardsMatchesSingleShotByteForByte) {
  const auto paths = seed_population(60, 20190410);
  const std::string reference = single_shot_json(paths);
  EXPECT_EQ(sharded_json(paths, 1), reference);
  EXPECT_EQ(sharded_json(paths, 2), reference);
  EXPECT_EQ(sharded_json(paths, 8), reference);
}

TEST_F(PartialTest, MergeReplaysCrossShardDedup) {
  // Two runs of one application, forced into different shards by file name;
  // the merge must retain the heavier run exactly as a single-shot batch
  // would, and the runs_per_app weight must sum across shards.
  trace::Trace light;
  light.meta.job_id = 11;
  light.meta.app_name = "solver";
  light.meta.user = "u1";
  light.meta.nprocs = 4;
  light.meta.run_time = 100.0;
  trace::FileRecord file;
  file.file_id = 1;
  file.bytes_written = 1 << 20;
  file.writes = 4;
  file.opens = 1;
  file.closes = 1;
  file.open_ts = 1.0;
  file.close_ts = 90.0;
  file.first_write_ts = 2.0;
  file.last_write_ts = 80.0;
  light.files.push_back(file);
  trace::Trace heavy = light;
  heavy.meta.job_id = 12;
  heavy.files[0].bytes_written = 8 << 20;

  // Find names that shard apart under N=2.
  std::string light_name;
  std::string heavy_name;
  for (int i = 0; light_name.empty() || heavy_name.empty(); ++i) {
    const std::string name = "run_" + std::to_string(i) + ".mbt";
    if (ingest::shard_of(name, 2) == 0 && light_name.empty()) {
      light_name = name;
    } else if (ingest::shard_of(name, 2) == 1 && heavy_name.empty()) {
      heavy_name = name;
    }
  }
  ASSERT_TRUE(darshan::write_mbt_file(light, path(light_name)).ok());
  ASSERT_TRUE(darshan::write_mbt_file(heavy, path(heavy_name)).ok());
  const std::vector<std::string> paths = {path(light_name), path(heavy_name)};

  ingest::ShardSpec shard0;
  shard0.index = 0;
  shard0.count = 2;
  ingest::ShardSpec shard1;
  shard1.index = 1;
  shard1.count = 2;
  std::vector<PartialArtifact> partials;
  partials.push_back(run_shard(paths, shard0));
  partials.push_back(run_shard(paths, shard1));
  ASSERT_EQ(partials[0].traces.size(), 1U);
  ASSERT_EQ(partials[1].traces.size(), 1U);

  auto merged = merge_partials(std::move(partials));
  ASSERT_TRUE(merged.has_value()) << merged.error().to_string();
  ASSERT_EQ(merged->batch.results.size(), 1U);
  EXPECT_EQ(merged->batch.results[0].job_id, 12U);  // heavier run won
  EXPECT_EQ(merged->batch.preprocess.valid, 2U);
  EXPECT_EQ(merged->batch.preprocess.retained, 1U);
  EXPECT_EQ(merged->batch.runs_per_app.at("u1/solver"), 2U);
}

TEST_F(PartialTest, MergeRejectsIncompleteOrInconsistentPartitions) {
  const auto paths = seed_population(20, 7);
  ingest::ShardSpec spec0;
  spec0.index = 0;
  spec0.count = 2;
  ingest::ShardSpec spec1;
  spec1.index = 1;
  spec1.count = 2;
  const PartialArtifact p0 = run_shard(paths, spec0);
  const PartialArtifact p1 = run_shard(paths, spec1);

  EXPECT_FALSE(merge_partials({}).has_value());

  // Missing shard 1 of 2.
  EXPECT_FALSE(merge_partials({p0}).has_value());

  // Duplicate shard 0.
  EXPECT_FALSE(merge_partials({p0, p0}).has_value());

  // Disagreeing shard counts.
  PartialArtifact wrong_count = p1;
  wrong_count.shard_count = 3;
  EXPECT_FALSE(merge_partials({p0, wrong_count}).has_value());

  // The complete partition merges.
  EXPECT_TRUE(merge_partials({p0, p1}).has_value());
}

TEST_F(PartialTest, MergeReportsEveryPartitionProblemAtOnce) {
  const auto paths = seed_population(20, 7);
  ingest::ShardSpec spec0;
  spec0.index = 0;
  spec0.count = 4;
  const PartialArtifact p0 = run_shard(paths, spec0);

  // Shard 0 duplicated, shard 2's count disagrees, shards 1 and 3 missing:
  // one merge attempt must name all four problems, not just the first.
  PartialArtifact dup = p0;
  PartialArtifact wrong_count = p0;
  wrong_count.shard_index = 2;
  wrong_count.shard_count = 5;
  auto merged = merge_partials({p0, dup, wrong_count});
  ASSERT_FALSE(merged.has_value());
  const std::string& message = merged.error().message;
  EXPECT_NE(message.find("shard 0 appears 2 times"), std::string::npos)
      << message;
  EXPECT_NE(message.find("shard 2 declares a 5-way partition"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("shard 1 is missing"), std::string::npos) << message;
  EXPECT_NE(message.find("shard 3 is missing"), std::string::npos) << message;
}

TEST_F(PartialTest, ReadPartialRejectsOtherSchemas) {
  ASSERT_TRUE(
      util::write_file_atomic(path("bogus.json"), "{\"schema\": \"nope\"}")
          .ok());
  const auto loaded = read_partial(path("bogus.json"));
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, util::ErrorCode::kParseError);
  EXPECT_FALSE(read_partial(path("missing.json")).has_value());
}

TEST_F(PartialTest, ExpandPartialPathsScansDirectories) {
  const auto paths = seed_population(20, 9);
  ingest::ShardSpec spec;
  spec.index = 0;
  spec.count = 1;
  const PartialArtifact partial = run_shard(paths, spec);
  const fs::path parts = dir_ / "parts";
  fs::create_directories(parts);
  ASSERT_TRUE(
      write_partial(partial, (parts / "results.shard-0.json").string()).ok());

  auto expanded = expand_partial_paths({parts.string()});
  ASSERT_TRUE(expanded.has_value());
  ASSERT_EQ(expanded->size(), 1U);

  // A directory without artifacts is an error, not an empty merge.
  const fs::path empty = dir_ / "empty";
  fs::create_directories(empty);
  EXPECT_FALSE(expand_partial_paths({empty.string()}).has_value());
}

}  // namespace
}  // namespace mosaic::report
