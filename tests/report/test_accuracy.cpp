#include "report/accuracy.hpp"

#include <gtest/gtest.h>

namespace mosaic::report {
namespace {

using core::Category;

sim::LabeledTrace labeled(std::uint64_t job_id,
                          std::initializer_list<Category> truth,
                          bool ambiguous = false, bool corrupted = false) {
  sim::LabeledTrace lt;
  lt.trace.meta.job_id = job_id;
  for (const Category category : truth) {
    lt.truth.categories.insert(category);
  }
  lt.truth.ambiguous = ambiguous;
  lt.corrupted = corrupted;
  return lt;
}

core::TraceResult predicted(std::uint64_t job_id,
                            std::initializer_list<Category> categories) {
  core::TraceResult result;
  result.job_id = job_id;
  for (const Category category : categories) {
    result.categories.insert(category);
  }
  return result;
}

TEST(TruthIndex, ExcludesCorrupted) {
  std::vector<sim::LabeledTrace> population;
  population.push_back(labeled(1, {Category::kReadOnStart}));
  population.push_back(labeled(2, {Category::kReadOnStart}, false, true));
  const auto index = truth_index(population);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.contains(1));
  EXPECT_FALSE(index.contains(2));
}

TEST(ScoreAccuracy, PerfectMatch) {
  std::vector<sim::LabeledTrace> population;
  population.push_back(labeled(
      1, {Category::kReadOnStart, Category::kWriteOnEnd,
          Category::kMetadataInsignificantLoad}));
  const auto index = truth_index(population);
  const std::vector<core::TraceResult> results{predicted(
      1, {Category::kReadOnStart, Category::kWriteOnEnd,
          Category::kMetadataInsignificantLoad})};
  const AccuracyReport report = score_accuracy(results, index);
  EXPECT_EQ(report.overall.correct, 1u);
  EXPECT_EQ(report.overall.total, 1u);
  EXPECT_DOUBLE_EQ(report.overall.ratio(), 1.0);
  EXPECT_TRUE(report.misclassified.empty());
}

TEST(ScoreAccuracy, TemporalityErrorIsolatedToAxis) {
  std::vector<sim::LabeledTrace> population;
  population.push_back(labeled(
      1, {Category::kReadOnStart, Category::kWriteInsignificant,
          Category::kMetadataInsignificantLoad}));
  const auto index = truth_index(population);
  // Predicted read_after_start instead of read_on_start.
  const std::vector<core::TraceResult> results{predicted(
      1, {Category::kReadAfterStart, Category::kWriteInsignificant,
          Category::kMetadataInsignificantLoad})};
  const AccuracyReport report = score_accuracy(results, index);
  EXPECT_EQ(report.read_temporality.correct, 0u);
  EXPECT_EQ(report.write_temporality.correct, 1u);
  EXPECT_EQ(report.metadata.correct, 1u);
  EXPECT_EQ(report.read_periodicity.correct, 1u);
  EXPECT_EQ(report.overall.correct, 0u);
  ASSERT_EQ(report.misclassified.size(), 1u);
  EXPECT_EQ(report.misclassified[0], 0u);
}

TEST(ScoreAccuracy, PeriodicityMagnitudeMismatchCounts) {
  std::vector<sim::LabeledTrace> population;
  population.push_back(labeled(
      1, {Category::kWriteSteady, Category::kWritePeriodic,
          Category::kWritePeriodicMinute,
          Category::kWritePeriodicLowBusyTime,
          Category::kReadInsignificant,
          Category::kMetadataInsignificantLoad}));
  const auto index = truth_index(population);
  const std::vector<core::TraceResult> results{predicted(
      1, {Category::kWriteSteady, Category::kWritePeriodic,
          Category::kWritePeriodicHour,  // wrong magnitude
          Category::kWritePeriodicLowBusyTime,
          Category::kReadInsignificant,
          Category::kMetadataInsignificantLoad})};
  const AccuracyReport report = score_accuracy(results, index);
  EXPECT_EQ(report.write_periodicity.correct, 0u);
  EXPECT_EQ(report.write_temporality.correct, 1u);
}

TEST(ScoreAccuracy, AmbiguousErrorsCounted) {
  std::vector<sim::LabeledTrace> population;
  population.push_back(labeled(1, {Category::kReadOnStart}, true));
  population.push_back(labeled(2, {Category::kReadOnStart}, false));
  const auto index = truth_index(population);
  const std::vector<core::TraceResult> results{
      predicted(1, {Category::kReadAfterStart}),
      predicted(2, {Category::kReadAfterStart})};
  const AccuracyReport report = score_accuracy(results, index);
  EXPECT_EQ(report.overall.correct, 0u);
  EXPECT_EQ(report.errors_on_ambiguous, 1u);
}

TEST(ScoreAccuracy, ResultsWithoutTruthSkipped) {
  const auto index = truth_index({});
  const std::vector<core::TraceResult> results{
      predicted(42, {Category::kReadOnStart})};
  const AccuracyReport report = score_accuracy(results, index);
  EXPECT_EQ(report.overall.total, 0u);
  EXPECT_DOUBLE_EQ(report.overall.ratio(), 1.0);  // vacuous
}

TEST(SampledAccuracy, SampleSizeRespected) {
  std::vector<sim::LabeledTrace> population;
  std::vector<core::TraceResult> results;
  for (std::uint64_t i = 0; i < 100; ++i) {
    population.push_back(labeled(i, {Category::kReadOnStart}));
    results.push_back(predicted(i, {Category::kReadOnStart}));
  }
  const auto index = truth_index(population);
  const AccuracyReport report =
      score_sampled_accuracy(results, index, 10, /*seed=*/3);
  EXPECT_EQ(report.overall.total, 10u);
}

TEST(SampledAccuracy, SmallPopulationScoresEverything) {
  std::vector<sim::LabeledTrace> population;
  std::vector<core::TraceResult> results;
  for (std::uint64_t i = 0; i < 5; ++i) {
    population.push_back(labeled(i, {Category::kReadOnStart}));
    results.push_back(predicted(i, {Category::kReadOnStart}));
  }
  const auto index = truth_index(population);
  const AccuracyReport report =
      score_sampled_accuracy(results, index, 512, /*seed=*/3);
  EXPECT_EQ(report.overall.total, 5u);
}

TEST(SampledAccuracy, DeterministicForSeed) {
  std::vector<sim::LabeledTrace> population;
  std::vector<core::TraceResult> results;
  for (std::uint64_t i = 0; i < 50; ++i) {
    population.push_back(labeled(i, {Category::kReadOnStart}));
    // Half the predictions are wrong; which ones get sampled matters.
    results.push_back(predicted(
        i, {i % 2 == 0 ? Category::kReadOnStart : Category::kReadOnEnd}));
  }
  const auto index = truth_index(population);
  const AccuracyReport a = score_sampled_accuracy(results, index, 10, 7);
  const AccuracyReport b = score_sampled_accuracy(results, index, 10, 7);
  EXPECT_EQ(a.overall.correct, b.overall.correct);
}

TEST(AxisAccuracy, RatioEdgeCases) {
  AxisAccuracy axis;
  EXPECT_DOUBLE_EQ(axis.ratio(), 1.0);
  axis.total = 4;
  axis.correct = 3;
  EXPECT_DOUBLE_EQ(axis.ratio(), 0.75);
}

}  // namespace
}  // namespace mosaic::report
