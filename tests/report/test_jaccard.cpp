#include "report/jaccard.hpp"

#include <gtest/gtest.h>

namespace mosaic::report {
namespace {

using core::Category;
using core::TraceResult;

TraceResult result_with(const std::string& app,
                        std::initializer_list<Category> categories) {
  TraceResult result;
  result.app_key = app;
  for (const Category category : categories) {
    result.categories.insert(category);
  }
  return result;
}

std::size_t index_of(const CategoryMatrix& matrix, Category category) {
  for (std::size_t i = 0; i < matrix.categories.size(); ++i) {
    if (matrix.categories[i] == category) return i;
  }
  ADD_FAILURE() << "category missing from matrix";
  return 0;
}

TEST(Jaccard, EmptyPopulationEmptyMatrix) {
  const CategoryMatrix matrix = jaccard_matrix({});
  EXPECT_TRUE(matrix.categories.empty());
  EXPECT_TRUE(matrix.values.empty());
}

TEST(Jaccard, PerfectOverlapIsOne) {
  std::vector<TraceResult> results;
  for (int i = 0; i < 5; ++i) {
    results.push_back(result_with(
        "a" + std::to_string(i),
        {Category::kReadOnStart, Category::kWriteOnEnd}));
  }
  const CategoryMatrix matrix = jaccard_matrix(results);
  const std::size_t i = index_of(matrix, Category::kReadOnStart);
  const std::size_t j = index_of(matrix, Category::kWriteOnEnd);
  EXPECT_DOUBLE_EQ(matrix.values[i][j], 1.0);
  EXPECT_DOUBLE_EQ(matrix.values[i][i], 1.0);  // self-Jaccard
}

TEST(Jaccard, DisjointCategoriesAreZero) {
  std::vector<TraceResult> results;
  results.push_back(result_with("a", {Category::kReadOnStart}));
  results.push_back(result_with("b", {Category::kWriteOnEnd}));
  const CategoryMatrix matrix = jaccard_matrix(results);
  const std::size_t i = index_of(matrix, Category::kReadOnStart);
  const std::size_t j = index_of(matrix, Category::kWriteOnEnd);
  EXPECT_DOUBLE_EQ(matrix.values[i][j], 0.0);
}

TEST(Jaccard, PartialOverlapComputed) {
  // 2 traces with both, 1 with only A, 1 with only B: J = 2 / 4.
  std::vector<TraceResult> results;
  results.push_back(
      result_with("a", {Category::kReadOnStart, Category::kWriteOnEnd}));
  results.push_back(
      result_with("b", {Category::kReadOnStart, Category::kWriteOnEnd}));
  results.push_back(result_with("c", {Category::kReadOnStart}));
  results.push_back(result_with("d", {Category::kWriteOnEnd}));
  const CategoryMatrix matrix = jaccard_matrix(results);
  const std::size_t i = index_of(matrix, Category::kReadOnStart);
  const std::size_t j = index_of(matrix, Category::kWriteOnEnd);
  EXPECT_DOUBLE_EQ(matrix.values[i][j], 0.5);
  EXPECT_DOUBLE_EQ(matrix.values[j][i], 0.5);  // symmetric
}

TEST(Jaccard, WeightedCountsUseRuns) {
  std::vector<TraceResult> results;
  results.push_back(
      result_with("both", {Category::kReadOnStart, Category::kWriteOnEnd}));
  results.push_back(result_with("only_a", {Category::kReadOnStart}));
  const std::map<std::string, std::size_t> runs{{"both", 10}, {"only_a", 90}};
  const CategoryMatrix matrix = jaccard_matrix(results, &runs);
  const std::size_t i = index_of(matrix, Category::kReadOnStart);
  const std::size_t j = index_of(matrix, Category::kWriteOnEnd);
  EXPECT_DOUBLE_EQ(matrix.values[i][j], 0.1);  // 10 / (10 + 90)
}

TEST(Jaccard, AbsentCategoriesDropped) {
  std::vector<TraceResult> results;
  results.push_back(result_with("a", {Category::kReadSteady}));
  const CategoryMatrix matrix = jaccard_matrix(results);
  EXPECT_EQ(matrix.categories.size(), 1u);
}

TEST(Conditional, AsymmetricConditional) {
  // All B-traces are A-traces, but not vice versa:
  // P(A|B) = 1, P(B|A) = 1/3.
  std::vector<TraceResult> results;
  results.push_back(
      result_with("x", {Category::kReadOnStart, Category::kWriteOnEnd}));
  results.push_back(result_with("y", {Category::kReadOnStart}));
  results.push_back(result_with("z", {Category::kReadOnStart}));
  const CategoryMatrix matrix = conditional_matrix(results);
  const std::size_t a = index_of(matrix, Category::kReadOnStart);
  const std::size_t b = index_of(matrix, Category::kWriteOnEnd);
  EXPECT_DOUBLE_EQ(matrix.values[b][a], 1.0);
  EXPECT_NEAR(matrix.values[a][b], 1.0 / 3.0, 1e-12);
}

TEST(Heatmap, FiltersBelowMinValue) {
  std::vector<TraceResult> results;
  for (int i = 0; i < 99; ++i) {
    results.push_back(result_with("a" + std::to_string(i),
                                  {Category::kReadOnStart}));
  }
  results.push_back(result_with(
      "rare", {Category::kReadOnStart, Category::kWriteOnEnd}));
  const CategoryMatrix matrix = jaccard_matrix(results);
  const std::string strict = render_heatmap(matrix, 0.5);
  const std::string lax = render_heatmap(matrix, 0.001);
  // The rare association renders in the lax view only.
  EXPECT_LT(strict.find_first_not_of(" \n"), strict.size());
  EXPECT_NE(lax, strict);
}

TEST(Heatmap, ContainsCategoryLegend) {
  std::vector<TraceResult> results;
  results.push_back(
      result_with("a", {Category::kReadOnStart, Category::kWriteOnEnd}));
  const std::string heatmap = render_heatmap(jaccard_matrix(results));
  EXPECT_NE(heatmap.find("read_on_start"), std::string::npos);
  EXPECT_NE(heatmap.find("write_on_end"), std::string::npos);
}

TEST(TopPairs, StrongestFirst) {
  std::vector<TraceResult> results;
  // Strong pair: read_on_start & write_on_end in 9/10 traces.
  for (int i = 0; i < 9; ++i) {
    results.push_back(result_with(
        "s" + std::to_string(i),
        {Category::kReadOnStart, Category::kWriteOnEnd}));
  }
  // Weak pair: read_steady & write_steady co-occur once but read_steady
  // appears twice, so J = 1/2 < 9/10.
  results.push_back(result_with(
      "w", {Category::kReadSteady, Category::kWriteSteady,
            Category::kReadOnStart}));
  results.push_back(result_with("w2", {Category::kReadSteady}));
  const std::string pairs = top_pairs(jaccard_matrix(results), 3);
  const auto strong_pos = pairs.find("write_on_end");
  const auto weak_pos = pairs.find("write_steady");
  ASSERT_NE(strong_pos, std::string::npos);
  EXPECT_TRUE(weak_pos == std::string::npos || strong_pos < weak_pos);
}

TEST(TopPairs, DirectionalModeUsesArrow) {
  std::vector<TraceResult> results;
  results.push_back(
      result_with("a", {Category::kReadOnStart, Category::kWriteOnEnd}));
  const std::string pairs =
      top_pairs(conditional_matrix(results), 5, /*symmetric=*/false);
  EXPECT_NE(pairs.find("=>"), std::string::npos);
}

}  // namespace
}  // namespace mosaic::report
