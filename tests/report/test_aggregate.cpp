#include "report/aggregate.hpp"

#include <gtest/gtest.h>

namespace mosaic::report {
namespace {

using core::Category;
using core::TraceResult;

TraceResult result_with(const std::string& app_key,
                        std::initializer_list<Category> categories) {
  TraceResult result;
  result.app_key = app_key;
  for (const Category category : categories) {
    result.categories.insert(category);
  }
  return result;
}

TEST(Aggregate, EmptyPopulation) {
  const CategoryDistribution distribution = aggregate_categories({}, {});
  EXPECT_EQ(distribution.trace_count, 0u);
  EXPECT_DOUBLE_EQ(distribution.run_count, 0.0);
  EXPECT_DOUBLE_EQ(distribution.single_fraction(Category::kReadOnStart), 0.0);
}

TEST(Aggregate, SingleRunFractions) {
  std::vector<TraceResult> results;
  results.push_back(result_with("a", {Category::kReadOnStart}));
  results.push_back(result_with("b", {Category::kReadOnStart,
                                      Category::kWriteOnEnd}));
  results.push_back(result_with("c", {Category::kWriteInsignificant}));
  const CategoryDistribution distribution = aggregate_categories(results, {});
  EXPECT_EQ(distribution.trace_count, 3u);
  EXPECT_NEAR(distribution.single_fraction(Category::kReadOnStart), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(distribution.single_fraction(Category::kWriteOnEnd), 1.0 / 3.0,
              1e-12);
}

TEST(Aggregate, RunWeightingChangesAllRunsView) {
  std::vector<TraceResult> results;
  results.push_back(result_with("heavy", {Category::kWriteSteady}));
  results.push_back(result_with("light", {Category::kWriteOnEnd}));
  const std::map<std::string, std::size_t> runs{{"heavy", 99}, {"light", 1}};
  const CategoryDistribution distribution =
      aggregate_categories(results, runs);
  EXPECT_DOUBLE_EQ(distribution.run_count, 100.0);
  // Single-run view: 50/50. All-runs view: 99/1.
  EXPECT_NEAR(distribution.single_fraction(Category::kWriteSteady), 0.5, 1e-12);
  EXPECT_NEAR(distribution.weighted_fraction(Category::kWriteSteady), 0.99,
              1e-12);
  EXPECT_NEAR(distribution.weighted_fraction(Category::kWriteOnEnd), 0.01,
              1e-12);
}

TEST(Aggregate, MissingAppDefaultsToOneRun) {
  std::vector<TraceResult> results;
  results.push_back(result_with("known", {Category::kReadSteady}));
  results.push_back(result_with("unknown", {Category::kReadOnEnd}));
  const std::map<std::string, std::size_t> runs{{"known", 9}};
  const CategoryDistribution distribution =
      aggregate_categories(results, runs);
  EXPECT_DOUBLE_EQ(distribution.run_count, 10.0);
}

TEST(PeriodicBreakdownTest, CountsByMagnitude) {
  core::BatchResult batch;
  const auto add = [&](const std::string& app, bool periodic,
                       core::PeriodMagnitude magnitude, std::size_t runs) {
    TraceResult result;
    result.app_key = app;
    result.write.temporality.label = core::Temporality::kSteady;
    if (periodic) {
      result.write.periodicity.periodic = true;
      core::PeriodicGroup group;
      group.magnitude = magnitude;
      group.occurrences = 5;
      result.write.periodicity.groups.push_back(group);
    }
    batch.results.push_back(std::move(result));
    batch.runs_per_app[app] = runs;
  };
  add("a", true, core::PeriodMagnitude::kMinute, 10);
  add("b", true, core::PeriodMagnitude::kHour, 3);
  add("c", false, core::PeriodMagnitude::kSecond, 100);

  const PeriodicBreakdown breakdown =
      periodic_breakdown(batch, trace::OpKind::kWrite);
  EXPECT_EQ(breakdown.periodic_traces, 2u);
  EXPECT_DOUBLE_EQ(breakdown.periodic_runs, 13.0);
  EXPECT_EQ(breakdown.single[static_cast<std::size_t>(
                core::PeriodMagnitude::kMinute)],
            1u);
  EXPECT_DOUBLE_EQ(
      breakdown.weighted[static_cast<std::size_t>(core::PeriodMagnitude::kHour)],
      3.0);
}

TEST(PeriodicBreakdownTest, InsignificantKindExcluded) {
  core::BatchResult batch;
  TraceResult result;
  result.app_key = "x";
  result.write.temporality.label = core::Temporality::kInsignificant;
  result.write.periodicity.periodic = true;
  core::PeriodicGroup group;
  group.occurrences = 4;
  result.write.periodicity.groups.push_back(group);
  batch.results.push_back(std::move(result));
  batch.runs_per_app["x"] = 5;

  const PeriodicBreakdown breakdown =
      periodic_breakdown(batch, trace::OpKind::kWrite);
  EXPECT_EQ(breakdown.periodic_traces, 0u);
}

}  // namespace
}  // namespace mosaic::report
