#include "report/tables.hpp"

#include <gtest/gtest.h>

namespace mosaic::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.render();
  EXPECT_EQ(out,
            "| name  | value |\n"
            "|-------|-------|\n"
            "| alpha | 1     |\n"
            "| b     | 22222 |\n");
}

TEST(TextTable, HeaderWiderThanCells) {
  TextTable table({"a_very_long_header"});
  table.add_row({"x"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| x                  |"), std::string::npos);
}

TEST(TextTable, MissingCellsRenderEmpty) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| only |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, EmptyTableStillRendersHeader) {
  TextTable table({"col"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| col |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TextTable, MarkdownMatchesAsciiShape) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.render(), table.render_markdown());
}

}  // namespace
}  // namespace mosaic::report
