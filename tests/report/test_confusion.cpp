// Accuracy drill-down: provenance records joined against sim ground truth
// with no re-analysis — per-axis accuracy, per-category confusion,
// margin histograms, and the ranked straddling list.
#include "report/confusion.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mosaic;

namespace {

obs::TraceProvenance make_record(const std::string& app_key,
                                 std::uint64_t job_id,
                                 std::vector<std::string> categories) {
  obs::TraceProvenance record;
  record.app_key = app_key;
  record.job_id = job_id;
  record.categories = std::move(categories);
  record.read.temporality.confidence = 0.9;
  record.write.temporality.confidence = 0.9;
  record.read.periodicity.confidence = 0.9;
  record.write.periodicity.confidence = 0.9;
  record.metadata.confidence = 0.9;
  return record;
}

sim::TruthRecord make_truth(const std::string& app_key, std::uint64_t job_id,
                            std::vector<std::string> categories,
                            bool ambiguous = false) {
  sim::TruthRecord truth;
  truth.app_key = app_key;
  truth.job_id = job_id;
  truth.ambiguous = ambiguous;
  truth.categories = std::move(categories);
  return truth;
}

const std::vector<std::string> kBaseline = {
    "read_on_start", "write_insignificant", "metadata_insignificant_load"};

TEST(Confusion, JoinsByJobIdAndCountsMissingTruth) {
  const std::vector<obs::TraceProvenance> records = {
      make_record("a/app", 1, kBaseline),
      make_record("a/app", 2, kBaseline),
      make_record("z/orphan", 99, kBaseline),  // no truth entry
  };
  const std::vector<sim::TruthRecord> truths = {
      make_truth("a/app", 1, kBaseline),
      make_truth("a/app", 2, kBaseline),
  };
  const report::ConfusionReport drill = report::build_confusion(records, truths);
  EXPECT_EQ(drill.joined, 2u);
  EXPECT_EQ(drill.missing_truth, 1u);
  EXPECT_EQ(drill.overall.correct, 2u);
  EXPECT_EQ(drill.overall.total, 2u);
}

TEST(Confusion, MismatchedAxisTalliesConfusionCells) {
  // Job 2 predicts read_steady where the truth planted read_on_start; its
  // read-temporality margin is nearly zero, so it must rank first in the
  // straddling list with a mismatch verdict.
  obs::TraceProvenance wrong = make_record(
      "a/app", 2,
      {"read_steady", "write_insignificant", "metadata_insignificant_load"});
  wrong.read.temporality.confidence = 0.02;
  const std::vector<obs::TraceProvenance> records = {
      make_record("a/app", 1, kBaseline), std::move(wrong)};
  const std::vector<sim::TruthRecord> truths = {
      make_truth("a/app", 1, kBaseline),
      make_truth("a/app", 2, kBaseline, /*ambiguous=*/true),
  };
  const report::ConfusionReport drill = report::build_confusion(records, truths);

  EXPECT_EQ(drill.read_temporality.correct, 1u);
  EXPECT_EQ(drill.read_temporality.total, 2u);
  EXPECT_EQ(drill.write_temporality.correct, 2u);
  EXPECT_EQ(drill.metadata.correct, 2u);
  EXPECT_EQ(drill.overall.correct, 1u);

  // Per-category cells: read_on_start was planted twice, predicted once.
  bool saw_on_start = false;
  bool saw_steady = false;
  for (const report::CategoryConfusion& cell : drill.categories) {
    if (cell.category == "read_on_start") {
      saw_on_start = true;
      EXPECT_EQ(cell.true_positive, 1u);
      EXPECT_EQ(cell.false_negative, 1u);
      EXPECT_EQ(cell.false_positive, 0u);
    }
    if (cell.category == "read_steady") {
      saw_steady = true;
      EXPECT_EQ(cell.false_positive, 1u);
      EXPECT_EQ(cell.true_positive, 0u);
    }
  }
  EXPECT_TRUE(saw_on_start);
  EXPECT_TRUE(saw_steady);

  ASSERT_FALSE(drill.straddling.empty());
  const report::StraddlingCase& worst = drill.straddling.front();
  EXPECT_EQ(worst.job_id, 2u);
  EXPECT_EQ(worst.axis, "read_temporality");
  EXPECT_TRUE(worst.mismatched);
  EXPECT_TRUE(worst.truth_ambiguous);
  EXPECT_NEAR(worst.confidence, 0.02, 1e-9);
}

TEST(Confusion, ConfidenceHistogramsBucketEveryJoinedTrace) {
  const std::vector<obs::TraceProvenance> records = {
      make_record("a/app", 1, kBaseline), make_record("a/app", 2, kBaseline)};
  const std::vector<sim::TruthRecord> truths = {
      make_truth("a/app", 1, kBaseline), make_truth("a/app", 2, kBaseline)};
  const report::ConfusionReport drill = report::build_confusion(records, truths);

  ASSERT_EQ(drill.confidence.size(), 5u);
  for (const report::AxisConfidence& axis : drill.confidence) {
    EXPECT_EQ(axis.count, 2u);
    EXPECT_NEAR(axis.mean(), 0.9, 1e-9);
    EXPECT_EQ(axis.buckets.size(), axis.bounds.size() + 1);
    std::uint64_t bucketed = 0;
    for (const std::uint64_t count : axis.buckets) bucketed += count;
    EXPECT_EQ(bucketed, axis.count);
  }
  EXPECT_EQ(drill.confidence[0].axis, "read_temporality");
  EXPECT_EQ(drill.confidence[4].axis, "metadata");
}

TEST(Confusion, StraddlingListHonorsCap) {
  std::vector<obs::TraceProvenance> records;
  std::vector<sim::TruthRecord> truths;
  for (std::uint64_t job = 0; job < 10; ++job) {
    records.push_back(make_record("a/app", job, kBaseline));
    truths.push_back(make_truth("a/app", job, kBaseline));
  }
  const report::ConfusionReport drill =
      report::build_confusion(records, truths, /*max_straddling=*/3);
  EXPECT_EQ(drill.straddling.size(), 3u);
}

TEST(Confusion, RenderAndJsonCarryTheDrillDown) {
  const std::vector<obs::TraceProvenance> records = {
      make_record("a/app", 1, kBaseline)};
  const std::vector<sim::TruthRecord> truths = {make_truth("a/app", 1, kBaseline)};
  const report::ConfusionReport drill = report::build_confusion(records, truths);

  const std::string md = report::render_confusion(drill);
  EXPECT_NE(md.find("Per-axis accuracy"), std::string::npos);
  EXPECT_NE(md.find("Per-category confusion"), std::string::npos);
  EXPECT_NE(md.find("straddling"), std::string::npos);

  const json::Value value = report::confusion_to_json(drill);
  ASSERT_TRUE(value.is_object());
  const json::Value* joined = value.as_object().find("joined");
  ASSERT_NE(joined, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(joined->as_number()), 1u);
}

}  // namespace
