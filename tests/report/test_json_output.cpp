#include "report/json_output.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace mosaic::report {
namespace {

core::TraceResult make_result() {
  core::TraceResult result;
  result.app_key = "u1/app";
  result.job_id = 77;
  result.runtime = 3600.0;
  result.nprocs = 64;
  result.bytes_read = 1 << 30;
  result.bytes_written = 2ull << 30;
  result.read.temporality.label = core::Temporality::kOnStart;
  result.read.temporality.chunk_bytes = {1e9, 0.0, 0.0, 0.0};
  result.read.temporality.total_bytes = 1e9;
  result.read.raw_ops = 5;
  result.read.merged_ops = 1;
  result.write.temporality.label = core::Temporality::kSteady;
  result.write.temporality.chunk_bytes = {5e8, 5e8, 5e8, 5e8};
  result.write.periodicity.periodic = true;
  core::PeriodicGroup group;
  group.period_seconds = 600.0;
  group.magnitude = core::PeriodMagnitude::kMinute;
  group.mean_bytes = 5e8;
  group.busy_ratio = 0.01;
  group.occurrences = 6;
  result.write.periodicity.groups.push_back(group);
  result.metadata.insignificant = false;
  result.metadata.high_spike = true;
  result.metadata.total_requests = 5000;
  result.categories.insert(core::Category::kReadOnStart);
  result.categories.insert(core::Category::kWriteSteady);
  result.categories.insert(core::Category::kWritePeriodic);
  result.categories.insert(core::Category::kMetadataHighSpike);
  return result;
}

core::BatchResult make_batch() {
  core::BatchResult batch;
  batch.preprocess.input_traces = 10;
  batch.preprocess.corrupted = 3;
  batch.preprocess.valid = 7;
  batch.preprocess.unique_applications = 2;
  batch.preprocess.retained = 2;
  batch.preprocess.corruption_breakdown["non-positive-runtime"] = 3;
  batch.runs_per_app["u1/app"] = 6;
  batch.runs_per_app["u2/other"] = 1;
  batch.results.push_back(make_result());
  core::TraceResult other;
  other.app_key = "u2/other";
  other.job_id = 78;
  other.categories.insert(core::Category::kReadInsignificant);
  batch.results.push_back(std::move(other));
  return batch;
}

TEST(TraceResultJson, ContainsCoreFields) {
  const json::Value value = trace_result_to_json(make_result());
  ASSERT_TRUE(value.is_object());
  const json::Object& obj = value.as_object();
  EXPECT_EQ(obj.find("app")->as_string(), "u1/app");
  EXPECT_DOUBLE_EQ(obj.find("job_id")->as_number(), 77.0);
  EXPECT_DOUBLE_EQ(obj.find("nprocs")->as_number(), 64.0);

  const json::Array& categories = obj.find("categories")->as_array();
  EXPECT_EQ(categories.size(), 4u);

  const json::Object& write = obj.find("write")->as_object();
  EXPECT_EQ(write.find("temporality")->as_string(), "steady");
  const json::Object& periodicity =
      write.find("periodicity")->as_object();
  EXPECT_TRUE(periodicity.find("periodic")->as_bool());
  const json::Array& groups = periodicity.find("groups")->as_array();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].as_object().find("magnitude")->as_string(), "minute");
  EXPECT_DOUBLE_EQ(
      groups[0].as_object().find("period_seconds")->as_number(), 600.0);
}

TEST(TraceResultJson, SerializationParsesBack) {
  const std::string text =
      json::serialize(trace_result_to_json(make_result()));
  const auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
}

TEST(BatchJson, FunnelAndCategoryBlocks) {
  const json::Value value = batch_to_json(make_batch());
  const json::Object& obj = value.as_object();

  const json::Object& funnel = obj.find("preprocessing")->as_object();
  EXPECT_DOUBLE_EQ(funnel.find("input_traces")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(funnel.find("corrupted")->as_number(), 3.0);
  const json::Object& breakdown =
      funnel.find("corruption_breakdown")->as_object();
  EXPECT_DOUBLE_EQ(breakdown.find("non-positive-runtime")->as_number(), 3.0);

  const json::Object& categories = obj.find("categories")->as_object();
  const json::Object& on_start =
      categories.find("read_on_start")->as_object();
  EXPECT_DOUBLE_EQ(on_start.find("single_run_fraction")->as_number(), 0.5);
  // 6 of 7 runs carry read_on_start.
  EXPECT_NEAR(on_start.find("all_runs_fraction")->as_number(), 6.0 / 7.0,
              1e-12);
  EXPECT_EQ(obj.find("traces"), nullptr);  // excluded by default
}

TEST(BatchJson, IncludeTracesEmitsPerTraceEntries) {
  const json::Value value = batch_to_json(make_batch(), true);
  const json::Array& traces = value.as_object().find("traces")->as_array();
  EXPECT_EQ(traces.size(), 2u);
}

TEST(BatchJson, WriteToFileRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mosaic_batch.json").string();
  ASSERT_TRUE(write_batch_json(make_batch(), path).ok());
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = json::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->as_object().contains("preprocessing"));
  std::filesystem::remove(path);
}

TEST(BatchJson, WriteToBadPathFails) {
  EXPECT_FALSE(
      write_batch_json(make_batch(), "/no/such/dir/out.json").ok());
}

}  // namespace
}  // namespace mosaic::report
