#include "report/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace mosaic::report {
namespace {

using core::Category;

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("read_on_start"), "read_on_start");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(DistributionCsv, OneRowPerCategoryPlusHeader) {
  CategoryDistribution distribution;
  distribution.trace_count = 10;
  distribution.run_count = 100.0;
  distribution.single[static_cast<std::size_t>(Category::kReadOnStart)] = 5;
  distribution.weighted[static_cast<std::size_t>(Category::kReadOnStart)] =
      80.0;

  const std::string csv = distribution_to_csv(distribution);
  std::istringstream lines(csv);
  std::string line;
  std::size_t count = 0;
  bool found = false;
  while (std::getline(lines, line)) {
    if (count == 0) {
      EXPECT_EQ(line,
                "category,single_run_fraction,all_runs_fraction,trace_count");
    }
    if (line.rfind("read_on_start,", 0) == 0) {
      found = true;
      EXPECT_EQ(line, "read_on_start,0.500000,0.800000,5");
    }
    ++count;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(count, 1 + core::kCategoryCount);
}

TEST(MatrixCsv, SquareWithLabels) {
  CategoryMatrix matrix;
  matrix.categories = {Category::kReadOnStart, Category::kWriteOnEnd};
  matrix.values = {{1.0, 0.66}, {0.66, 1.0}};
  const std::string csv = matrix_to_csv(matrix);
  EXPECT_EQ(csv,
            "category,read_on_start,write_on_end\n"
            "read_on_start,1.000000,0.660000\n"
            "write_on_end,0.660000,1.000000\n");
}

TEST(WriteTextToFile, RoundTripAndFailure) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mosaic_csv_test.csv").string();
  ASSERT_TRUE(write_text_to_file("a,b\n1,2\n", path).ok());
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\n");
  std::filesystem::remove(path);

  EXPECT_FALSE(write_text_to_file("x", "/no/such/dir/file.csv").ok());
}

}  // namespace
}  // namespace mosaic::report
