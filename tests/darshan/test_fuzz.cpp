// Robustness tests: the parsers must reject arbitrary garbage gracefully —
// never crash, never hang, never fabricate a valid-looking trace from noise.
// A year-scale ingest job will see every kind of mangled input.
#include <gtest/gtest.h>

#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "json/json.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mosaic {
namespace {

std::vector<std::byte> random_bytes(util::Rng& rng, std::size_t size) {
  std::vector<std::byte> bytes(size);
  for (auto& b : bytes) {
    b = static_cast<std::byte>(rng.uniform_int(0, 255));
  }
  return bytes;
}

std::string random_text(util::Rng& rng, std::size_t size) {
  static constexpr char kAlphabet[] =
      "POSIX_BYTES_READ\t-1 0123456789.eE+\n# :{}[]\"\\abcxyz";
  std::string text;
  text.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    text += kAlphabet[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sizeof kAlphabet) - 2))];
  }
  return text;
}

TEST(FuzzMbt, RandomBuffersNeverCrash) {
  util::Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 2048));
    const auto bytes = random_bytes(rng, size);
    const auto result = darshan::parse_mbt(bytes);
    // Random bytes essentially never carry a valid FNV trailer.
    EXPECT_FALSE(result.has_value());
  }
}

TEST(FuzzMbt, MutatedValidBufferNeverCrashes) {
  trace::Trace t;
  t.meta.job_id = 5;
  t.meta.app_name = "fuzz";
  t.meta.user = "u";
  t.meta.nprocs = 8;
  t.meta.run_time = 100.0;
  for (int i = 0; i < 5; ++i) {
    trace::FileRecord file;
    file.file_id = static_cast<std::uint64_t>(i);
    file.file_name = "/f" + std::to_string(i);
    file.bytes_written = 1u << 20;
    file.writes = 4;
    file.opens = 1;
    file.closes = 1;
    file.open_ts = 1.0;
    file.close_ts = 99.0;
    file.first_write_ts = 2.0;
    file.last_write_ts = 98.0;
    t.files.push_back(file);
  }
  const auto pristine = darshan::to_mbt(t);

  util::Rng rng(103);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = pristine;
    // Flip a few random bytes and/or truncate.
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[at] ^= static_cast<std::byte>(rng.uniform_int(1, 255));
    }
    if (rng.chance(0.3)) {
      mutated.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()))));
    }
    // Must not crash; almost always detected via checksum.
    (void)darshan::parse_mbt(mutated);
  }
}

// Builds a small but fully-populated trace so the encoded MBT buffer
// exercises every field kind (ints, doubles, strings, file records).
trace::Trace make_reference_trace() {
  trace::Trace t;
  t.meta.job_id = 77;
  t.meta.app_name = "exhaustive";
  t.meta.user = "fuzzer";
  t.meta.nprocs = 16;
  t.meta.start_time = 100.0;
  t.meta.run_time = 250.0;
  for (int i = 0; i < 3; ++i) {
    trace::FileRecord file;
    file.file_id = static_cast<std::uint64_t>(1000 + i);
    file.file_name = "/scratch/out." + std::to_string(i);
    file.rank = i;
    file.bytes_read = 512u << i;
    file.bytes_written = 4096u << i;
    file.reads = 2;
    file.writes = 8;
    file.opens = 1;
    file.closes = 1;
    file.open_ts = 1.0 + i;
    file.close_ts = 240.0;
    file.first_write_ts = 2.0;
    file.last_write_ts = 239.0;
    t.files.push_back(file);
  }
  return t;
}

// Every possible truncation of a valid MBT buffer must be rejected as a
// corrupt trace — never accepted, never misclassified, never a crash.
TEST(FuzzMbtExhaustive, EveryTruncationIsCorruptTrace) {
  const auto pristine = darshan::to_mbt(make_reference_trace());
  ASSERT_TRUE(darshan::parse_mbt(pristine).has_value());
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    std::vector<std::byte> cut(pristine.begin(),
                               pristine.begin() + static_cast<long>(len));
    const auto result = darshan::parse_mbt(cut);
    ASSERT_FALSE(result.has_value()) << "accepted truncation to " << len;
    EXPECT_EQ(result.error().code, util::ErrorCode::kCorruptTrace)
        << "truncation to " << len << " bytes misclassified as "
        << util::error_code_name(result.error().code);
  }
}

// Every possible single-bit flip must be caught: the FNV-1a trailer covers
// the entire body (magic and version included), and FNV-1a is injective
// under a one-byte change with all other bytes fixed, so a payload flip
// always changes the digest and a trailer flip always changes the
// expectation. There is no unprotected byte.
TEST(FuzzMbtExhaustive, EverySingleBitFlipIsCorruptTrace) {
  const auto pristine = darshan::to_mbt(make_reference_trace());
  for (std::size_t at = 0; at < pristine.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = pristine;
      mutated[at] ^= static_cast<std::byte>(1u << bit);
      const auto result = darshan::parse_mbt(mutated);
      ASSERT_FALSE(result.has_value())
          << "accepted flip of bit " << bit << " at byte " << at;
      EXPECT_EQ(result.error().code, util::ErrorCode::kCorruptTrace)
          << "flip at byte " << at << " bit " << bit << " misclassified as "
          << util::error_code_name(result.error().code);
    }
  }
}

TEST(FuzzDarshanText, RandomTextNeverCrashes) {
  util::Rng rng(107);
  for (int trial = 0; trial < 300; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 4096));
    const std::string text = random_text(rng, size);
    const auto result = darshan::parse_text(text);
    if (result.has_value()) {
      // Whatever parsed must at least satisfy the header contract.
      EXPECT_GT(result->meta.run_time, 0.0);
    }
  }
}

TEST(FuzzDarshanText, HeaderOnlyVariations) {
  util::Rng rng(109);
  const char* headers[] = {"# run time: ",  "# nprocs: ", "# jobid: ",
                           "# start_time: ", "# uid: ",    "# exe: "};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.uniform_int(0, 8));
    for (int l = 0; l < lines; ++l) {
      text += headers[rng.uniform_int(0, 5)];
      text += random_text(rng, static_cast<std::size_t>(rng.uniform_int(0, 30)));
      text += '\n';
    }
    (void)darshan::parse_text(text);
  }
}

TEST(FuzzJson, RandomTextNeverCrashes) {
  util::Rng rng(113);
  for (int trial = 0; trial < 500; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 2048));
    (void)json::parse(random_text(rng, size));
  }
}

TEST(FuzzJson, MutatedValidDocumentNeverCrashes) {
  const std::string pristine =
      R"({"a": [1, 2.5, true, null], "b": {"c": "text", "d": [{"e": 1}]}})";
  util::Rng rng(127);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = pristine;
    const int flips = static_cast<int>(rng.uniform_int(1, 5));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[at] = static_cast<char>(rng.uniform_int(32, 126));
    }
    const auto result = json::parse(mutated);
    if (result.has_value()) {
      // Anything accepted must re-serialize and re-parse cleanly.
      const auto again = json::parse(json::serialize(*result));
      EXPECT_TRUE(again.has_value());
    }
  }
}

TEST(FuzzRoundTrip, RandomTracesSurviveBothFormats) {
  util::Rng rng(131);
  for (int trial = 0; trial < 50; ++trial) {
    trace::Trace t;
    t.meta.job_id = rng();
    t.meta.app_name = "app_" + std::to_string(trial);
    t.meta.user = "u" + std::to_string(trial % 7);
    t.meta.nprocs = static_cast<std::uint32_t>(rng.uniform_int(1, 4096));
    t.meta.run_time = rng.uniform(1.0, 1e6);
    const int files = static_cast<int>(rng.uniform_int(0, 20));
    for (int f = 0; f < files; ++f) {
      trace::FileRecord record;
      record.file_id = rng();
      record.file_name = "/p/" + std::to_string(rng() % 1000);
      record.rank = static_cast<std::int32_t>(rng.uniform_int(-1, 100));
      record.bytes_read = rng() % (1ull << 40);
      record.bytes_written = rng() % (1ull << 40);
      record.reads = rng() % 10000;
      record.writes = rng() % 10000;
      record.opens = rng() % 1000;
      record.closes = record.opens;
      record.seeks = rng() % 1000;
      record.open_ts = rng.uniform(0.0, t.meta.run_time);
      record.close_ts = rng.uniform(record.open_ts, t.meta.run_time);
      record.first_read_ts = record.open_ts;
      record.last_read_ts = record.close_ts;
      record.first_write_ts = record.open_ts;
      record.last_write_ts = record.close_ts;
      t.files.push_back(record);
    }

    const auto via_mbt = darshan::parse_mbt(darshan::to_mbt(t));
    ASSERT_TRUE(via_mbt.has_value());
    EXPECT_EQ(via_mbt->files.size(), t.files.size());
    EXPECT_EQ(via_mbt->total_bytes(), t.total_bytes());

    const auto via_text = darshan::parse_text(darshan::to_text(t));
    ASSERT_TRUE(via_text.has_value());
    EXPECT_EQ(via_text->total_bytes(), t.total_bytes());
  }
}

}  // namespace
}  // namespace mosaic
