#include "darshan/binary_format.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "darshan/io.hpp"

namespace mosaic::darshan {
namespace {

trace::Trace make_trace() {
  trace::Trace t;
  t.meta.job_id = 424242;
  t.meta.app_name = "vasp";
  t.meta.user = "u77";
  t.meta.nprocs = 256;
  t.meta.start_time = 1.6e9;
  t.meta.run_time = 7200.0;
  for (int i = 0; i < 3; ++i) {
    trace::FileRecord file;
    file.file_id = 1000u + static_cast<unsigned>(i);
    file.file_name = "/scratch/u77/out_" + std::to_string(i);
    file.rank = i == 0 ? trace::kSharedRank : i;
    file.bytes_written = 1u << (20 + i);
    file.writes = 10;
    file.opens = 4;
    file.closes = 4;
    file.seeks = 1;
    file.open_ts = 10.0 * i;
    file.close_ts = 10.0 * i + 100.0;
    file.first_write_ts = 10.0 * i + 1.0;
    file.last_write_ts = 10.0 * i + 99.0;
    t.files.push_back(file);
  }
  return t;
}

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a(std::string_view("")), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a(std::string_view("a")), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a(std::string_view("foobar")), 0x85944171F73967E8ull);
}

TEST(Mbt, RoundTripPreservesEverything) {
  const trace::Trace original = make_trace();
  const auto bytes = to_mbt(original);
  const auto parsed = parse_mbt(bytes);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->meta.job_id, original.meta.job_id);
  EXPECT_EQ(parsed->meta.app_name, original.meta.app_name);
  EXPECT_EQ(parsed->meta.user, original.meta.user);
  EXPECT_EQ(parsed->meta.nprocs, original.meta.nprocs);
  EXPECT_DOUBLE_EQ(parsed->meta.run_time, original.meta.run_time);
  ASSERT_EQ(parsed->files.size(), original.files.size());
  for (std::size_t i = 0; i < parsed->files.size(); ++i) {
    EXPECT_EQ(parsed->files[i].file_id, original.files[i].file_id);
    EXPECT_EQ(parsed->files[i].file_name, original.files[i].file_name);
    EXPECT_EQ(parsed->files[i].rank, original.files[i].rank);
    EXPECT_EQ(parsed->files[i].bytes_written, original.files[i].bytes_written);
    EXPECT_DOUBLE_EQ(parsed->files[i].open_ts, original.files[i].open_ts);
    EXPECT_DOUBLE_EQ(parsed->files[i].last_write_ts,
                     original.files[i].last_write_ts);
  }
}

TEST(Mbt, EmptyTraceRoundTrips) {
  trace::Trace t;
  t.meta.run_time = 1.0;
  const auto parsed = parse_mbt(to_mbt(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->files.empty());
}

TEST(Mbt, DetectsBitFlip) {
  auto bytes = to_mbt(make_trace());
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  const auto parsed = parse_mbt(bytes);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kCorruptTrace);
  EXPECT_NE(parsed.error().message.find("checksum"), std::string::npos);
}

TEST(Mbt, DetectsTruncation) {
  const auto bytes = to_mbt(make_trace());
  const std::span<const std::byte> truncated{bytes.data(), bytes.size() - 16};
  EXPECT_FALSE(parse_mbt(truncated).has_value());
}

TEST(Mbt, DetectsBadMagic) {
  auto bytes = to_mbt(make_trace());
  bytes[0] = std::byte{'X'};
  const auto parsed = parse_mbt(bytes);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("magic"), std::string::npos);
}

TEST(Mbt, RejectsTinyBuffers) {
  const std::vector<std::byte> tiny(4);
  EXPECT_FALSE(parse_mbt(tiny).has_value());
  EXPECT_FALSE(parse_mbt({}).has_value());
}

TEST(Mbt, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "mosaic_test.mbt").string();
  const trace::Trace original = make_trace();
  ASSERT_TRUE(write_mbt_file(original, path).ok());
  const auto loaded = read_mbt_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.job_id, original.meta.job_id);
  std::filesystem::remove(path);
}

TEST(TraceIo, DispatchesByExtension) {
  const auto dir = std::filesystem::temp_directory_path() / "mosaic_io_test";
  std::filesystem::create_directories(dir);
  const trace::Trace original = make_trace();
  ASSERT_TRUE(write_mbt_file(original, (dir / "a.mbt").string()).ok());

  const auto loaded = read_trace_file((dir / "a.mbt").string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.job_id, original.meta.job_id);

  const auto scan = scan_trace_dir(dir.string());
  ASSERT_TRUE(scan.has_value());
  ASSERT_EQ(scan->size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, ScanMissingDirectoryFails) {
  const auto scan = scan_trace_dir("/definitely/not/here");
  ASSERT_FALSE(scan.has_value());
  EXPECT_EQ(scan.error().code, util::ErrorCode::kNotFound);
}

}  // namespace
}  // namespace mosaic::darshan
