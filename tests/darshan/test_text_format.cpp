#include "darshan/text_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace mosaic::darshan {
namespace {

trace::Trace make_trace() {
  trace::Trace t;
  t.meta.job_id = 9807799;
  t.meta.app_name = "iobubble";
  t.meta.user = "380111";
  t.meta.nprocs = 64;
  t.meta.start_time = 1554861840.0;
  t.meta.run_time = 600.0;

  trace::FileRecord file;
  file.file_id = 123456789;
  file.file_name = "/scratch/u/data.h5";
  file.rank = trace::kSharedRank;
  file.bytes_read = 1 << 30;
  file.reads = 256;
  file.opens = 64;
  file.closes = 64;
  file.seeks = 32;
  file.open_ts = 1.5;
  file.close_ts = 590.0;
  file.first_read_ts = 2.0;
  file.last_read_ts = 580.0;
  t.files.push_back(file);

  trace::FileRecord out;
  out.file_id = 42;
  out.file_name = "/scratch/u/result.dat";
  out.rank = 0;
  out.bytes_written = 5 << 20;
  out.writes = 5;
  out.opens = 1;
  out.closes = 1;
  out.open_ts = 550.0;
  out.close_ts = 598.0;
  out.first_write_ts = 551.0;
  out.last_write_ts = 597.0;
  t.files.push_back(out);
  return t;
}

TEST(TextFormat, RoundTripPreservesEverything) {
  const trace::Trace original = make_trace();
  const std::string text = to_text(original);
  const auto parsed = parse_text(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();

  const trace::Trace& t = *parsed;
  EXPECT_EQ(t.meta.job_id, original.meta.job_id);
  EXPECT_EQ(t.meta.app_name, original.meta.app_name);
  EXPECT_EQ(t.meta.user, original.meta.user);
  EXPECT_EQ(t.meta.nprocs, original.meta.nprocs);
  EXPECT_DOUBLE_EQ(t.meta.run_time, original.meta.run_time);
  ASSERT_EQ(t.files.size(), original.files.size());
  for (std::size_t i = 0; i < t.files.size(); ++i) {
    const auto& a = t.files[i];
    const auto& b = original.files[i];
    EXPECT_EQ(a.file_id, b.file_id);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.opens, b.opens);
    EXPECT_EQ(a.closes, b.closes);
    EXPECT_EQ(a.seeks, b.seeks);
    EXPECT_NEAR(a.open_ts, b.open_ts, 1e-6);
    EXPECT_NEAR(a.close_ts, b.close_ts, 1e-6);
    EXPECT_NEAR(a.first_read_ts, b.first_read_ts, 1e-6);
    EXPECT_NEAR(a.last_write_ts, b.last_write_ts, 1e-6);
  }
}

TEST(TextFormat, ParsesRealDarshanParserShape) {
  // Mimics genuine darshan-parser output: extra headers, non-POSIX modules,
  // unknown counters — all tolerated.
  const std::string text =
      "# darshan log version: 3.10\n"
      "# compression method: ZLIB\n"
      "# exe: /u/sciteam/user/bin/lmp_bw -in in.script\n"
      "# uid: 380111\n"
      "# jobid: 9807799\n"
      "# start_time: 1554861840\n"
      "# nprocs: 32\n"
      "# run time: 120.5\n"
      "\n"
      "MPI-IO\t-1\t777\tMPIIO_INDEP_OPENS\t32\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_OPENS\t32\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_FDSYNCS\t0\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_BYTES_READ\t1048576\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_READS\t16\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_F_OPEN_START_TIMESTAMP\t0.1\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_F_CLOSE_END_TIMESTAMP\t100.0\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_F_READ_START_TIMESTAMP\t0.2\t/f\t/scr\tlustre\n"
      "POSIX\t-1\t555\tPOSIX_F_READ_END_TIMESTAMP\t99.0\t/f\t/scr\tlustre\n";
  const auto parsed = parse_text(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->meta.app_name, "lmp_bw");  // basename of argv[0]
  EXPECT_EQ(parsed->meta.nprocs, 32u);
  // Two records: the MPI-IO record 777 and the POSIX record 555 (distinct
  // record ids, so no aliasing).
  ASSERT_EQ(parsed->files.size(), 2u);
  const auto& mpiio = parsed->files[0];
  EXPECT_EQ(mpiio.file_id, 777u);
  EXPECT_EQ(mpiio.opens, 32u);
  const auto& posix = parsed->files[1];
  EXPECT_EQ(posix.file_id, 555u);
  EXPECT_EQ(posix.bytes_read, 1048576u);
  // No POSIX_CLOSES in upstream output: closes default to opens.
  EXPECT_EQ(posix.closes, 32u);
}

TEST(TextFormat, MpiioAliasedPosixRecordDropped) {
  // The same file instrumented at both layers: one MPI-IO record and one
  // POSIX record with the same record id. Keeping both would double count
  // every byte; the MPI-IO view wins.
  const std::string text =
      "# run time: 100\n"
      "MPI-IO\t-1\t42\tMPIIO_COLL_OPENS\t64\t/data\t/scr\tlustre\n"
      "MPI-IO\t-1\t42\tMPIIO_INDEP_OPENS\t4\t/data\t/scr\tlustre\n"
      "MPI-IO\t-1\t42\tMPIIO_BYTES_WRITTEN\t1000000\t/data\t/scr\tlustre\n"
      "MPI-IO\t-1\t42\tMPIIO_COLL_WRITES\t64\t/data\t/scr\tlustre\n"
      "MPI-IO\t-1\t42\tMPIIO_F_OPEN_START_TIMESTAMP\t1\t/data\t/scr\tl\n"
      "MPI-IO\t-1\t42\tMPIIO_F_CLOSE_END_TIMESTAMP\t90\t/data\t/scr\tl\n"
      "MPI-IO\t-1\t42\tMPIIO_F_WRITE_START_TIMESTAMP\t2\t/data\t/scr\tl\n"
      "MPI-IO\t-1\t42\tMPIIO_F_WRITE_END_TIMESTAMP\t89\t/data\t/scr\tl\n"
      "POSIX\t-1\t42\tPOSIX_OPENS\t64\t/data\t/scr\tlustre\n"
      "POSIX\t-1\t42\tPOSIX_BYTES_WRITTEN\t1000000\t/data\t/scr\tlustre\n"
      "POSIX\t-1\t42\tPOSIX_WRITES\t640\t/data\t/scr\tlustre\n";
  const auto parsed = parse_text(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  ASSERT_EQ(parsed->files.size(), 1u);
  const auto& record = parsed->files[0];
  // INDEP + COLL opens accumulate.
  EXPECT_EQ(record.opens, 68u);
  EXPECT_EQ(record.writes, 64u);
  EXPECT_EQ(record.bytes_written, 1000000u);
  // The total is NOT double counted.
  EXPECT_EQ(parsed->total_bytes_written(), 1000000u);
}

TEST(TextFormat, StdioRecordsParsedAlongsidePosix) {
  const std::string text =
      "# run time: 50\n"
      "STDIO\t0\t7\tSTDIO_OPENS\t1\t<STDOUT>\t/\tNA\n"
      "STDIO\t0\t7\tSTDIO_WRITES\t200\t<STDOUT>\t/\tNA\n"
      "STDIO\t0\t7\tSTDIO_BYTES_WRITTEN\t4096\t<STDOUT>\t/\tNA\n"
      "STDIO\t0\t7\tSTDIO_F_OPEN_START_TIMESTAMP\t0\t<STDOUT>\t/\tNA\n"
      "STDIO\t0\t7\tSTDIO_F_CLOSE_END_TIMESTAMP\t49\t<STDOUT>\t/\tNA\n"
      "STDIO\t0\t7\tSTDIO_F_WRITE_START_TIMESTAMP\t1\t<STDOUT>\t/\tNA\n"
      "STDIO\t0\t7\tSTDIO_F_WRITE_END_TIMESTAMP\t48\t<STDOUT>\t/\tNA\n"
      "POSIX\t0\t9\tPOSIX_OPENS\t1\t/log\t/scr\tlustre\n"
      "POSIX\t0\t9\tPOSIX_BYTES_READ\t2048\t/log\t/scr\tlustre\n"
      "POSIX\t0\t9\tPOSIX_READS\t2\t/log\t/scr\tlustre\n";
  const auto parsed = parse_text(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  ASSERT_EQ(parsed->files.size(), 2u);  // STDIO never aliases POSIX
  EXPECT_EQ(parsed->total_bytes_written(), 4096u);
  EXPECT_EQ(parsed->total_bytes_read(), 2048u);
}

TEST(TextFormat, MissingRunTimeFails) {
  const auto parsed = parse_text("# nprocs: 4\n");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kParseError);
}

TEST(TextFormat, MalformedRowFails) {
  const std::string text =
      "# run time: 10\n"
      "POSIX\t-1\tnot_a_number\tPOSIX_OPENS\t1\t/f\n";
  EXPECT_FALSE(parse_text(text).has_value());
}

TEST(TextFormat, ShortRowFails) {
  const std::string text =
      "# run time: 10\n"
      "POSIX\t-1\t5\n";
  EXPECT_FALSE(parse_text(text).has_value());
}

TEST(TextFormat, PerRankRecordsStayDistinct) {
  const std::string text =
      "# run time: 50\n"
      "POSIX\t0\t99\tPOSIX_OPENS\t1\t/f\n"
      "POSIX\t1\t99\tPOSIX_OPENS\t1\t/f\n";
  const auto parsed = parse_text(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->files.size(), 2u);  // same file id, different ranks
}

TEST(TextFormat, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "mosaic_test_trace.txt").string();
  const trace::Trace original = make_trace();
  ASSERT_TRUE(write_text_file(original, path).ok());
  const auto loaded = read_text_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.job_id, original.meta.job_id);
  EXPECT_EQ(loaded->files.size(), original.files.size());
  std::filesystem::remove(path);
}

TEST(TextFormat, MissingFileReportsIoError) {
  const auto result = read_text_file("/nonexistent/path/file.txt");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, util::ErrorCode::kIoError);
}

}  // namespace
}  // namespace mosaic::darshan
