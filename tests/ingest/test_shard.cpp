// Deterministic corpus sharding (ingest/shard.hpp): the partition must be a
// function of (file name, N) alone — stable across scan order, mounts and
// processes — and every file must land in exactly one shard, or merged
// partials would double- or under-count the corpus.
#include "ingest/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace mosaic::ingest {
namespace {

std::vector<std::string> sample_corpus() {
  std::vector<std::string> paths;
  paths.reserve(500);
  for (int i = 0; i < 500; ++i) {
    paths.push_back("pop/job_" + std::to_string(1000 + i * 7) + ".mbt");
  }
  return paths;
}

TEST(Shard, EveryFileOwnedByExactlyOneShard) {
  const auto corpus = sample_corpus();
  for (const std::size_t count : {2U, 3U, 8U}) {
    for (const std::string& path : corpus) {
      std::size_t owners = 0;
      for (std::size_t k = 0; k < count; ++k) {
        ShardSpec spec;
        spec.index = k;
        spec.count = count;
        owners += shard_owns(spec, path) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1U) << path << " with N=" << count;
    }
  }
}

TEST(Shard, AssignmentIgnoresDirectoryPrefix) {
  // The same corpus scanned from a different mount point (or relative path)
  // must shard identically, or a resumed multi-host run would reshuffle
  // ownership mid-flight.
  for (const std::string& name : {"job_123.mbt", "job_9.darshan.txt"}) {
    const std::size_t expected = shard_of(name, 8);
    EXPECT_EQ(shard_of("/mnt/a/pop/" + name, 8), expected);
    EXPECT_EQ(shard_of("./pop/" + name, 8), expected);
    EXPECT_EQ(shard_of("C:\\traces\\" + name, 8), expected);
  }
}

TEST(Shard, AssignmentSpreadsAcrossShards) {
  // Not a uniformity proof — just a guard against a degenerate hash that
  // sends everything to shard 0.
  const auto corpus = sample_corpus();
  std::vector<std::size_t> counts(8, 0);
  for (const std::string& path : corpus) ++counts[shard_of(path, 8)];
  for (std::size_t k = 0; k < counts.size(); ++k) {
    EXPECT_GT(counts[k], 0U) << "shard " << k << " owns nothing";
  }
}

TEST(Shard, SingleShardOwnsEverything) {
  EXPECT_EQ(shard_of("anything.mbt", 1), 0U);
  EXPECT_EQ(shard_of("anything.mbt", 0), 0U);
  ShardSpec whole;
  EXPECT_FALSE(whole.active());
  EXPECT_TRUE(shard_owns(whole, "anything.mbt"));
}

TEST(Shard, ParseSpecAcceptsValidForms) {
  const auto spec = parse_shard_spec("2/8");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 2U);
  EXPECT_EQ(spec->count, 8U);
  EXPECT_TRUE(spec->active());

  const auto whole = parse_shard_spec("0/1");
  ASSERT_TRUE(whole.has_value());
  EXPECT_FALSE(whole->active());
}

TEST(Shard, ParseSpecRejectsMalformedText) {
  for (const char* text :
       {"", "3", "a/b", "1/0", "4/4", "5/2", "-1/4", "1.5/4"}) {
    EXPECT_FALSE(parse_shard_spec(text).has_value()) << text;
  }
}

TEST(Shard, SuffixPathInsertsBeforeExtension) {
  EXPECT_EQ(shard_suffix_path("metrics.json", 2), "metrics.shard-2.json");
  EXPECT_EQ(shard_suffix_path("out/run.journal.jsonl", 0),
            "out/run.journal.shard-0.jsonl");
  EXPECT_EQ(shard_suffix_path("provdir", 3), "provdir.shard-3");
  // A dot in a directory component must not be mistaken for an extension.
  EXPECT_EQ(shard_suffix_path("run.d/journal", 1), "run.d/journal.shard-1");
}

TEST(Shard, PartialFilenameIsCanonical) {
  EXPECT_EQ(partial_filename(0), "results.shard-0.json");
  EXPECT_EQ(partial_filename(17), "results.shard-17.json");
}

}  // namespace
}  // namespace mosaic::ingest
