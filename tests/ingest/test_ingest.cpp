// Fault-tolerant ingestion: the acceptance tests for the streaming loader.
//
// A seeded corpus mixes valid traces (several runs per application), a
// semantically corrupt trace, a truncated binary, unparseable garbage and a
// missing path; the funnel must classify every one of them. On top of that,
// the fault-injection harness proves transient I/O errors heal through the
// retry loop, and the resume journal reproduces a byte-identical JSON
// summary after a simulated mid-batch crash.
#include "ingest/ingest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "ingest/journal.hpp"
#include "ingest/reader.hpp"
#include "report/json_output.hpp"

namespace mosaic::ingest {
namespace {

namespace fs = std::filesystem;

trace::Trace make_trace(const std::string& user, const std::string& app,
                        std::uint64_t job_id, std::uint64_t bytes) {
  trace::Trace t;
  t.meta.job_id = job_id;
  t.meta.app_name = app;
  t.meta.user = user;
  t.meta.nprocs = 8;
  t.meta.run_time = 200.0;
  trace::FileRecord file;
  file.file_id = job_id;
  file.file_name = "/data/out.dat";
  file.bytes_written = bytes;
  file.writes = 4;
  file.opens = 1;
  file.closes = 1;
  file.open_ts = 1.0;
  file.close_ts = 190.0;
  file.first_write_ts = 2.0;
  file.last_write_ts = 180.0;
  t.files.push_back(file);
  return t;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("mosaic_ingest_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Writes the standard mixed corpus and returns its paths in scan order.
  std::vector<std::string> seed_corpus() {
    std::vector<std::string> paths;
    // Two runs of u1/alpha: run 2 is heavier and must win dedup.
    EXPECT_TRUE(darshan::write_text_file(make_trace("u1", "alpha", 1, 1 << 20),
                                         path("alpha_run1.txt"))
                    .ok());
    EXPECT_TRUE(darshan::write_text_file(make_trace("u1", "alpha", 2, 4 << 20),
                                         path("alpha_run2.txt"))
                    .ok());
    // One binary trace of u2/beta.
    EXPECT_TRUE(darshan::write_mbt_file(make_trace("u2", "beta", 3, 2 << 20),
                                        path("beta.mbt"))
                    .ok());
    // Parseable but semantically corrupt: file closed long after job end.
    trace::Trace corrupt = make_trace("u3", "gamma", 4, 1 << 20);
    corrupt.files[0].close_ts = corrupt.meta.run_time + 500.0;
    EXPECT_TRUE(
        darshan::write_text_file(corrupt, path("corrupt_validity.txt")).ok());
    // Torn binary: a valid MBT cut mid-record (checksum cannot match).
    const auto bytes = darshan::to_mbt(make_trace("u4", "delta", 5, 1 << 20));
    {
      std::ofstream torn(path("truncated.mbt"), std::ios::binary);
      torn.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    // Not a trace at all.
    {
      std::ofstream garbage(path("garbage.txt"));
      garbage << "this is not a darshan trace\n";
    }
    paths.push_back(path("alpha_run1.txt"));
    paths.push_back(path("alpha_run2.txt"));
    paths.push_back(path("beta.mbt"));
    paths.push_back(path("corrupt_validity.txt"));
    paths.push_back(path("truncated.mbt"));
    paths.push_back(path("garbage.txt"));
    paths.push_back(path("missing.txt"));  // never created
    return paths;
  }

  fs::path dir_;
};

TEST_F(IngestTest, MixedCorpusClassifiedByErrorCode) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(4);
  IngestOptions options;
  options.backoff_initial_ms = 0.01;
  auto result = ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());

  const IngestStats& stats = result->stats;
  EXPECT_EQ(stats.files_scanned, 7u);
  EXPECT_EQ(stats.loaded, 4u);   // alpha x2, beta, corrupt (parses fine)
  EXPECT_EQ(stats.failed, 3u);   // truncated, garbage, missing
  EXPECT_FALSE(stats.aborted);

  const core::PreprocessStats& funnel = result->pre.stats;
  EXPECT_EQ(funnel.input_traces, 7u);
  EXPECT_EQ(funnel.load_failed, 3u);
  EXPECT_EQ(funnel.corrupted, 1u);
  EXPECT_EQ(funnel.valid, 3u);
  EXPECT_EQ(funnel.retained, 2u);  // u1/alpha + u2/beta
  EXPECT_EQ(funnel.eviction_breakdown.at("parse-error"), 1u);
  EXPECT_EQ(funnel.eviction_breakdown.at("not-found"), 1u);
  // Truncated MBT (checksum) + semantic validity eviction both land here.
  EXPECT_EQ(funnel.eviction_breakdown.at("corrupt-trace"), 2u);
  EXPECT_EQ(funnel.corruption_breakdown.at("access-outside-job"), 1u);

  // Dedup kept the heavier alpha run; retained sorted by app key.
  ASSERT_EQ(result->pre.retained.size(), 2u);
  EXPECT_EQ(result->pre.retained[0].meta.job_id, 2u);  // u1/alpha run 2
  EXPECT_EQ(result->pre.retained[1].meta.job_id, 3u);  // u2/beta
  EXPECT_EQ(result->pre.runs_per_app.at("u1/alpha"), 2u);
}

TEST_F(IngestTest, TransientFaultsRecoverThroughRetry) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(4);

  FaultSpec spec;
  spec.seed = 7;
  spec.transient_eio_probability = 1.0;  // every file fails its first reads
  spec.transient_eio_failures = 2;
  FaultyFileReader faulty(spec);

  IngestOptions options;
  options.reader = &faulty;
  options.max_retries = 3;
  options.backoff_initial_ms = 0.01;
  auto result = ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());

  // Identical funnel to the fault-free run: transient faults are invisible
  // after retries. (missing.txt heals its injected EIOs too, then fails
  // with kNotFound from the real filesystem — still not retried further.)
  EXPECT_EQ(result->stats.loaded, 4u);
  EXPECT_EQ(result->stats.recovered, 4u);
  EXPECT_GE(result->stats.retry_attempts, 4u * 2u);
  EXPECT_EQ(result->pre.stats.load_failed, 3u);
  EXPECT_EQ(result->pre.stats.retained, 2u);
}

TEST_F(IngestTest, RetriesExhaustedClassifiedAsIoError) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);

  FaultSpec spec;
  spec.transient_eio_probability = 1.0;
  spec.transient_eio_failures = 100;  // never heals within the retry budget
  FaultyFileReader faulty(spec);

  IngestOptions options;
  options.reader = &faulty;
  options.max_retries = 2;
  options.backoff_initial_ms = 0.01;
  auto result = ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stats.loaded, 0u);
  // The injector sits in front of the filesystem, so even missing.txt is
  // evicted as io-error — its retries never reach the real reader.
  EXPECT_EQ(result->pre.stats.eviction_breakdown.at("io-error"), 7u);
}

TEST_F(IngestTest, DeadlineExpiryClassifiedAsTimeout) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);

  FaultSpec spec;
  spec.transient_eio_probability = 1.0;
  spec.transient_eio_failures = 100;
  FaultyFileReader faulty(spec);

  IngestOptions options;
  options.reader = &faulty;
  options.max_retries = 50;
  options.backoff_initial_ms = 0.01;
  options.file_deadline_seconds = 1e-6;  // expired before the first retry
  auto result = ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->pre.stats.eviction_breakdown.at("timeout"), 7u);
}

TEST_F(IngestTest, QuarantineMovesContentFailuresOnly) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);
  IngestOptions options;
  options.quarantine_dir = path("quarantine");
  auto result = ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());

  // Content failures: corrupt_validity, truncated.mbt, garbage. Environmental
  // failures (missing.txt) stay put; healthy files are untouched.
  EXPECT_EQ(result->stats.quarantined, 3u);
  EXPECT_TRUE(fs::exists(path("quarantine/corrupt_validity.txt")));
  EXPECT_TRUE(fs::exists(path("quarantine/truncated.mbt")));
  EXPECT_TRUE(fs::exists(path("quarantine/garbage.txt")));
  EXPECT_FALSE(fs::exists(path("corrupt_validity.txt")));
  EXPECT_TRUE(fs::exists(path("alpha_run1.txt")));
}

TEST_F(IngestTest, JournalWrittenForEveryFile) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);
  IngestOptions options;
  options.journal_path = path("journal.jsonl");
  auto result = ingest_paths(paths, options, pool);
  ASSERT_TRUE(result.has_value());

  const auto journal = load_journal(options.journal_path);
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->size(), 7u);
  EXPECT_TRUE(journal->at(path("alpha_run2.txt")).valid);
  EXPECT_EQ(journal->at(path("alpha_run2.txt")).app_key, "u1/alpha");
  EXPECT_EQ(journal->at(path("garbage.txt")).code, "parse-error");
  EXPECT_EQ(journal->at(path("missing.txt")).code, "not-found");
  EXPECT_EQ(journal->at(path("corrupt_validity.txt")).code, "corrupt-trace");
  EXPECT_EQ(journal->at(path("corrupt_validity.txt")).corruption_kind,
            "access-outside-job");
}

TEST_F(IngestTest, AbortedRunResumesToByteIdenticalSummary) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);
  const core::Thresholds thresholds;

  // Reference: one uninterrupted run.
  IngestOptions uninterrupted;
  uninterrupted.journal_path = path("journal_a.jsonl");
  auto full = ingest_paths(paths, uninterrupted, pool);
  ASSERT_TRUE(full.has_value());
  ASSERT_FALSE(full->stats.aborted);
  const core::BatchResult batch_full = core::analyze_preprocessed(
      std::move(full->pre), thresholds, &pool);
  ASSERT_TRUE(report::write_batch_json(batch_full, path("full.json"),
                                       /*include_traces=*/true)
                  .ok());

  // Crash after three files, then resume from the journal.
  IngestOptions crashing;
  crashing.journal_path = path("journal_b.jsonl");
  crashing.abort_after_files = 3;
  crashing.max_in_flight = 2;  // several windows, crash lands mid-stream
  auto aborted = ingest_paths(paths, crashing, pool);
  ASSERT_TRUE(aborted.has_value());
  EXPECT_TRUE(aborted->stats.aborted);

  IngestOptions resuming;
  resuming.journal_path = path("journal_b.jsonl");
  resuming.resume = true;
  auto resumed = ingest_paths(paths, resuming, pool);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_FALSE(resumed->stats.aborted);
  EXPECT_EQ(resumed->stats.journal_replayed, 3u);
  const core::BatchResult batch_resumed = core::analyze_preprocessed(
      std::move(resumed->pre), thresholds, &pool);
  ASSERT_TRUE(report::write_batch_json(batch_resumed, path("resumed.json"),
                                       /*include_traces=*/true)
                  .ok());

  const std::string full_json = slurp(path("full.json"));
  ASSERT_FALSE(full_json.empty());
  EXPECT_EQ(full_json, slurp(path("resumed.json")));
}

TEST_F(IngestTest, ResumeWithFaultInjectionStaysByteIdentical) {
  const auto paths = seed_corpus();
  parallel::ThreadPool pool(2);
  const core::Thresholds thresholds;

  FaultSpec spec;
  spec.seed = 99;
  spec.transient_eio_probability = 1.0;
  spec.transient_eio_failures = 1;
  FaultyFileReader faulty(spec);

  IngestOptions base;
  base.reader = &faulty;
  base.backoff_initial_ms = 0.01;

  IngestOptions uninterrupted = base;
  uninterrupted.journal_path = path("journal_a.jsonl");
  auto full = ingest_paths(paths, uninterrupted, pool);
  ASSERT_TRUE(full.has_value());
  const core::BatchResult batch_full = core::analyze_preprocessed(
      std::move(full->pre), thresholds, &pool);
  ASSERT_TRUE(report::write_batch_json(batch_full, path("full.json"), true)
                  .ok());

  IngestOptions crashing = base;
  crashing.journal_path = path("journal_b.jsonl");
  crashing.abort_after_files = 4;
  auto aborted = ingest_paths(paths, crashing, pool);
  ASSERT_TRUE(aborted.has_value());
  EXPECT_TRUE(aborted->stats.aborted);

  IngestOptions resuming = base;
  resuming.journal_path = path("journal_b.jsonl");
  resuming.resume = true;
  auto resumed = ingest_paths(paths, resuming, pool);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->stats.journal_replayed, 4u);
  const core::BatchResult batch_resumed = core::analyze_preprocessed(
      std::move(resumed->pre), thresholds, &pool);
  ASSERT_TRUE(
      report::write_batch_json(batch_resumed, path("resumed.json"), true)
          .ok());

  EXPECT_EQ(slurp(path("full.json")), slurp(path("resumed.json")));
}

TEST_F(IngestTest, LoadTraceSharesRetryPolicy) {
  const auto unused = seed_corpus();
  (void)unused;
  FaultSpec spec;
  spec.transient_eio_probability = 1.0;
  spec.transient_eio_failures = 2;
  FaultyFileReader faulty(spec);
  IngestOptions options;
  options.reader = &faulty;
  options.backoff_initial_ms = 0.01;

  std::size_t retries = 0;
  const auto trace = load_trace(path("beta.mbt"), options, &retries);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->meta.app_name, "beta");
  EXPECT_EQ(retries, 2u);

  const auto missing = load_trace(path("missing.txt"), options);
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, util::ErrorCode::kNotFound);
}

TEST(FaultSpecParse, FullSpecRoundTrips) {
  const auto spec = FaultSpec::parse(
      "seed=7,eio=0.3,eio_failures=2,eio_permanent=0.05,short=0.1,"
      "flip=0.15,delay=0.2,delay_ms=5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->transient_eio_probability, 0.3);
  EXPECT_EQ(spec->transient_eio_failures, 2);
  EXPECT_DOUBLE_EQ(spec->permanent_eio_probability, 0.05);
  EXPECT_DOUBLE_EQ(spec->short_read_probability, 0.1);
  EXPECT_DOUBLE_EQ(spec->bitflip_probability, 0.15);
  EXPECT_DOUBLE_EQ(spec->delay_probability, 0.2);
  EXPECT_DOUBLE_EQ(spec->delay_ms, 5.0);
}

TEST(FaultSpecParse, RejectsUnknownKeysAndNonNumbers) {
  EXPECT_FALSE(FaultSpec::parse("bogus=1").has_value());
  EXPECT_FALSE(FaultSpec::parse("eio=lots").has_value());
  EXPECT_FALSE(FaultSpec::parse("justakey").has_value());
  const auto empty = FaultSpec::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_DOUBLE_EQ(empty->transient_eio_probability, 0.0);
}

TEST(FaultyReader, DeterministicAcrossInstancesAndAttempts) {
  const fs::path dir =
      fs::temp_directory_path() / "mosaic_faulty_reader_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string file = (dir / "t.txt").string();
  ASSERT_TRUE(
      darshan::write_text_file(make_trace("u", "a", 1, 1024), file).ok());

  FaultSpec spec;
  spec.seed = 1234;
  spec.short_read_probability = 0.5;
  spec.bitflip_probability = 0.5;

  FaultyFileReader first(spec);
  FaultyFileReader second(spec);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto a = first.read(file, attempt);
    const auto b = second.read(file, attempt);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(*a, *b) << "fault injection diverged on attempt " << attempt;
    }
  }
  fs::remove_all(dir);
}

TEST(FaultyReader, TransientEioHealsAtConfiguredAttempt) {
  const fs::path dir = fs::temp_directory_path() / "mosaic_faulty_heal_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string file = (dir / "t.txt").string();
  ASSERT_TRUE(
      darshan::write_text_file(make_trace("u", "a", 1, 1024), file).ok());

  FaultSpec spec;
  spec.transient_eio_probability = 1.0;
  spec.transient_eio_failures = 3;
  FaultyFileReader reader(spec);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto result = reader.read(file, attempt);
    ASSERT_FALSE(result.has_value()) << "attempt " << attempt;
    EXPECT_EQ(result.error().code, util::ErrorCode::kIoError);
  }
  EXPECT_TRUE(reader.read(file, 3).has_value());
  fs::remove_all(dir);
}

TEST(Journal, TornTailAndGarbageLinesAreDropped) {
  const fs::path dir = fs::temp_directory_path() / "mosaic_journal_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal_path = (dir / "journal.jsonl").string();

  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(journal_path).ok());
    JournalEntry valid;
    valid.path = "/a.txt";
    valid.valid = true;
    valid.app_key = "u/a";
    valid.total_bytes = 18446744073709551615ull;  // exercises u64 round-trip
    valid.job_id = 9007199254740995ull;           // not double-representable
    ASSERT_TRUE(writer.append(valid).ok());
    JournalEntry evicted;
    evicted.path = "/b.txt";
    evicted.code = "corrupt-trace";
    evicted.corruption_kind = "inverted-window";
    ASSERT_TRUE(writer.append(evicted).ok());
  }
  {
    std::ofstream tail(journal_path, std::ios::app);
    tail << "not json at all\n";
    tail << R"({"path":"/c.txt","valid":tr)";  // torn mid-append, no newline
  }

  std::size_t dropped = 0;
  const auto loaded = load_journal(journal_path, &dropped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(loaded->at("/a.txt").total_bytes, 18446744073709551615ull);
  EXPECT_EQ(loaded->at("/a.txt").job_id, 9007199254740995ull);
  EXPECT_EQ(loaded->at("/b.txt").corruption_kind, "inverted-window");
  fs::remove_all(dir);
}

TEST(Journal, MissingFileIsEmptyMapAndLaterEntriesWin) {
  const fs::path dir = fs::temp_directory_path() / "mosaic_journal_rewrite";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal_path = (dir / "journal.jsonl").string();

  const auto missing = load_journal((dir / "nope.jsonl").string());
  ASSERT_TRUE(missing.has_value());
  EXPECT_TRUE(missing->empty());

  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(journal_path).ok());
    JournalEntry first;
    first.path = "/a.txt";
    first.code = "io-error";
    ASSERT_TRUE(writer.append(first).ok());
    JournalEntry second;  // same file journaled again by a resumed run
    second.path = "/a.txt";
    second.valid = true;
    second.app_key = "u/a";
    ASSERT_TRUE(writer.append(second).ok());
  }
  const auto loaded = load_journal(journal_path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_TRUE(loaded->at("/a.txt").valid);
  fs::remove_all(dir);
}

TEST(Journal, CrlfLineEndingsReplayCleanly) {
  // A journal that passed through a CRLF-normalizing transfer (git
  // autocrlf, SMB mount, Windows editor) must still replay: the trailing
  // '\r' is payload to getline and used to poison every line's JSON.
  const fs::path dir = fs::temp_directory_path() / "mosaic_journal_crlf";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal_path = (dir / "journal.jsonl").string();

  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(journal_path).ok());
    JournalEntry valid;
    valid.path = "/a.txt";
    valid.valid = true;
    valid.app_key = "u/a";
    valid.total_bytes = 123;
    valid.job_id = 7;
    ASSERT_TRUE(writer.append(valid).ok());
    JournalEntry evicted;
    evicted.path = "/b.txt";
    evicted.code = "corrupt-trace";
    evicted.corruption_kind = "inverted-window";
    ASSERT_TRUE(writer.append(evicted).ok());
  }
  // Rewrite LF -> CRLF, then add one genuinely torn line. The torn-line
  // counter must still count exactly that one line, not the CRLF ones.
  std::string text = slurp(journal_path);
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  crlf += R"({"path":"/c.txt","valid":tr)";
  crlf += "\r\n";
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out << crlf;
  }

  std::size_t dropped = 0;
  const auto loaded = load_journal(journal_path, &dropped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(dropped, 1u);
  EXPECT_TRUE(loaded->at("/a.txt").valid);
  EXPECT_EQ(loaded->at("/a.txt").total_bytes, 123u);
  EXPECT_EQ(loaded->at("/b.txt").corruption_kind, "inverted-window");
  fs::remove_all(dir);
}

TEST(FaultSpecParse, SeedKeepsFullUint64Precision) {
  // Seeds used to be parsed as double and cast back, silently rounding
  // values above 2^53 — the injected fault pattern then differed from the
  // one the user asked to reproduce.
  const auto spec = FaultSpec::parse("seed=18446744073709551615");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 18446744073709551615ull);

  const auto odd = FaultSpec::parse("seed=9007199254740993");  // 2^53 + 1
  ASSERT_TRUE(odd.has_value());
  EXPECT_EQ(odd->seed, 9007199254740993ull);

  EXPECT_FALSE(FaultSpec::parse("seed=-1").has_value());
  EXPECT_FALSE(FaultSpec::parse("seed=1.5").has_value());
}

TEST(FaultSpecParse, EioFailuresMustBeNonNegativeInteger) {
  EXPECT_FALSE(FaultSpec::parse("eio_failures=1.5").has_value());
  EXPECT_FALSE(FaultSpec::parse("eio_failures=-2").has_value());
  const auto spec = FaultSpec::parse("eio_failures=4");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->transient_eio_failures, 4);
}

}  // namespace
}  // namespace mosaic::ingest
