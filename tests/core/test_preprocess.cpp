#include "core/preprocess.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <utility>

namespace mosaic::core {
namespace {

trace::Trace make_trace(const std::string& user, const std::string& app,
                        std::uint64_t job_id, std::uint64_t bytes) {
  trace::Trace t;
  t.meta.job_id = job_id;
  t.meta.app_name = app;
  t.meta.user = user;
  t.meta.nprocs = 4;
  t.meta.run_time = 100.0;
  if (bytes > 0) {
    trace::FileRecord file;
    file.file_id = job_id;
    file.bytes_written = bytes;
    file.writes = 1;
    file.opens = 1;
    file.closes = 1;
    file.open_ts = 1.0;
    file.close_ts = 99.0;
    file.first_write_ts = 2.0;
    file.last_write_ts = 98.0;
    t.files.push_back(file);
  }
  return t;
}

TEST(Preprocess, EmptyInput) {
  const PreprocessResult result = preprocess(std::vector<trace::Trace>{});
  EXPECT_EQ(result.stats.input_traces, 0u);
  EXPECT_EQ(result.stats.retained, 0u);
  EXPECT_TRUE(result.retained.empty());
}

TEST(Preprocess, KeepsHeaviestTracePerApp) {
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "app", 1, 100));
  traces.push_back(make_trace("u1", "app", 2, 5000));  // heaviest
  traces.push_back(make_trace("u1", "app", 3, 200));
  const PreprocessResult result = preprocess(std::move(traces));
  ASSERT_EQ(result.retained.size(), 1u);
  EXPECT_EQ(result.retained[0].meta.job_id, 2u);
  EXPECT_EQ(result.runs_per_app.at("u1/app"), 3u);
}

TEST(Preprocess, DistinctUsersAreDistinctApps) {
  // Same executable run by two users: two applications (paper groups by
  // application *from a given user*).
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "lammps", 1, 100));
  traces.push_back(make_trace("u2", "lammps", 2, 100));
  const PreprocessResult result = preprocess(std::move(traces));
  EXPECT_EQ(result.retained.size(), 2u);
  EXPECT_EQ(result.stats.unique_applications, 2u);
}

TEST(Preprocess, EvictsCorruptedTraces) {
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "a", 1, 100));
  trace::Trace corrupt = make_trace("u2", "b", 2, 100);
  corrupt.meta.run_time = -1.0;
  traces.push_back(std::move(corrupt));
  const PreprocessResult result = preprocess(std::move(traces));
  EXPECT_EQ(result.stats.input_traces, 2u);
  EXPECT_EQ(result.stats.corrupted, 1u);
  EXPECT_EQ(result.stats.valid, 1u);
  EXPECT_EQ(result.stats.retained, 1u);
  EXPECT_EQ(result.stats.corruption_breakdown.at("non-positive-runtime"), 1u);
}

TEST(Preprocess, CorruptedRunsDoNotCountTowardRunsPerApp) {
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "a", 1, 100));
  trace::Trace corrupt = make_trace("u1", "a", 2, 900);
  corrupt.files[0].close_ts = 1e6;  // deallocation past end
  traces.push_back(std::move(corrupt));
  const PreprocessResult result = preprocess(std::move(traces));
  EXPECT_EQ(result.runs_per_app.at("u1/a"), 1u);
  // The corrupted (heavier) run must not have been chosen.
  ASSERT_EQ(result.retained.size(), 1u);
  EXPECT_EQ(result.retained[0].meta.job_id, 1u);
}

TEST(Preprocess, FunnelCountsConsistent) {
  std::vector<trace::Trace> traces;
  for (int app = 0; app < 5; ++app) {
    for (int run = 0; run < 10; ++run) {
      auto t = make_trace("u" + std::to_string(app), "app",
                          static_cast<std::uint64_t>(app * 100 + run),
                          static_cast<std::uint64_t>(run + 1));
      if (run % 3 == 0) t.meta.nprocs = 0;  // corrupt a third
      traces.push_back(std::move(t));
    }
  }
  const PreprocessResult result = preprocess(std::move(traces));
  EXPECT_EQ(result.stats.input_traces, 50u);
  EXPECT_EQ(result.stats.corrupted, 20u);  // runs 0,3,6,9 of each app
  EXPECT_EQ(result.stats.valid, 30u);
  EXPECT_EQ(result.stats.unique_applications, 5u);
  EXPECT_EQ(result.stats.retained, 5u);
  EXPECT_EQ(result.stats.valid,
            result.stats.input_traces - result.stats.corrupted);
  // Heaviest valid run per app is run 8 (bytes 9).
  for (const trace::Trace& t : result.retained) {
    EXPECT_EQ(t.meta.job_id % 100, 8u);
  }
}

TEST(Preprocess, TieBreaksKeepFirstHeaviest) {
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "a", 7, 100));
  traces.push_back(make_trace("u1", "a", 8, 100));  // equal weight
  const PreprocessResult result = preprocess(std::move(traces));
  ASSERT_EQ(result.retained.size(), 1u);
  EXPECT_EQ(result.retained[0].meta.job_id, 7u);
}

TEST(Preprocess, ValiditySlackForwarded) {
  trace::Trace t = make_trace("u1", "a", 1, 100);
  t.files[0].close_ts = 104.0;  // 4s past job end
  std::vector<trace::Trace> strict_input;
  strict_input.push_back(t);
  EXPECT_EQ(preprocess(std::move(strict_input), 1.0).stats.corrupted, 1u);
  std::vector<trace::Trace> lax_input;
  lax_input.push_back(t);
  EXPECT_EQ(preprocess(std::move(lax_input), 10.0).stats.corrupted, 0u);
}

TEST(Preprocess, NonConsumingOverloadMatchesConsuming) {
  // The span overload must reproduce the consuming overload exactly — same
  // winners, same funnel stats, same run weighting — while leaving the
  // input untouched (it only copies the dedup survivors).
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "app", 1, 100));
  traces.push_back(make_trace("u1", "app", 2, 5000));
  traces.push_back(make_trace("u2", "app", 3, 42));
  traces.push_back(make_trace("u1", "other", 4, 7));
  trace::Trace corrupt = make_trace("u3", "bad", 5, 9);
  corrupt.files[0].close_ts = 1e9;  // far past run_time: validity eviction
  traces.push_back(corrupt);

  const PreprocessResult by_ref =
      preprocess(std::span<const trace::Trace>(traces));
  ASSERT_EQ(traces.size(), 5u);  // input intact
  const PreprocessResult consumed = preprocess(std::move(traces));

  EXPECT_EQ(by_ref.stats.input_traces, consumed.stats.input_traces);
  EXPECT_EQ(by_ref.stats.corrupted, consumed.stats.corrupted);
  EXPECT_EQ(by_ref.stats.valid, consumed.stats.valid);
  EXPECT_EQ(by_ref.stats.unique_applications,
            consumed.stats.unique_applications);
  EXPECT_EQ(by_ref.stats.retained, consumed.stats.retained);
  EXPECT_EQ(by_ref.stats.corruption_breakdown, consumed.stats.corruption_breakdown);
  EXPECT_EQ(by_ref.stats.eviction_breakdown, consumed.stats.eviction_breakdown);
  EXPECT_EQ(by_ref.runs_per_app, consumed.runs_per_app);
  ASSERT_EQ(by_ref.retained.size(), consumed.retained.size());
  for (std::size_t i = 0; i < by_ref.retained.size(); ++i) {
    EXPECT_EQ(by_ref.retained[i].meta.job_id, consumed.retained[i].meta.job_id);
  }
}

TEST(StreamingPreprocessor, MatchesOneShotPreprocess) {
  std::vector<trace::Trace> traces;
  traces.push_back(make_trace("u1", "a", 1, 100));
  traces.push_back(make_trace("u1", "a", 2, 5000));
  traces.push_back(make_trace("u2", "b", 3, 700));
  trace::Trace corrupt = make_trace("u3", "c", 4, 100);
  corrupt.meta.nprocs = 0;
  traces.push_back(std::move(corrupt));

  StreamingPreprocessor streaming;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    (void)streaming.add_trace(traces[i], "/t/" + std::to_string(i));
  }
  const PreprocessResult incremental = streaming.finish();
  const PreprocessResult oneshot = preprocess(std::move(traces));

  EXPECT_EQ(incremental.stats.input_traces, oneshot.stats.input_traces);
  EXPECT_EQ(incremental.stats.corrupted, oneshot.stats.corrupted);
  EXPECT_EQ(incremental.stats.valid, oneshot.stats.valid);
  EXPECT_EQ(incremental.stats.retained, oneshot.stats.retained);
  EXPECT_EQ(incremental.runs_per_app, oneshot.runs_per_app);
  ASSERT_EQ(incremental.retained.size(), oneshot.retained.size());
  for (std::size_t i = 0; i < incremental.retained.size(); ++i) {
    EXPECT_EQ(incremental.retained[i].meta.job_id,
              oneshot.retained[i].meta.job_id);
  }
}

TEST(StreamingPreprocessor, ArrivalOrderDoesNotChangeWinner) {
  // Equal weight: job id breaks the tie, then path — never arrival order.
  const auto run = [](bool reversed) {
    StreamingPreprocessor pre;
    std::vector<std::pair<std::uint64_t, std::string>> runs = {
        {9, "/z.txt"}, {3, "/a.txt"}, {5, "/m.txt"}};
    if (reversed) std::reverse(runs.begin(), runs.end());
    for (const auto& [job, path] : runs) {
      (void)pre.add_trace(make_trace("u", "app", job, 100), path);
    }
    return pre.finish();
  };
  const PreprocessResult forward = run(false);
  const PreprocessResult backward = run(true);
  ASSERT_EQ(forward.retained.size(), 1u);
  ASSERT_EQ(backward.retained.size(), 1u);
  EXPECT_EQ(forward.retained[0].meta.job_id, 3u);
  EXPECT_EQ(backward.retained[0].meta.job_id, 3u);
}

TEST(StreamingPreprocessor, LoadFailuresFeedEvictionBreakdown) {
  StreamingPreprocessor pre;
  pre.add_load_failure(util::ErrorCode::kIoError);
  pre.add_load_failure(util::ErrorCode::kIoError);
  pre.add_load_failure(util::ErrorCode::kParseError);
  pre.add_load_failure(util::ErrorCode::kNotFound);
  pre.add_load_failure(util::ErrorCode::kTimeout);
  (void)pre.add_trace(make_trace("u", "a", 1, 10), "/ok");
  const PreprocessResult result = pre.finish();
  EXPECT_EQ(result.stats.input_traces, 6u);
  EXPECT_EQ(result.stats.load_failed, 5u);
  EXPECT_EQ(result.stats.valid, 1u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("io-error"), 2u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("parse-error"), 1u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("not-found"), 1u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("timeout"), 1u);
}

TEST(StreamingPreprocessor, DigestWinnerReloadedLazily) {
  StreamingPreprocessor pre;
  // Journaled digest is heavier than the in-memory trace: it must win and
  // be re-read through the reload hook; the loser must never be reloaded.
  pre.add_valid_digest({"/journaled.txt", "u/app", 9999, 42});
  (void)pre.add_trace(make_trace("u", "app", 1, 10), "/live.txt");
  std::vector<std::string> reloaded;
  const PreprocessResult result =
      pre.finish([&](const std::string& path) -> util::Expected<trace::Trace> {
        reloaded.push_back(path);
        return make_trace("u", "app", 42, 9999);
      });
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded[0], "/journaled.txt");
  ASSERT_EQ(result.retained.size(), 1u);
  EXPECT_EQ(result.retained[0].meta.job_id, 42u);
  EXPECT_EQ(result.runs_per_app.at("u/app"), 2u);
}

TEST(StreamingPreprocessor, FailedReloadDemotesApplication) {
  StreamingPreprocessor pre;
  pre.add_valid_digest({"/gone.txt", "u/app", 100, 1});
  const PreprocessResult result =
      pre.finish([](const std::string&) -> util::Expected<trace::Trace> {
        return util::Error{util::ErrorCode::kIoError, "disk died"};
      });
  EXPECT_TRUE(result.retained.empty());
  EXPECT_EQ(result.stats.retained, 0u);
  EXPECT_EQ(result.stats.valid, 0u);  // demoted: no longer a valid run
  EXPECT_EQ(result.stats.load_failed, 1u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("io-error"), 1u);
  EXPECT_FALSE(result.runs_per_app.count("u/app"));
}

TEST(StreamingPreprocessor, JournaledEvictionsReplayIntoFunnel) {
  StreamingPreprocessor pre;
  pre.add_journaled_eviction("parse-error", "");
  pre.add_journaled_eviction("corrupt-trace", "access-outside-job");
  const PreprocessResult result = pre.finish();
  EXPECT_EQ(result.stats.input_traces, 2u);
  EXPECT_EQ(result.stats.load_failed, 1u);
  EXPECT_EQ(result.stats.corrupted, 1u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("parse-error"), 1u);
  EXPECT_EQ(result.stats.eviction_breakdown.at("corrupt-trace"), 1u);
  EXPECT_EQ(result.stats.corruption_breakdown.at("access-outside-job"), 1u);
}

}  // namespace
}  // namespace mosaic::core
