#include "core/temporality.hpp"

#include <gtest/gtest.h>

#include <array>

namespace mosaic::core {
namespace {

using trace::IoOp;
using trace::OpKind;

constexpr std::uint64_t MiB = 1ull << 20;
constexpr std::uint64_t kBig = 500 * MiB;  // comfortably significant

IoOp op(double start, double end, std::uint64_t bytes) {
  return IoOp{.start = start, .end = end, .bytes = bytes};
}

TEST(ChunkVolumes, SingleOpInOneChunk) {
  const std::vector<IoOp> ops{op(10.0, 20.0, 1000)};
  const auto chunks = chunk_volumes(ops, 400.0, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_DOUBLE_EQ(chunks[0], 1000.0);
  EXPECT_DOUBLE_EQ(chunks[1] + chunks[2] + chunks[3], 0.0);
}

TEST(ChunkVolumes, StraddlingOpSplitsProportionally) {
  // Op spans [50, 150] over runtime 400: half in chunk 0, half in chunk 1.
  const std::vector<IoOp> ops{op(50.0, 150.0, 1000)};
  const auto chunks = chunk_volumes(ops, 400.0, 4);
  EXPECT_DOUBLE_EQ(chunks[0], 500.0);
  EXPECT_DOUBLE_EQ(chunks[1], 500.0);
}

TEST(ChunkVolumes, FullSpanDistributesEvenly) {
  const std::vector<IoOp> ops{op(0.0, 400.0, 4000)};
  const auto chunks = chunk_volumes(ops, 400.0, 4);
  for (const double chunk : chunks) EXPECT_DOUBLE_EQ(chunk, 1000.0);
}

TEST(ChunkVolumes, ConservesBytes) {
  const std::vector<IoOp> ops{op(0.0, 123.0, 777), op(50.0, 399.0, 333),
                              op(398.0, 400.0, 55)};
  const auto chunks = chunk_volumes(ops, 400.0, 4);
  double total = 0.0;
  for (const double chunk : chunks) total += chunk;
  EXPECT_NEAR(total, 777.0 + 333.0 + 55.0, 1e-9);
}

TEST(ChunkVolumes, ClampsOutOfRangeOps) {
  const std::vector<IoOp> ops{op(-10.0, 10.0, 100), op(395.0, 500.0, 100)};
  const auto chunks = chunk_volumes(ops, 400.0, 4);
  double total = 0.0;
  for (const double chunk : chunks) total += chunk;
  EXPECT_NEAR(total, 200.0, 1e-9);
}

TEST(ClassifyChunks, InsignificantBelowThreshold) {
  const std::array<double, 4> chunks{1e6, 0.0, 0.0, 0.0};
  EXPECT_EQ(classify_chunks(chunks, 1e6, {}), Temporality::kInsignificant);
}

TEST(ClassifyChunks, OnStart) {
  const std::array<double, 4> chunks{8e8, 1e8, 1e8, 1e8};
  EXPECT_EQ(classify_chunks(chunks, 11e8, {}), Temporality::kOnStart);
}

TEST(ClassifyChunks, OnEnd) {
  const std::array<double, 4> chunks{1e8, 1e8, 1e8, 9e8};
  EXPECT_EQ(classify_chunks(chunks, 12e8, {}), Temporality::kOnEnd);
}

TEST(ClassifyChunks, AfterStartAndBeforeEnd) {
  const std::array<double, 4> early{1e8, 8e8, 1e8, 1e8};
  EXPECT_EQ(classify_chunks(early, 11e8, {}), Temporality::kAfterStart);
  const std::array<double, 4> late{1e8, 1e8, 8e8, 1e8};
  EXPECT_EQ(classify_chunks(late, 11e8, {}), Temporality::kBeforeEnd);
}

TEST(ClassifyChunks, SteadyWhenCvLow) {
  const std::array<double, 4> chunks{2.5e8, 2.6e8, 2.4e8, 2.55e8};
  EXPECT_EQ(classify_chunks(chunks, 10.05e8, {}), Temporality::kSteady);
}

TEST(ClassifyChunks, MiddleDominanceIsAfterStartBeforeEnd) {
  const std::array<double, 4> chunks{0.5e8, 5e8, 4.5e8, 0.5e8};
  EXPECT_EQ(classify_chunks(chunks, 10.5e8, {}),
            Temporality::kAfterStartBeforeEnd);
}

TEST(ClassifyChunks, BimodalExtremesUnclassified) {
  // Strong start AND strong end: none of the paper's labels fit.
  const std::array<double, 4> chunks{5e8, 0.2e8, 0.2e8, 5e8};
  EXPECT_EQ(classify_chunks(chunks, 10.4e8, {}), Temporality::kUnclassified);
}

TEST(ClassifyChunks, DominanceIsStrict) {
  // First chunk exactly 2x the others: not strictly more than 2x -> not
  // dominant; CV of (2,1,1,1) ~ 0.35 -> not steady either -> unclassified.
  const std::array<double, 4> chunks{4e8, 2e8, 2e8, 2e8};
  EXPECT_EQ(classify_chunks(chunks, 10e8, {}), Temporality::kUnclassified);
}

TEST(ClassifyChunks, ZeroOtherChunksStillDominant) {
  const std::array<double, 4> chunks{3e8, 0.0, 0.0, 0.0};
  EXPECT_EQ(classify_chunks(chunks, 3e8, {}), Temporality::kOnStart);
}

TEST(ClassifyChunks, ThresholdsConfigurable) {
  Thresholds custom;
  custom.min_bytes = 1000;
  custom.steady_cv = 0.6;  // everything mildly flat becomes steady
  const std::array<double, 4> chunks{4e3, 2e3, 2e3, 2e3};
  EXPECT_EQ(classify_chunks(chunks, 10e3, custom), Temporality::kSteady);
}

TEST(ClassifyTemporality, EndToEndOnStart) {
  const std::vector<IoOp> ops{op(5.0, 15.0, kBig)};
  const TemporalityResult result = classify_temporality(ops, 1000.0);
  EXPECT_EQ(result.label, Temporality::kOnStart);
  EXPECT_DOUBLE_EQ(result.total_bytes, static_cast<double>(kBig));
  ASSERT_EQ(result.chunk_bytes.size(), 4u);
}

TEST(ClassifyTemporality, EndToEndSteady) {
  std::vector<IoOp> ops;
  for (int i = 0; i < 20; ++i) {
    ops.push_back(op(i * 50.0, i * 50.0 + 5.0, 100 * MiB));
  }
  const TemporalityResult result = classify_temporality(ops, 1000.0);
  EXPECT_EQ(result.label, Temporality::kSteady);
}

TEST(ClassifyTemporality, EmptyOpsInsignificant) {
  const TemporalityResult result =
      classify_temporality(std::span<const IoOp>{}, 1000.0);
  EXPECT_EQ(result.label, Temporality::kInsignificant);
  EXPECT_DOUBLE_EQ(result.total_bytes, 0.0);
}

TEST(TemporalityNames, AllLabelsNamed) {
  EXPECT_STREQ(temporality_name(Temporality::kOnStart), "on_start");
  EXPECT_STREQ(temporality_name(Temporality::kAfterStartBeforeEnd),
               "after_start_before_end");
  EXPECT_STREQ(temporality_name(Temporality::kUnclassified), "unclassified");
}

TEST(TemporalityCategory, MapsKindAndLabel) {
  EXPECT_EQ(temporality_category(OpKind::kRead, Temporality::kOnStart),
            Category::kReadOnStart);
  EXPECT_EQ(temporality_category(OpKind::kWrite, Temporality::kOnEnd),
            Category::kWriteOnEnd);
  EXPECT_EQ(temporality_category(OpKind::kWrite, Temporality::kInsignificant),
            Category::kWriteInsignificant);
  EXPECT_EQ(temporality_category(OpKind::kRead, Temporality::kSteady),
            Category::kReadSteady);
}

// Property sweep: a single dominant burst placed in each chunk must map to
// the chunk's label.
class BurstPositionTest : public ::testing::TestWithParam<int> {};

TEST_P(BurstPositionTest, DominantChunkLabels) {
  const int chunk = GetParam();
  const double start = chunk * 250.0 + 100.0;
  const std::vector<IoOp> ops{op(start, start + 10.0, kBig)};
  const TemporalityResult result = classify_temporality(ops, 1000.0);
  static constexpr std::array<Temporality, 4> kExpected{
      Temporality::kOnStart, Temporality::kAfterStart, Temporality::kBeforeEnd,
      Temporality::kOnEnd};
  EXPECT_EQ(result.label, kExpected[static_cast<std::size_t>(chunk)]);
}

INSTANTIATE_TEST_SUITE_P(AllChunks, BurstPositionTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace mosaic::core
