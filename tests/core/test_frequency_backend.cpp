// Tests for the frequency-domain periodicity backend (paper §V future work)
// and its integration into the Analyzer via Thresholds::periodicity_backend.
#include <gtest/gtest.h>

#include <cmath>

#include "core/merge.hpp"
#include "core/pipeline.hpp"

namespace mosaic::core {
namespace {

using trace::IoOp;
using trace::OpKind;

std::vector<IoOp> periodic_ops(double period, std::size_t count,
                               std::uint64_t bytes, double duration = 4.0,
                               double start = 100.0) {
  std::vector<IoOp> ops;
  for (std::size_t i = 0; i < count; ++i) {
    const double at = start + static_cast<double>(i) * period;
    ops.push_back(IoOp{.start = at, .end = at + duration, .bytes = bytes,
                       .kind = OpKind::kWrite});
  }
  return ops;
}

TEST(FrequencyDetector, FindsCleanPeriod) {
  const auto ops = periodic_ops(600.0, 12, 1ull << 30);
  const PeriodicityResult result =
      detect_periodicity_frequency(ops, 8000.0, {});
  ASSERT_TRUE(result.periodic);
  ASSERT_FALSE(result.groups.empty());
  EXPECT_NEAR(result.groups.front().period_seconds, 600.0, 30.0);
  EXPECT_EQ(result.groups.front().magnitude, PeriodMagnitude::kMinute);
}

TEST(FrequencyDetector, TooFewOpsRejected) {
  const auto ops = periodic_ops(600.0, 2, 1ull << 30);
  EXPECT_FALSE(detect_periodicity_frequency(ops, 2000.0, {}).periodic);
}

TEST(FrequencyDetector, AperiodicRejected) {
  // Poisson-like arrivals with varying volumes — the realistic aperiodic
  // shape (a sparse handful of ops with pathological gap sums can still
  // produce autocorrelation coincidences; that known baseline weakness is
  // exercised in bench/ablation_dft_vs_meanshift instead).
  std::vector<IoOp> ops;
  std::uint64_t state = 999;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  double t = 50.0;
  while (t < 9000.0) {
    ops.push_back(IoOp{.start = t, .end = t + 1.0 + 5.0 * next(),
                       .bytes = 1ull << (20 + static_cast<int>(10 * next())),
                       .kind = OpKind::kWrite});
    t += 60.0 * (-std::log(next() + 1e-12));
  }
  ASSERT_GT(ops.size(), 25u);
  EXPECT_FALSE(detect_periodicity_frequency(ops, 10000.0, {}).periodic);
}

TEST(FrequencyDetector, LongRunsCoarsenBins) {
  // A 5-day run with two-hourly checkpoints: the series is capped at
  // frequency_max_bins, so the detector must still find the period through
  // coarser (~100 s) bins.
  const double period = 7200.0;
  const double runtime = 5.0 * 86400.0;
  const auto ops = periodic_ops(period, 58, 4ull << 30, 10.0, 1000.0);
  const PeriodicityResult result =
      detect_periodicity_frequency(ops, runtime, {});
  ASSERT_TRUE(result.periodic);
  EXPECT_NEAR(result.groups.front().period_seconds, period, 0.1 * period);
  EXPECT_EQ(result.groups.front().magnitude, PeriodMagnitude::kHour);
}

TEST(FrequencyDetector, OccurrenceAndVolumeEstimates) {
  const auto ops = periodic_ops(300.0, 10, 2ull << 30);
  const PeriodicityResult result =
      detect_periodicity_frequency(ops, 4000.0, {});
  ASSERT_TRUE(result.periodic);
  const PeriodicGroup& group = result.groups.front();
  // 9 inter-op spans across the active window.
  EXPECT_NEAR(static_cast<double>(group.occurrences), 9.0, 1.0);
  // Total 20 GiB over ~9-10 occurrences.
  EXPECT_NEAR(group.mean_bytes, 10.0 * 2147483648.0 / 9.0,
              0.25 * group.mean_bytes);
  EXPECT_LT(group.busy_ratio, 0.1);
}

TEST(AnalyzerBackend, MeanShiftAndFrequencyAgreeOnCheckpointer) {
  const auto ops = periodic_ops(480.0, 9, 1ull << 30);
  Thresholds mean_shift;
  mean_shift.periodicity_backend = PeriodicityBackend::kMeanShift;
  Thresholds frequency;
  frequency.periodicity_backend = PeriodicityBackend::kFrequency;

  const Analyzer a(mean_shift);
  const Analyzer b(frequency);
  const KindAnalysis via_ms = a.analyze_ops(ops, 5000.0);
  const KindAnalysis via_freq = b.analyze_ops(ops, 5000.0);
  ASSERT_TRUE(via_ms.periodicity.periodic);
  ASSERT_TRUE(via_freq.periodicity.periodic);
  EXPECT_NEAR(via_ms.periodicity.dominant().period_seconds,
              via_freq.periodicity.dominant().period_seconds, 40.0);
}

TEST(AnalyzerBackend, HybridFallsBackToFrequency) {
  // Segments with enough duration spread to defeat the Mean-Shift CV guard
  // while keeping a strong autocorrelation: alternate two interleaved op
  // trains whose merged gap sequence alternates 200/400 s. Mean-Shift sees
  // two alternating segment-length clusters (each valid!), so to build a
  // case where it is mute we give the gaps enough variance instead.
  std::vector<IoOp> ops;
  double t = 100.0;
  // Period 500 with +-30% triangular-ish jitter on each gap: raw-duration
  // CV ~ 0.35+ defeats the guard, the ACF window (+-5%) also degrades —
  // but the fundamental survives at coarse bins.
  const double gaps[] = {350.0, 650.0, 380.0, 620.0, 360.0, 640.0,
                         370.0, 630.0, 350.0, 650.0, 380.0, 620.0};
  for (const double gap : gaps) {
    ops.push_back(IoOp{.start = t, .end = t + 3.0, .bytes = 1ull << 30,
                       .kind = OpKind::kWrite});
    t += gap;
  }
  Thresholds hybrid;
  hybrid.periodicity_backend = PeriodicityBackend::kHybrid;
  Thresholds mean_shift_only;
  mean_shift_only.periodicity_backend = PeriodicityBackend::kMeanShift;

  const Analyzer ms(mean_shift_only);
  const KindAnalysis via_ms = ms.analyze_ops(ops, t + 500.0);
  // Alternating 350/650 gaps: each cluster alone is too regular to reject,
  // but the paired structure means Mean-Shift reports a half-rate period or
  // nothing. The hybrid must produce *some* periodicity via the 1000 s
  // pair-period that the autocorrelation sees.
  const Analyzer hy(hybrid);
  const KindAnalysis via_hybrid = hy.analyze_ops(ops, t + 500.0);
  if (!via_ms.periodicity.periodic) {
    EXPECT_TRUE(via_hybrid.periodicity.periodic);
  } else {
    // Mean-Shift handled it; hybrid must then match Mean-Shift exactly.
    EXPECT_EQ(via_hybrid.periodicity.periodic, via_ms.periodicity.periodic);
  }
}

TEST(AnalyzerBackend, QuietTraceStaysQuietUnderAllBackends) {
  for (const PeriodicityBackend backend :
       {PeriodicityBackend::kMeanShift, PeriodicityBackend::kFrequency,
        PeriodicityBackend::kHybrid}) {
    Thresholds thresholds;
    thresholds.periodicity_backend = backend;
    const Analyzer analyzer(thresholds);
    const KindAnalysis analysis = analyzer.analyze_ops({}, 1000.0);
    EXPECT_FALSE(analysis.periodicity.periodic);
    EXPECT_EQ(analysis.temporality.label, Temporality::kInsignificant);
  }
}

TEST(AnalyzerBackend, FrequencyMinScoreConfigurable) {
  const auto ops = periodic_ops(600.0, 10, 1ull << 30);
  Thresholds impossible;
  impossible.periodicity_backend = PeriodicityBackend::kFrequency;
  impossible.frequency_min_score = 1.01;  // unreachable
  const Analyzer analyzer(impossible);
  EXPECT_FALSE(analyzer.analyze_ops(ops, 7000.0).periodicity.periodic);
}

}  // namespace
}  // namespace mosaic::core
