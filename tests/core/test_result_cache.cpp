// core::ResultCache — the daemon's digest-keyed LRU (DESIGN.md §17):
// eviction order, the byte-capacity bound, exact hit/miss/eviction
// accounting, and concurrent lookup/insert (the suite runs under
// tsan/asan presets in CI).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/result_cache.hpp"

namespace {

using mosaic::core::CachedAnalysis;
using mosaic::core::ResultCache;
using mosaic::core::result_cache_key;

/// An entry whose accounted size is exactly `total_bytes`.
CachedAnalysis sized(const std::string& id, std::size_t total_bytes) {
  CachedAnalysis value;
  value.trace_id = id;
  value.result_json.assign(total_bytes - id.size(), 'x');
  return value;
}

TEST(ResultCacheKey, EncodesTheDedupIdentityFields) {
  const std::string key = result_cache_key("u1/app", 42, 1000);
  EXPECT_EQ(key, result_cache_key("u1/app", 42, 1000));
  // Every identity field participates: change one, get another entry.
  EXPECT_NE(key, result_cache_key("u1/other", 42, 1000));
  EXPECT_NE(key, result_cache_key("u1/app", 43, 1000));
  EXPECT_NE(key, result_cache_key("u1/app", 42, 1001));
}

TEST(ResultCache, LookupReturnsInsertedArtifactsVerbatim) {
  ResultCache cache(1024);
  CachedAnalysis value;
  value.trace_id = "7";
  value.app_key = "u0/app";
  value.source_path = "/spool/a.mbt";
  value.result_json = "{\"r\":1}";
  value.explain_json = "{\n  \"e\": 1\n}\n";
  cache.insert("k", value);

  const auto found = cache.lookup("k");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->trace_id, "7");
  EXPECT_EQ(found->app_key, "u0/app");
  EXPECT_EQ(found->source_path, "/spool/a.mbt");
  EXPECT_EQ(found->result_json, "{\"r\":1}");
  EXPECT_EQ(found->explain_json, "{\n  \"e\": 1\n}\n");
  EXPECT_FALSE(cache.lookup("unknown").has_value());
}

TEST(ResultCache, EvictsLeastRecentlyUsedFirst) {
  ResultCache cache(300);
  cache.insert("a", sized("a", 100));
  cache.insert("b", sized("b", 100));
  cache.insert("c", sized("c", 100));
  // Touch `a`: it becomes most-recently-used, so `b` is now the LRU.
  ASSERT_TRUE(cache.lookup("a").has_value());

  cache.insert("d", sized("d", 100));
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_TRUE(cache.lookup("d").has_value());
  EXPECT_EQ(cache.entries(), 3u);
}

TEST(ResultCache, ByteCapacityIsAHardBound) {
  ResultCache cache(250);
  cache.insert("a", sized("a", 100));
  cache.insert("b", sized("b", 100));
  EXPECT_EQ(cache.bytes(), 200u);
  // A third entry does not fit next to the first two: the LRU (`a`) goes.
  cache.insert("c", sized("c", 100));
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_FALSE(cache.peek("a").has_value());

  // An entry larger than the whole capacity is dropped on the spot.
  cache.insert("huge", sized("huge", 1000));
  EXPECT_FALSE(cache.peek("huge").has_value());
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
}

TEST(ResultCache, ReplacingAKeyKeepsOneEntryAndReaccountsBytes) {
  ResultCache cache(1000);
  cache.insert("k", sized("k", 100));
  cache.insert("k", sized("k", 300));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 300u);
}

TEST(ResultCache, ZeroCapacityKeepsNothing) {
  ResultCache cache(0);
  cache.insert("k", sized("k", 10));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.lookup("k").has_value());
}

TEST(ResultCache, CountsHitsMissesAndEvictionsExactly) {
  ResultCache cache(300);
  EXPECT_FALSE(cache.lookup("a").has_value());  // miss 1
  cache.insert("a", sized("a", 100));
  ASSERT_TRUE(cache.lookup("a").has_value());   // hit 1
  ASSERT_TRUE(cache.lookup("a").has_value());   // hit 2
  EXPECT_FALSE(cache.lookup("b").has_value());  // miss 2
  cache.insert("b", sized("b", 100));
  cache.insert("c", sized("c", 100));
  cache.insert("d", sized("d", 100));           // evicts `a`

  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCache, PeekIsMetricsSilentAndRecencyNeutral) {
  ResultCache cache(200);
  cache.insert("a", sized("a", 100));
  cache.insert("b", sized("b", 100));
  // HTTP-serving reads must not count as submission traffic...
  ASSERT_TRUE(cache.peek("a").has_value());
  EXPECT_FALSE(cache.peek("nope").has_value());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // ...and must not promote the entry: `a` is still the LRU.
  cache.insert("c", sized("c", 100));
  EXPECT_FALSE(cache.peek("a").has_value());
  EXPECT_TRUE(cache.peek("b").has_value());
}

TEST(ResultCache, ConcurrentLookupAndInsertKeepInvariants) {
  ResultCache cache(4096);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 501;  // divisible by 3: exact op accounting
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 16);
        if (i % 3 == 0) {
          cache.insert(key, sized(key, 256));
        } else if (i % 3 == 1) {
          if (const auto found = cache.lookup(key); found.has_value()) {
            EXPECT_EQ(found->trace_id, key);
          }
        } else {
          (void)cache.peek(key);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads * kOpsPerThread / 3));
  // Every resident entry is intact and exactly as inserted.
  for (int k = 0; k < 16; ++k) {
    const std::string key = "k" + std::to_string(k);
    if (const auto found = cache.peek(key); found.has_value()) {
      EXPECT_EQ(found->bytes(), 256u);
    }
  }
}

}  // namespace
