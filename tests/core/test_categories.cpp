#include "core/categories.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mosaic::core {
namespace {

TEST(CategoryNames, AllUniqueAndRoundTrip) {
  std::set<std::string_view> seen;
  for (const Category category : all_categories()) {
    const std::string_view name = category_name(category);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    const auto back = category_from_name(name);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, category);
  }
  EXPECT_EQ(seen.size(), kCategoryCount);
}

TEST(CategoryNames, PaperTableOneLabelsPresent) {
  // Every label family from Table I must exist in the flat space.
  for (const char* name :
       {"read_on_start", "write_on_end", "read_after_start_before_end",
        "write_steady", "read_insignificant", "write_periodic",
        "write_periodic_minute", "write_periodic_hour",
        "read_periodic_day_or_more", "write_periodic_low_busy_time",
        "metadata_high_spike", "metadata_multiple_spikes",
        "metadata_high_density", "metadata_insignificant_load"}) {
    EXPECT_TRUE(category_from_name(name).has_value()) << name;
  }
}

TEST(CategoryFromName, UnknownIsNullopt) {
  EXPECT_FALSE(category_from_name("not_a_category").has_value());
  EXPECT_FALSE(category_from_name("").has_value());
}

TEST(CategoryAxisOf, ThreeAxes) {
  EXPECT_EQ(category_axis(Category::kReadOnStart), CategoryAxis::kTemporality);
  EXPECT_EQ(category_axis(Category::kWriteUnclassified),
            CategoryAxis::kTemporality);
  EXPECT_EQ(category_axis(Category::kReadPeriodic), CategoryAxis::kPeriodicity);
  EXPECT_EQ(category_axis(Category::kWritePeriodicHighBusyTime),
            CategoryAxis::kPeriodicity);
  EXPECT_EQ(category_axis(Category::kMetadataHighSpike),
            CategoryAxis::kMetadata);
  EXPECT_EQ(category_axis(Category::kMetadataInsignificantLoad),
            CategoryAxis::kMetadata);
}

TEST(CategorySet, InsertEraseContains) {
  CategorySet set;
  EXPECT_TRUE(set.empty());
  set.insert(Category::kReadOnStart);
  set.insert(Category::kWriteOnEnd);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Category::kReadOnStart));
  EXPECT_FALSE(set.contains(Category::kWriteSteady));
  set.erase(Category::kReadOnStart);
  EXPECT_FALSE(set.contains(Category::kReadOnStart));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CategorySet, InsertIsIdempotent) {
  CategorySet set;
  set.insert(Category::kWritePeriodic);
  set.insert(Category::kWritePeriodic);
  EXPECT_EQ(set.size(), 1u);
}

TEST(CategorySet, SetAlgebra) {
  CategorySet a;
  a.insert(Category::kReadOnStart);
  a.insert(Category::kWriteOnEnd);
  CategorySet b;
  b.insert(Category::kWriteOnEnd);
  b.insert(Category::kMetadataHighSpike);

  const CategorySet inter = a.intersect(b);
  EXPECT_EQ(inter.size(), 1u);
  EXPECT_TRUE(inter.contains(Category::kWriteOnEnd));

  const CategorySet uni = a.unite(b);
  EXPECT_EQ(uni.size(), 3u);
}

TEST(CategorySet, EqualityAndRaw) {
  CategorySet a;
  a.insert(Category::kReadSteady);
  CategorySet b;
  b.insert(Category::kReadSteady);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.raw(), b.raw());
  b.insert(Category::kWriteSteady);
  EXPECT_NE(a, b);
}

TEST(CategorySet, ToVectorInEnumOrder) {
  CategorySet set;
  set.insert(Category::kMetadataHighSpike);
  set.insert(Category::kReadOnStart);
  const auto members = set.to_vector();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], Category::kReadOnStart);
  EXPECT_EQ(members[1], Category::kMetadataHighSpike);
}

TEST(CategorySet, NamesMatchMembers) {
  CategorySet set;
  set.insert(Category::kWritePeriodicMinute);
  set.insert(Category::kReadInsignificant);
  const auto names = set.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "read_insignificant");
  EXPECT_EQ(names[1], "write_periodic_minute");
}

TEST(AllCategories, CountMatches) {
  EXPECT_EQ(all_categories().size(), kCategoryCount);
}

}  // namespace
}  // namespace mosaic::core
