#include "core/config.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace mosaic::core {
namespace {

TEST(ThresholdsJson, RoundTripPreservesEveryField) {
  Thresholds custom;
  custom.min_bytes = 42;
  custom.neighbor_gap_runtime_fraction = 0.005;
  custom.neighbor_gap_op_fraction = 0.02;
  custom.temporality_chunks = 8;
  custom.dominance_factor = 3.0;
  custom.steady_cv = 0.4;
  custom.meanshift_bandwidth = 0.2;
  custom.min_group_size = 4;
  custom.group_duration_cv = 0.5;
  custom.group_volume_cv = 0.6;
  custom.busy_ratio_split = 0.3;
  custom.period_second_max = 30.0;
  custom.period_minute_max = 1800.0;
  custom.period_hour_max = 43200.0;
  custom.high_spike_requests = 500.0;
  custom.spike_requests = 100.0;
  custom.multiple_spike_count = 7;
  custom.high_density_mean_requests = 80.0;
  custom.periodicity_backend = PeriodicityBackend::kHybrid;
  custom.frequency_min_score = 0.25;
  custom.frequency_max_bins = 2048;
  custom.min_op_width = 0.01;

  const auto loaded = thresholds_from_json(thresholds_to_json(custom));
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  EXPECT_EQ(loaded->min_bytes, custom.min_bytes);
  EXPECT_DOUBLE_EQ(loaded->neighbor_gap_runtime_fraction,
                   custom.neighbor_gap_runtime_fraction);
  EXPECT_EQ(loaded->temporality_chunks, custom.temporality_chunks);
  EXPECT_DOUBLE_EQ(loaded->dominance_factor, custom.dominance_factor);
  EXPECT_DOUBLE_EQ(loaded->steady_cv, custom.steady_cv);
  EXPECT_DOUBLE_EQ(loaded->meanshift_bandwidth, custom.meanshift_bandwidth);
  EXPECT_EQ(loaded->min_group_size, custom.min_group_size);
  EXPECT_DOUBLE_EQ(loaded->busy_ratio_split, custom.busy_ratio_split);
  EXPECT_DOUBLE_EQ(loaded->period_hour_max, custom.period_hour_max);
  EXPECT_DOUBLE_EQ(loaded->high_spike_requests, custom.high_spike_requests);
  EXPECT_EQ(loaded->multiple_spike_count, custom.multiple_spike_count);
  EXPECT_EQ(loaded->periodicity_backend, custom.periodicity_backend);
  EXPECT_DOUBLE_EQ(loaded->frequency_min_score, custom.frequency_min_score);
  EXPECT_EQ(loaded->frequency_max_bins, custom.frequency_max_bins);
  EXPECT_DOUBLE_EQ(loaded->min_op_width, custom.min_op_width);
}

TEST(ThresholdsJson, MissingKeysKeepDefaults) {
  const auto parsed = json::parse(R"({"min_bytes": 5000000})");
  ASSERT_TRUE(parsed.has_value());
  const auto loaded = thresholds_from_json(*parsed);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->min_bytes, 5000000u);
  const Thresholds defaults;
  EXPECT_DOUBLE_EQ(loaded->steady_cv, defaults.steady_cv);
  EXPECT_EQ(loaded->periodicity_backend, defaults.periodicity_backend);
}

TEST(ThresholdsJson, UnknownKeyRejected) {
  const auto parsed = json::parse(R"({"min_byts": 100})");  // typo
  ASSERT_TRUE(parsed.has_value());
  const auto loaded = thresholds_from_json(*parsed);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().message.find("min_byts"), std::string::npos);
}

TEST(ThresholdsJson, NonObjectRejected) {
  EXPECT_FALSE(thresholds_from_json(json::Value{1.0}).has_value());
  EXPECT_FALSE(thresholds_from_json(json::Value{"x"}).has_value());
}

TEST(ThresholdsJson, NonNumericValueRejected) {
  const auto parsed = json::parse(R"({"steady_cv": "high"})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(thresholds_from_json(*parsed).has_value());
}

TEST(ThresholdsJson, NegativeValueRejected) {
  const auto parsed = json::parse(R"({"dominance_factor": -2})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(thresholds_from_json(*parsed).has_value());
}

TEST(ThresholdsJson, BackendNames) {
  for (const char* name : {"mean_shift", "frequency", "hybrid"}) {
    const auto parsed =
        json::parse(std::string(R"({"periodicity_backend": ")") + name +
                    R"("})");
    ASSERT_TRUE(parsed.has_value());
    const auto loaded = thresholds_from_json(*parsed);
    ASSERT_TRUE(loaded.has_value()) << name;
    EXPECT_STREQ(periodicity_backend_name(loaded->periodicity_backend), name);
  }
  const auto parsed = json::parse(R"({"periodicity_backend": "psychic"})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(thresholds_from_json(*parsed).has_value());
}

TEST(ThresholdsJson, MagnitudeOrderingEnforced) {
  const auto parsed =
      json::parse(R"({"period_second_max": 5000, "period_minute_max": 100})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(thresholds_from_json(*parsed).has_value());
}

TEST(ThresholdsJson, ChunkFloorEnforced) {
  const auto parsed = json::parse(R"({"temporality_chunks": 1})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(thresholds_from_json(*parsed).has_value());
}

TEST(ThresholdsFile, RoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mosaic_thresholds.json")
          .string();
  Thresholds custom;
  custom.min_bytes = 123456;
  custom.periodicity_backend = PeriodicityBackend::kFrequency;
  ASSERT_TRUE(write_thresholds_file(custom, path).ok());
  const auto loaded = read_thresholds_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->min_bytes, 123456u);
  EXPECT_EQ(loaded->periodicity_backend, PeriodicityBackend::kFrequency);
  std::filesystem::remove(path);
}

TEST(ThresholdsFile, MissingFileFails) {
  EXPECT_FALSE(read_thresholds_file("/no/such/thresholds.json").has_value());
}

}  // namespace
}  // namespace mosaic::core
