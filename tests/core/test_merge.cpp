#include "core/merge.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mosaic::core {
namespace {

using trace::IoOp;
using trace::OpKind;

IoOp op(double start, double end, std::uint64_t bytes = 100,
        std::int32_t rank = 0) {
  return IoOp{.start = start, .end = end, .bytes = bytes, .rank = rank,
              .kind = OpKind::kWrite};
}

std::uint64_t total_bytes(const std::vector<IoOp>& ops) {
  std::uint64_t sum = 0;
  for (const IoOp& o : ops) sum += o.bytes;
  return sum;
}

TEST(MergeConcurrent, EmptyAndSingle) {
  EXPECT_TRUE(merge_concurrent({}).empty());
  const auto merged = merge_concurrent({op(1.0, 2.0)});
  ASSERT_EQ(merged.size(), 1u);
}

TEST(MergeConcurrent, OverlappingOpsFuse) {
  const auto merged = merge_concurrent({op(0.0, 5.0, 10), op(3.0, 8.0, 20)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].start, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 8.0);
  EXPECT_EQ(merged[0].bytes, 30u);
}

TEST(MergeConcurrent, TouchingOpsFuse) {
  const auto merged = merge_concurrent({op(0.0, 5.0), op(5.0, 8.0)});
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeConcurrent, DisjointOpsStay) {
  const auto merged = merge_concurrent({op(0.0, 1.0), op(2.0, 3.0)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeConcurrent, UnsortedInputHandled) {
  const auto merged =
      merge_concurrent({op(10.0, 12.0), op(0.0, 5.0), op(4.0, 9.0)});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].start, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 9.0);
  EXPECT_DOUBLE_EQ(merged[1].start, 10.0);
}

TEST(MergeConcurrent, ContainedOpAbsorbed) {
  const auto merged = merge_concurrent({op(0.0, 10.0, 50), op(2.0, 3.0, 5)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].end, 10.0);
  EXPECT_EQ(merged[0].bytes, 55u);
}

TEST(MergeConcurrent, DesynchronizedRanksChainMerge) {
  // The paper's motivating case: many ranks writing the same checkpoint in a
  // slightly staggered fashion must collapse into one operation.
  std::vector<IoOp> ops;
  for (int rank = 0; rank < 64; ++rank) {
    ops.push_back(op(rank * 0.1, rank * 0.1 + 1.0, 10, rank));
  }
  const auto merged = merge_concurrent(std::move(ops));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].bytes, 640u);
  EXPECT_EQ(merged[0].rank, trace::kSharedRank);  // mixed ranks -> shared
}

TEST(MergeConcurrent, SameRankPreserved) {
  const auto merged =
      merge_concurrent({op(0.0, 2.0, 5, 3), op(1.0, 3.0, 5, 3)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].rank, 3);
}

TEST(MergeConcurrent, ConservesBytesProperty) {
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<IoOp> ops;
    for (int i = 0; i < 100; ++i) {
      const double start = rng.uniform(0.0, 1000.0);
      ops.push_back(op(start, start + rng.uniform(0.0, 50.0),
                       static_cast<std::uint64_t>(rng.uniform_int(1, 1000))));
    }
    const std::uint64_t before = total_bytes(ops);
    const auto merged = merge_concurrent(std::move(ops));
    EXPECT_EQ(total_bytes(merged), before);
    // Output is sorted and pairwise disjoint.
    for (std::size_t i = 1; i < merged.size(); ++i) {
      EXPECT_GT(merged[i].start, merged[i - 1].end);
    }
  }
}

TEST(MergeConcurrent, Idempotent) {
  util::Rng rng(7);
  std::vector<IoOp> ops;
  for (int i = 0; i < 40; ++i) {
    const double start = rng.uniform(0.0, 100.0);
    ops.push_back(op(start, start + rng.uniform(0.0, 10.0)));
  }
  const auto once = merge_concurrent(ops);
  const auto twice = merge_concurrent(once);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_DOUBLE_EQ(once[i].start, twice[i].start);
    EXPECT_DOUBLE_EQ(once[i].end, twice[i].end);
  }
}

TEST(MergeNeighbors, SmallGapRelativeToRuntimeFuses) {
  // Gap 0.5s, runtime 10000s -> gap is 0.005% of runtime < 0.1%.
  const auto merged =
      merge_neighbors({op(0.0, 1.0), op(1.5, 2.5)}, 10000.0);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeNeighbors, SmallGapRelativeToOpFuses) {
  // Gap 0.5s vs previous op duration 100s -> 0.5% < 1%; runtime small so the
  // runtime rule alone would not fire (0.5 / 200 = 0.25% > 0.1%).
  const auto merged = merge_neighbors({op(0.0, 100.0), op(100.5, 101.0)}, 200.0);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeNeighbors, LargeGapStaysSeparate) {
  const auto merged = merge_neighbors({op(0.0, 1.0), op(50.0, 51.0)}, 100.0);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeNeighbors, SlidingDesynchronizationChains) {
  // Ops drifting apart slowly: each gap is small relative to the growing
  // merged op, so the chain keeps fusing (paper §III-B2b).
  std::vector<IoOp> ops;
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    ops.push_back(op(t, t + 10.0));
    t += 10.0 + 0.05;  // 0.05s gap, well under 1% of 10s
  }
  const auto merged = merge_neighbors(std::move(ops), 1e6);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeNeighbors, ThresholdsConfigurable) {
  Thresholds strict;
  strict.neighbor_gap_runtime_fraction = 0.0;
  strict.neighbor_gap_op_fraction = 0.0;
  const auto merged =
      merge_neighbors({op(0.0, 1.0), op(1.001, 2.0)}, 10000.0, strict);
  EXPECT_EQ(merged.size(), 2u);

  Thresholds loose;
  loose.neighbor_gap_runtime_fraction = 0.5;
  const auto fused =
      merge_neighbors({op(0.0, 1.0), op(100.0, 101.0)}, 1000.0, loose);
  EXPECT_EQ(fused.size(), 1u);
}

TEST(MergeOps, PipelineKeepsPeriodicStructure) {
  // Periodic bursts with rank desync inside each burst: merging must yield
  // exactly one op per burst so segmentation sees the period.
  std::vector<IoOp> ops;
  for (int burst = 0; burst < 8; ++burst) {
    const double base = burst * 600.0;
    for (int r = 0; r < 4; ++r) {
      ops.push_back(op(base + r * 0.2, base + r * 0.2 + 2.0, 100, r));
    }
  }
  const auto merged = merge_ops(std::move(ops), 5000.0);
  EXPECT_EQ(merged.size(), 8u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_NEAR(merged[i].start - merged[i - 1].start, 600.0, 1.0);
  }
}

TEST(MergeOps, EmptyInput) {
  EXPECT_TRUE(merge_ops({}, 100.0).empty());
}

}  // namespace
}  // namespace mosaic::core
