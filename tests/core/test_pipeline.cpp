#include "core/pipeline.hpp"

#include <gtest/gtest.h>

namespace mosaic::core {
namespace {

constexpr std::uint64_t GiB = 1ull << 30;

/// Builds a trace with a read burst at start, periodic fresh-file writes,
/// and a metadata profile with one large spike.
trace::Trace make_rich_trace(std::uint64_t job_id = 1) {
  trace::Trace t;
  t.meta.job_id = job_id;
  t.meta.app_name = "rich";
  t.meta.user = "u1";
  t.meta.nprocs = 128;
  t.meta.run_time = 7200.0;

  // Input read: 4 GiB in the first minute.
  trace::FileRecord input;
  input.file_id = 1;
  input.bytes_read = 4 * GiB;
  input.reads = 1000;
  input.opens = 128;
  input.closes = 128;
  input.seeks = 200;
  input.open_ts = 0.5;
  input.close_ts = 70.0;
  input.first_read_ts = 1.0;
  input.last_read_ts = 60.0;
  t.files.push_back(input);

  // Periodic checkpoints: fresh file every 600 s.
  for (int i = 0; i < 11; ++i) {
    trace::FileRecord ckpt;
    ckpt.file_id = 100u + static_cast<unsigned>(i);
    ckpt.bytes_written = 2 * GiB;
    ckpt.writes = 500;
    ckpt.opens = 128;
    ckpt.closes = 128;
    ckpt.seeks = 100;
    const double start = 300.0 + i * 600.0;
    ckpt.open_ts = start - 0.2;
    ckpt.close_ts = start + 8.0;
    ckpt.first_write_ts = start;
    ckpt.last_write_ts = start + 6.0;
    t.files.push_back(ckpt);
  }
  return t;
}

trace::Trace make_quiet_trace(std::uint64_t job_id, const std::string& user) {
  trace::Trace t;
  t.meta.job_id = job_id;
  t.meta.app_name = "quiet";
  t.meta.user = user;
  t.meta.nprocs = 64;
  t.meta.run_time = 600.0;
  trace::FileRecord lib;
  lib.file_id = 5;
  lib.bytes_read = 1 << 20;
  lib.reads = 2;
  lib.opens = 2;
  lib.closes = 2;
  lib.open_ts = 0.1;
  lib.close_ts = 1.0;
  lib.first_read_ts = 0.2;
  lib.last_read_ts = 0.8;
  t.files.push_back(lib);
  return t;
}

TEST(Analyzer, RichTraceFullCategorization) {
  const Analyzer analyzer;
  const TraceResult result = analyzer.analyze(make_rich_trace());

  EXPECT_EQ(result.app_key, "u1/rich");
  EXPECT_EQ(result.read.temporality.label, Temporality::kOnStart);
  ASSERT_TRUE(result.write.periodicity.periodic);
  EXPECT_NEAR(result.write.periodicity.dominant().period_seconds, 600.0, 5.0);
  EXPECT_EQ(result.write.periodicity.dominant().magnitude,
            PeriodMagnitude::kMinute);

  EXPECT_TRUE(result.categories.contains(Category::kReadOnStart));
  EXPECT_TRUE(result.categories.contains(Category::kWritePeriodic));
  EXPECT_TRUE(result.categories.contains(Category::kWritePeriodicMinute));
  EXPECT_TRUE(result.categories.contains(Category::kWritePeriodicLowBusyTime));
  // Evenly spread checkpoints -> steady write temporality.
  EXPECT_TRUE(result.categories.contains(Category::kWriteSteady));
  // 128 opens + 200 seeks land within one second at t=0.5 -> high spike;
  // 11 checkpoint spikes of 228 requests -> multiple spikes.
  EXPECT_TRUE(result.categories.contains(Category::kMetadataHighSpike));
  EXPECT_TRUE(result.categories.contains(Category::kMetadataMultipleSpikes));
  EXPECT_FALSE(
      result.categories.contains(Category::kMetadataInsignificantLoad));
}

TEST(Analyzer, QuietTraceInsignificantEverywhere) {
  const Analyzer analyzer;
  const TraceResult result = analyzer.analyze(make_quiet_trace(1, "u9"));
  EXPECT_TRUE(result.categories.contains(Category::kReadInsignificant));
  EXPECT_TRUE(result.categories.contains(Category::kWriteInsignificant));
  EXPECT_TRUE(
      result.categories.contains(Category::kMetadataInsignificantLoad));
  EXPECT_FALSE(result.categories.contains(Category::kReadPeriodic));
}

TEST(Analyzer, InsignificantKindCarriesNoPeriodicity) {
  // Periodic but tiny writes: volume below 100 MB keeps the kind
  // insignificant, and the paper excludes such traces from characterization.
  trace::Trace t;
  t.meta.job_id = 3;
  t.meta.app_name = "tiny_ckpt";
  t.meta.user = "u2";
  t.meta.nprocs = 4;
  t.meta.run_time = 3600.0;
  for (int i = 0; i < 10; ++i) {
    trace::FileRecord ckpt;
    ckpt.file_id = static_cast<unsigned>(i);
    ckpt.bytes_written = 1 << 20;  // 1 MiB per burst
    ckpt.writes = 1;
    ckpt.opens = 1;
    ckpt.closes = 1;
    const double start = 100.0 + i * 300.0;
    ckpt.open_ts = start;
    ckpt.close_ts = start + 1.0;
    ckpt.first_write_ts = start;
    ckpt.last_write_ts = start + 0.5;
    t.files.push_back(ckpt);
  }
  const Analyzer analyzer;
  const TraceResult result = analyzer.analyze(t);
  EXPECT_TRUE(result.categories.contains(Category::kWriteInsignificant));
  EXPECT_FALSE(result.categories.contains(Category::kWritePeriodic));
  // The detector itself still saw the repetition; only the flattening gates.
  EXPECT_TRUE(result.write.periodicity.periodic);
}

TEST(FlattenCategories, MetadataFlagsMapped) {
  KindAnalysis quiet_kind;
  quiet_kind.temporality.label = Temporality::kInsignificant;
  MetadataResult metadata;
  metadata.insignificant = false;
  metadata.high_spike = true;
  metadata.multiple_spikes = true;
  metadata.high_density = false;
  const CategorySet set =
      flatten_categories(quiet_kind, quiet_kind, metadata);
  EXPECT_TRUE(set.contains(Category::kMetadataHighSpike));
  EXPECT_TRUE(set.contains(Category::kMetadataMultipleSpikes));
  EXPECT_FALSE(set.contains(Category::kMetadataHighDensity));
  EXPECT_FALSE(set.contains(Category::kMetadataInsignificantLoad));
}

TEST(FlattenCategories, BusyTimeSplitUsesThresholds) {
  KindAnalysis write_kind;
  write_kind.temporality.label = Temporality::kSteady;
  write_kind.periodicity.periodic = true;
  PeriodicGroup group;
  group.period_seconds = 100.0;
  group.busy_ratio = 0.4;
  group.occurrences = 5;
  group.magnitude = PeriodMagnitude::kMinute;
  write_kind.periodicity.groups.push_back(group);

  KindAnalysis read_kind;
  read_kind.temporality.label = Temporality::kInsignificant;

  const CategorySet default_set =
      flatten_categories(read_kind, write_kind, MetadataResult{});
  EXPECT_TRUE(default_set.contains(Category::kWritePeriodicHighBusyTime));

  Thresholds high_split;
  high_split.busy_ratio_split = 0.5;
  const CategorySet strict_set =
      flatten_categories(read_kind, write_kind, MetadataResult{}, high_split);
  EXPECT_TRUE(strict_set.contains(Category::kWritePeriodicLowBusyTime));
}

TEST(AnalyzePopulation, SerialAndParallelAgree) {
  std::vector<trace::Trace> traces;
  for (int i = 0; i < 20; ++i) {
    traces.push_back(make_rich_trace(static_cast<std::uint64_t>(i)));
    traces.back().meta.user = "u" + std::to_string(i % 4);
    traces.push_back(make_quiet_trace(100 + static_cast<std::uint64_t>(i),
                                      "q" + std::to_string(i % 3)));
  }
  const BatchResult serial = analyze_population(traces);
  parallel::ThreadPool pool(4);
  const BatchResult threaded = analyze_population(traces, {}, &pool);

  ASSERT_EQ(serial.results.size(), threaded.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].job_id, threaded.results[i].job_id);
    EXPECT_EQ(serial.results[i].categories, threaded.results[i].categories);
  }
  EXPECT_EQ(serial.preprocess.retained, threaded.preprocess.retained);
}

TEST(AnalyzePopulation, FunnelAndResultsAligned) {
  std::vector<trace::Trace> traces;
  traces.push_back(make_rich_trace(1));
  traces.push_back(make_quiet_trace(2, "u5"));
  trace::Trace corrupt = make_quiet_trace(3, "u6");
  corrupt.meta.run_time = 0.0;
  traces.push_back(std::move(corrupt));

  const BatchResult batch = analyze_population(std::move(traces));
  EXPECT_EQ(batch.preprocess.input_traces, 3u);
  EXPECT_EQ(batch.preprocess.corrupted, 1u);
  EXPECT_EQ(batch.results.size(), 2u);
  EXPECT_EQ(batch.runs_per_app.size(), 2u);
}

}  // namespace
}  // namespace mosaic::core
