#include "core/segmentation.hpp"

#include <gtest/gtest.h>

namespace mosaic::core {
namespace {

using trace::IoOp;

IoOp op(double start, double end, std::uint64_t bytes) {
  return IoOp{.start = start, .end = end, .bytes = bytes};
}

TEST(Segmentation, FewerThanTwoOpsYieldNothing) {
  EXPECT_TRUE(segment_ops({}).empty());
  const std::vector<IoOp> one{op(0.0, 1.0, 10)};
  EXPECT_TRUE(segment_ops(one).empty());
}

TEST(Segmentation, SegmentSpansStartToNextStart) {
  const std::vector<IoOp> ops{op(10.0, 12.0, 100), op(70.0, 75.0, 200),
                              op(130.0, 131.0, 300)};
  const auto segments = segment_ops(ops);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments[0].start, 10.0);
  EXPECT_DOUBLE_EQ(segments[0].length, 60.0);
  EXPECT_DOUBLE_EQ(segments[0].op_duration, 2.0);
  EXPECT_EQ(segments[0].bytes, 100u);
  EXPECT_DOUBLE_EQ(segments[1].length, 60.0);
  EXPECT_EQ(segments[1].bytes, 200u);
}

TEST(Segmentation, LastOpContributesNoSegment) {
  const std::vector<IoOp> ops{op(0.0, 1.0, 1), op(10.0, 11.0, 2)};
  const auto segments = segment_ops(ops);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].bytes, 1u);
}

TEST(Segmentation, BusyRatio) {
  const std::vector<IoOp> ops{op(0.0, 15.0, 1), op(60.0, 61.0, 1)};
  const auto segments = segment_ops(ops);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].busy_ratio(), 0.25);
}

TEST(Segmentation, UniformPeriodicOpsGiveEqualSegments) {
  std::vector<IoOp> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back(op(i * 300.0, i * 300.0 + 5.0, 1000));
  }
  const auto segments = segment_ops(ops);
  ASSERT_EQ(segments.size(), 9u);
  for (const Segment& segment : segments) {
    EXPECT_DOUBLE_EQ(segment.length, 300.0);
    EXPECT_DOUBLE_EQ(segment.op_duration, 5.0);
  }
}

TEST(SegmentBusyRatio, ZeroLengthIsZero) {
  const Segment degenerate{.start = 0.0, .length = 0.0, .op_duration = 1.0};
  EXPECT_DOUBLE_EQ(degenerate.busy_ratio(), 0.0);
}

}  // namespace
}  // namespace mosaic::core
