#include "core/periodicity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace mosaic::core {
namespace {

Segment segment(double length, std::uint64_t bytes, double op_duration = 1.0) {
  return Segment{.start = 0.0, .length = length, .op_duration = op_duration,
                 .bytes = bytes};
}

std::vector<Segment> uniform_segments(std::size_t count, double period,
                                      std::uint64_t bytes,
                                      double busy_seconds) {
  std::vector<Segment> segments;
  for (std::size_t i = 0; i < count; ++i) {
    segments.push_back(segment(period, bytes, busy_seconds));
  }
  return segments;
}

TEST(PeriodMagnitude, Buckets) {
  EXPECT_EQ(classify_period_magnitude(10.0), PeriodMagnitude::kSecond);
  EXPECT_EQ(classify_period_magnitude(59.9), PeriodMagnitude::kSecond);
  // Half-open downward: exactly one minute is periodic_minute, exactly one
  // hour is periodic_hour, exactly one day is periodic_day_or_more.
  EXPECT_EQ(classify_period_magnitude(60.0), PeriodMagnitude::kMinute);
  EXPECT_EQ(classify_period_magnitude(3599.0), PeriodMagnitude::kMinute);
  EXPECT_EQ(classify_period_magnitude(3600.0), PeriodMagnitude::kHour);
  EXPECT_EQ(classify_period_magnitude(86399.0), PeriodMagnitude::kHour);
  EXPECT_EQ(classify_period_magnitude(86400.0), PeriodMagnitude::kDayOrMore);
  EXPECT_EQ(classify_period_magnitude(1e6), PeriodMagnitude::kDayOrMore);
}

TEST(PeriodMagnitudeName, Names) {
  EXPECT_STREQ(period_magnitude_name(PeriodMagnitude::kSecond), "second");
  EXPECT_STREQ(period_magnitude_name(PeriodMagnitude::kDayOrMore),
               "day_or_more");
}

TEST(DetectPeriodicity, EmptyAndTiny) {
  EXPECT_FALSE(detect_periodicity({}).periodic);
  const auto one = uniform_segments(1, 100.0, 50, 1.0);
  EXPECT_FALSE(detect_periodicity(one).periodic);
}

TEST(DetectPeriodicity, CleanPeriodicSignal) {
  const auto segments = uniform_segments(10, 600.0, 1 << 30, 5.0);
  const PeriodicityResult result = detect_periodicity(segments);
  ASSERT_TRUE(result.periodic);
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_NEAR(result.groups[0].period_seconds, 600.0, 1.0);
  EXPECT_EQ(result.groups[0].occurrences, 10u);
  EXPECT_EQ(result.groups[0].magnitude, PeriodMagnitude::kMinute);
  EXPECT_NEAR(result.groups[0].busy_ratio, 5.0 / 600.0, 1e-6);
}

TEST(DetectPeriodicity, JitteredPeriodStillDetected) {
  util::Rng rng(3);
  std::vector<Segment> segments;
  for (int i = 0; i < 12; ++i) {
    segments.push_back(segment(600.0 + rng.normal(0.0, 12.0),
                               (1u << 28) + static_cast<std::uint64_t>(
                                                rng.uniform(0.0, 1e6)),
                               4.0));
  }
  const PeriodicityResult result = detect_periodicity(segments);
  ASSERT_TRUE(result.periodic);
  EXPECT_NEAR(result.groups[0].period_seconds, 600.0, 30.0);
}

TEST(DetectPeriodicity, AperiodicSegmentsRejected) {
  // Wildly varying segment lengths and volumes: no group should survive the
  // spread checks.
  util::Rng rng(5);
  std::vector<Segment> segments;
  double length = 10.0;
  for (int i = 0; i < 10; ++i) {
    length *= 2.3;
    segments.push_back(segment(
        length, static_cast<std::uint64_t>(rng.uniform(1e3, 1e10)), 1.0));
  }
  EXPECT_FALSE(detect_periodicity(segments).periodic);
}

TEST(DetectPeriodicity, TwoDistinctPeriodicOperations) {
  // A trace holding two interleaved periodic ops of clearly different
  // volume/period signatures -> two groups (paper: checkpoint + reads).
  std::vector<Segment> segments;
  for (int i = 0; i < 8; ++i) segments.push_back(segment(600.0, 8u << 30, 6.0));
  for (int i = 0; i < 6; ++i) segments.push_back(segment(60.0, 1u << 20, 0.5));
  const PeriodicityResult result = detect_periodicity(segments);
  ASSERT_TRUE(result.periodic);
  ASSERT_EQ(result.groups.size(), 2u);
  // Largest group first.
  EXPECT_EQ(result.groups[0].occurrences, 8u);
  EXPECT_NEAR(result.groups[0].period_seconds, 600.0, 1.0);
  EXPECT_EQ(result.groups[1].occurrences, 6u);
  EXPECT_NEAR(result.groups[1].period_seconds, 60.0, 1.0);
}

TEST(DetectPeriodicity, MinGroupSizeRespected) {
  Thresholds thresholds;
  thresholds.min_group_size = 5;
  const auto segments = uniform_segments(4, 300.0, 1 << 25, 1.0);
  EXPECT_FALSE(detect_periodicity(segments, thresholds).periodic);
  const auto more = uniform_segments(5, 300.0, 1 << 25, 1.0);
  EXPECT_TRUE(detect_periodicity(more, thresholds).periodic);
}

TEST(DetectPeriodicity, ScalingArtifactRejectedByCvGuard) {
  // One giant segment stretches the min-max range; two segments of 1s and
  // 100s then sit within the bandwidth in scaled space but are not the same
  // period. The raw-space CV guard must reject the pairing.
  std::vector<Segment> segments;
  segments.push_back(segment(1.0, 1000, 0.1));
  segments.push_back(segment(100.0, 1000, 0.1));
  segments.push_back(segment(10000.0, 1000, 0.1));
  const PeriodicityResult result = detect_periodicity(segments);
  EXPECT_FALSE(result.periodic);
}

TEST(DetectPeriodicity, VolumeSpreadRejected) {
  Thresholds thresholds;
  std::vector<Segment> segments;
  util::Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    // Same period but volumes spanning 4 orders of magnitude.
    segments.push_back(
        segment(300.0, static_cast<std::uint64_t>(std::pow(10.0, 4 + i)), 1.0));
  }
  EXPECT_FALSE(detect_periodicity(segments, thresholds).periodic);
}

TEST(DetectPeriodicity, HighBusyRatioReported) {
  const auto segments = uniform_segments(6, 30.0, 20u << 30, 10.0);
  const PeriodicityResult result = detect_periodicity(segments);
  ASSERT_TRUE(result.periodic);
  EXPECT_NEAR(result.groups[0].busy_ratio, 1.0 / 3.0, 1e-6);
  EXPECT_EQ(result.groups[0].magnitude, PeriodMagnitude::kSecond);
}

TEST(DetectPeriodicity, DominantAccessor) {
  const auto segments = uniform_segments(5, 120.0, 1u << 30, 2.0);
  const PeriodicityResult result = detect_periodicity(segments);
  ASSERT_TRUE(result.periodic);
  EXPECT_EQ(&result.dominant(), &result.groups.front());
}

}  // namespace
}  // namespace mosaic::core
