#include "core/metadata.hpp"

#include <gtest/gtest.h>

namespace mosaic::core {
namespace {

using trace::MetaEvent;

std::vector<MetaEvent> spikes(std::size_t count, double spacing,
                              std::uint64_t requests, double start = 10.0) {
  std::vector<MetaEvent> events;
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back({start + static_cast<double>(i) * spacing, requests});
  }
  return events;
}

TEST(Metadata, InsignificantWhenFewerRequestsThanRanks) {
  // Paper §III-A: fewer metadata operations than ranks -> insignificant.
  const auto events = spikes(1, 0.0, 30);
  const MetadataResult result = classify_metadata(events, 1000.0, 64, {});
  EXPECT_TRUE(result.insignificant);
  EXPECT_FALSE(result.high_spike);
  EXPECT_FALSE(result.multiple_spikes);
  EXPECT_FALSE(result.high_density);
  EXPECT_EQ(result.total_requests, 30u);
}

TEST(Metadata, SignificantAtExactlyRankCount) {
  const auto events = spikes(1, 0.0, 64);
  const MetadataResult result = classify_metadata(events, 1000.0, 64, {});
  EXPECT_FALSE(result.insignificant);
}

TEST(Metadata, HighSpikeAt250PerSecond) {
  const auto events = spikes(1, 0.0, 250);
  const MetadataResult result = classify_metadata(events, 1000.0, 4, {});
  EXPECT_TRUE(result.high_spike);
  EXPECT_DOUBLE_EQ(result.max_requests_per_second, 250.0);
}

TEST(Metadata, NoHighSpikeBelowThreshold) {
  const auto events = spikes(1, 0.0, 249);
  const MetadataResult result = classify_metadata(events, 1000.0, 4, {});
  EXPECT_FALSE(result.high_spike);
}

TEST(Metadata, SpreadRequestsDoNotSpike) {
  // Same request count spread over many seconds: no single-second burst.
  const auto events = spikes(250, 2.0, 1);
  const MetadataResult result = classify_metadata(events, 1000.0, 4, {});
  EXPECT_FALSE(result.high_spike);
  EXPECT_EQ(result.total_requests, 250u);
}

TEST(Metadata, MultipleSpikesNeedsFive) {
  const auto four = spikes(4, 10.0, 60);
  EXPECT_FALSE(classify_metadata(four, 1000.0, 4, {}).multiple_spikes);
  const auto five = spikes(5, 10.0, 60);
  EXPECT_TRUE(classify_metadata(five, 1000.0, 4, {}).multiple_spikes);
}

TEST(Metadata, SpikesBelow50DoNotCount) {
  const auto events = spikes(10, 10.0, 49);
  const MetadataResult result = classify_metadata(events, 1000.0, 4, {});
  EXPECT_FALSE(result.multiple_spikes);
  EXPECT_EQ(result.spike_seconds, 0u);
}

TEST(Metadata, HighDensityNeedsSpikesAndMeanRate) {
  // 20 spikes of 600 requests over a 200s run: mean 60 req/s >= 50 and
  // >= 5 spike seconds -> high density.
  const auto events = spikes(20, 10.0, 600, 5.0);
  const MetadataResult result = classify_metadata(events, 200.0, 4, {});
  EXPECT_TRUE(result.multiple_spikes);
  EXPECT_TRUE(result.high_density);
  EXPECT_NEAR(result.mean_requests_per_second, 60.0, 1e-9);
}

TEST(Metadata, SpikesWithoutSustainedMeanAreNotDense) {
  // 6 spikes of 100 over an hour: spikes yes, density no (mean ~0.17/s).
  const auto events = spikes(6, 60.0, 100);
  const MetadataResult result = classify_metadata(events, 3600.0, 4, {});
  EXPECT_TRUE(result.multiple_spikes);
  EXPECT_FALSE(result.high_density);
}

TEST(Metadata, SameSecondEventsAccumulate) {
  // Two events in the same second jointly cross the spike threshold.
  std::vector<MetaEvent> events{{100.2, 150}, {100.7, 150}};
  const MetadataResult result = classify_metadata(events, 1000.0, 4, {});
  EXPECT_TRUE(result.high_spike);
  EXPECT_DOUBLE_EQ(result.max_requests_per_second, 300.0);
}

TEST(Metadata, EmptyTimeline) {
  const MetadataResult result = classify_metadata({}, 100.0, 8, {});
  EXPECT_TRUE(result.insignificant);
  EXPECT_EQ(result.total_requests, 0u);
  EXPECT_DOUBLE_EQ(result.mean_requests_per_second, 0.0);
}

TEST(Metadata, ShortRuntimeSingleBin) {
  const std::vector<MetaEvent> events{{0.1, 300}};
  const MetadataResult result = classify_metadata(events, 0.5, 2, {});
  EXPECT_TRUE(result.high_spike);
}

TEST(Metadata, ThresholdsConfigurable) {
  Thresholds lax;
  lax.high_spike_requests = 10.0;
  lax.spike_requests = 5.0;
  lax.multiple_spike_count = 2;
  const auto events = spikes(2, 10.0, 6);
  const MetadataResult result = classify_metadata(events, 100.0, 2, lax);
  EXPECT_FALSE(result.high_spike);  // 6 < 10
  EXPECT_TRUE(result.multiple_spikes);
}

TEST(Metadata, EventsOutsideRuntimeClampIntoEdges) {
  const std::vector<MetaEvent> events{{-5.0, 100}, {2000.0, 200}};
  const MetadataResult result = classify_metadata(events, 100.0, 2, {});
  EXPECT_EQ(result.total_requests, 300u);
  EXPECT_DOUBLE_EQ(result.max_requests_per_second, 200.0);
}

// Parameterized sweep of the spike-count boundary.
class SpikeCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpikeCountTest, BoundaryAtConfiguredCount) {
  const std::size_t count = GetParam();
  const auto events = spikes(count, 10.0, 80);
  const MetadataResult result = classify_metadata(events, 1000.0, 2, {});
  EXPECT_EQ(result.multiple_spikes, count >= 5);
  EXPECT_EQ(result.spike_seconds, count);
}

INSTANTIATE_TEST_SUITE_P(AroundThreshold, SpikeCountTest,
                         ::testing::Values(1u, 3u, 4u, 5u, 6u, 10u));

}  // namespace
}  // namespace mosaic::core
